"""repro.chaos: seeded fault injection, recovery, invariant checking.

The paper's central claim is that a trans-Atlantic collaborative steering
session survives hostile realities.  :mod:`repro.fleet` and
:mod:`repro.load` scaled the happy path; this package makes **failure a
first-class, seeded, replayable scenario dimension** and proves the
recovery machinery upholds its conservation laws under it:

* :mod:`repro.chaos.faults` — the fault taxonomy (link degradation,
  partitions, site outages, container/vbroker crashes, registry-shard
  loss, firewall lockdown, limp mode) and the seeded
  :class:`FaultSchedule` DSL compiled into DES events;
* :mod:`repro.chaos.inject` — the :class:`FaultInjector` hooks that make
  scheduled faults bite a running open-loop fleet;
* :mod:`repro.chaos.recovery` — the :class:`RecoveryOrchestrator` wiring
  service migration, broker-pool failover and admission-controller
  requeue into explicit per-session policies (retry / migrate / degrade
  / abandon);
* :mod:`repro.chaos.invariants` — the :class:`InvariantMonitor` checking
  conservation laws continuously (no session lost or double-placed,
  ledger balance, one shard per handle, handles resolve, telemetry
  merges lossless).

The quickest way in::

    driver = FleetDriver(n_sites=3, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=16)
    world = ChaosHarness(driver, ctl)
    world.install(FaultSchedule([SiteOutage(at=5.0, site=0)]))
    report = ctl.run(PoissonArrivals(rate=1.0, horizon=20.0, seed=7))
    world.monitor.final_check(report)
    world.monitor.assert_ok()
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    RANDOM_TUNABLES,
    ContainerCrash,
    Fault,
    FaultSchedule,
    FirewallLockdown,
    LinkDegrade,
    Partition,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
)
from repro.chaos.inject import FaultInjector
from repro.chaos.invariants import InvariantMonitor
from repro.chaos.recovery import (
    RecoveryOrchestrator,
    RecoveryPolicy,
    retry_name,
    root_name,
)


class ChaosHarness:
    """Injector + recovery + monitor, wired in the right order.

    Order matters: the monitor must subscribe before recovery so its
    mirrors see every lifecycle event, and recovery must see faults only
    after the injector applied them.  This little bundle exists so every
    bench/test stands up an identical, correctly-ordered world.
    """

    def __init__(
        self, driver, controller=None, pool=None, policy=None, monitor_interval: float = 1.0
    ) -> None:
        self.driver = driver
        self.controller = controller
        self.monitor = InvariantMonitor(driver, controller=controller, interval=monitor_interval)
        self.injector = FaultInjector(driver, controller=controller, pool=pool)
        self.recovery = RecoveryOrchestrator(
            self.injector, controller=controller, pool=pool, policy=policy
        )

    def install(self, schedule: FaultSchedule) -> list:
        return self.injector.install(schedule)

    def verdict(self, report=None) -> dict:
        """Final check + combined chaos scorecard for benches."""
        self.monitor.final_check(report)
        return {
            "invariant_violations": len(self.monitor.violations),
            "violations": list(self.monitor.violations),
            "sweeps": self.monitor.sweeps,
            "faults_applied": len(self.injector.applied()),
            "recovery": self.recovery.summary(),
        }


__all__ = [
    "Fault",
    "FaultSchedule",
    "FAULT_KINDS",
    "RANDOM_TUNABLES",
    "LinkDegrade",
    "Partition",
    "SiteOutage",
    "ContainerCrash",
    "VBrokerCrash",
    "RegistryShardLoss",
    "FirewallLockdown",
    "SlowNode",
    "FaultInjector",
    "RecoveryOrchestrator",
    "RecoveryPolicy",
    "retry_name",
    "root_name",
    "InvariantMonitor",
    "ChaosHarness",
]
