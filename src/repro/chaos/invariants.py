"""Continuous conservation-law checking for a (possibly faulted) fleet.

A chaos run is only evidence if somebody proves the machinery stayed
honest *while* the faults were firing.  The :class:`InvariantMonitor`
does that two ways:

* **event mirrors** — it subscribes to the driver's session lifecycle
  and the admission controller's queue transitions and keeps its own
  shadow counts, so double-starts, finishes-without-starts and
  acquire/release imbalances are caught at the exact instant they occur;
* **periodic sweeps** — every ``interval`` virtual seconds (and once
  more in :meth:`final_check`) it audits global laws that need the whole
  world: queue conservation, ledger balance, single placement, registry
  shard routing, handle resolvability, telemetry merge losslessness.

The laws, stated precisely:

1. ``offered == admitted + rejected + abandoned + queued`` at all times
   (requeues count as offers — nothing enters the grid unaccounted).
2. ``acquires - releases == ledger.total_inflight`` and every per-site
   in-flight count stays within ``[0, slots]``.
3. Every session starts at most once, finishes at most once, and a
   finish implies a start: **no session is lost or double-placed**.
4. Every session name maps to exactly one site, and every running
   session's site exists.
5. Every published handle lives in exactly **one** registry shard, on
   the shard ``crc32(handle) % n`` says, and resolves through every
   front-end — including mid-rebalance and after shard loss/rebuild.
6. Fleet-merged telemetry is lossless: merged sample counts equal the
   sum of per-session counts (the mergeable-accumulator contract).

Violations accumulate as strings; :meth:`assert_ok` raises
:class:`~repro.errors.ChaosError` listing every one.  A monitor on a
healthy run is silent — that silence is what the chaos property tests
assert under random fault schedules.
"""

from __future__ import annotations

from repro.errors import ChaosError, OgsaError
from repro.fleet.registry_fed import shard_index


class InvariantMonitor:
    """Attach to a driver (and optionally a controller) and keep watch."""

    def __init__(
        self,
        driver,
        controller=None,
        interval: float = 1.0,
        max_violations: int = 50,
    ) -> None:
        if interval <= 0:
            raise ChaosError("monitor interval must be > 0")
        self.driver = driver
        self.env = driver.env
        self.controller = controller
        self.interval = interval
        self.max_violations = max_violations
        self.violations: list[str] = []
        self.sweeps = 0
        # event mirrors
        self._started: set[str] = set()
        self._finished: set[str] = set()
        self._acquired = 0
        self._released = 0
        self._offered = 0
        self._admitted = 0
        self._rejected = 0
        self._abandoned = 0
        driver.session_observers.append(self._on_session)
        if controller is not None:
            controller.observers.append(self._on_queue)
        self.env.process(self._loop())

    # -- recording ---------------------------------------------------------

    def _violate(self, law: str, detail: str) -> None:
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(f"[t={self.env.now:.3f}] {law}: {detail}")

    def _on_session(self, kind: str, name: str, site: int) -> None:
        if kind == "start":
            if name in self._started:
                self._violate("single-start", f"session {name!r} started twice")
            self._started.add(name)
        elif kind in ("complete", "fail", "cancel"):
            if name not in self._started:
                self._violate(
                    "finish-implies-start",
                    f"session {name!r} finished ({kind}) without starting",
                )
            if name in self._finished:
                self._violate("single-finish", f"session {name!r} finished twice")
            self._finished.add(name)

    def _on_queue(self, kind: str, **detail) -> None:
        if kind in ("offer", "requeue"):
            self._offered += 1
        elif kind == "reject":
            self._rejected += 1
        elif kind == "abandon":
            self._abandoned += 1
        elif kind == "admit":
            self._admitted += 1
        elif kind == "acquire":
            self._acquired += 1
        elif kind == "release":
            self._released += 1
            if self._released > self._acquired:
                self._violate(
                    "ledger-balance",
                    f"release #{self._released} before matching acquire",
                )

    # -- sweeping ----------------------------------------------------------

    def _loop(self):
        while True:
            yield self.env.timeout(self.interval)
            self.sweep()

    def sweep(self) -> None:
        """One full audit of the global laws, at the current instant."""
        self.sweeps += 1
        self._check_queue_conservation()
        self._check_ledger()
        self._check_sessions()
        self._check_placement()
        self._check_registry()
        self._check_telemetry()

    def _check_queue_conservation(self) -> None:
        if self.controller is None:
            return
        q = self.controller.telemetry
        in_queue = self.controller.queue_depth
        lhs, rhs = q.offered, q.admitted + q.rejected + q.abandoned + in_queue
        if lhs != rhs:
            self._violate(
                "queue-conservation",
                f"offered={lhs} != admitted+rejected+abandoned+queued={rhs}",
            )
        if (q.offered, q.admitted, q.rejected, q.abandoned) != (
            self._offered, self._admitted, self._rejected, self._abandoned
        ):
            self._violate(
                "queue-mirror",
                f"telemetry ({q.offered},{q.admitted},{q.rejected},"
                f"{q.abandoned}) != events ({self._offered},"
                f"{self._admitted},{self._rejected},{self._abandoned})",
            )

    def _check_ledger(self) -> None:
        if self.controller is None:
            return
        ledger = self.controller.ledger
        balance = self._acquired - self._released
        if balance != ledger.total_inflight:
            self._violate(
                "ledger-balance",
                f"acquires-releases={balance} != " f"inflight={ledger.total_inflight}",
            )
        for site, (inflight, slots, _down) in ledger.snapshot().items():
            if not 0 <= inflight <= slots:
                self._violate(
                    "ledger-bounds",
                    f"site {site} inflight={inflight} outside [0, {slots}]",
                )

    def _check_sessions(self) -> None:
        running = set(self.driver.active)
        expected = self._started - self._finished
        lost = expected - running
        ghosts = running - expected
        if lost:
            self._violate(
                "no-session-lost",
                f"started-but-gone without a finish event: {sorted(lost)}",
            )
        if ghosts:
            self._violate(
                "no-session-lost",
                f"running but never started/already finished: " f"{sorted(ghosts)}",
            )

    def _check_placement(self) -> None:
        n_sites = len(self.driver.sites)
        for name in self.driver.active:
            site = self.driver.site_of.get(name)
            if site is None:
                self._violate("single-placement", f"running session {name!r} has no site")
            elif not 0 <= site < n_sites:
                self._violate(
                    "single-placement",
                    f"session {name!r} placed on unknown site {site}",
                )

    def _check_registry(self) -> None:
        shards = self.driver.shards
        n = len(shards)
        seen: dict[str, int] = {}
        for idx, shard in enumerate(shards):
            for handle in shard._entries:
                if handle in seen:
                    self._violate(
                        "one-shard-per-handle",
                        f"{handle} in shards {seen[handle]} and {idx}",
                    )
                    continue
                seen[handle] = idx
                routed = shard_index(handle, n)
                if routed != idx:
                    self._violate(
                        "shard-routing",
                        f"{handle} lives in shard {idx} but routes to " f"{routed} of {n}",
                    )
        for site in self.driver.sites:
            registry = site.registry
            if len(registry.shards) != n:
                self._violate(
                    "front-end-shards",
                    f"site {site.index} front-end sees "
                    f"{len(registry.shards)} shards, fleet has {n}",
                )
        if self.driver.sites and seen:
            front = self.driver.sites[0].registry
            for handle in seen:
                try:
                    front.lookup(handle)
                except OgsaError:
                    self._violate(
                        "handles-resolve",
                        f"{handle} published but lookup misses it",
                    )

    def _check_telemetry(self) -> None:
        telemetry = self.driver.telemetry
        for attr in ("steer_latency", "find_latency", "admit_latency"):
            merged = telemetry._merged(attr).n
            total = sum(getattr(t, attr).n for t in telemetry.sessions.values())
            if merged != total:
                self._violate(
                    "telemetry-lossless",
                    f"merged {attr} n={merged} != per-session sum {total}",
                )

    # -- end of run --------------------------------------------------------

    def final_check(self, report=None) -> None:
        """Quiescence + one last sweep, after the world has drained."""
        self.sweep()
        if self.driver.active:
            self._violate(
                "quiescence",
                f"sessions still running at the end: " f"{sorted(self.driver.active)}",
            )
        if self.controller is not None:
            if self.controller.queue_depth != 0:
                self._violate(
                    "quiescence",
                    f"{self.controller.queue_depth} sessions still queued",
                )
            ledger = self.controller.ledger
            if ledger.total_inflight != 0:
                self._violate(
                    "quiescence",
                    f"ledger still holds {ledger.total_inflight} slots",
                )
        if self._started != self._finished:
            self._violate(
                "quiescence",
                f"{len(self._started - self._finished)} sessions started " "but never finished",
            )
        if report is not None:
            totals = self.driver.telemetry.totals()
            if report.n_sessions != totals["sessions"]:
                self._violate(
                    "report-consistency",
                    f"report says {report.n_sessions} sessions, telemetry "
                    f"has {totals['sessions']}",
                )
            if report.completed + report.failed > report.n_sessions:
                self._violate(
                    "report-consistency",
                    f"completed {report.completed} + failed {report.failed} "
                    f"> sessions {report.n_sessions}",
                )
            q = report.queue
            if q is not None and q.offered != (q.admitted + q.rejected + q.abandoned):
                self._violate(
                    "report-consistency",
                    f"queue slice offered={q.offered} != admitted+rejected+"
                    f"abandoned={q.admitted + q.rejected + q.abandoned}",
                )

    # -- the verdict -------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise ChaosError(
                f"{len(self.violations)} invariant violation(s):\n" + "\n".join(self.violations)
            )

    def render(self) -> str:
        if self.ok:
            return (
                f"invariants: OK ({self.sweeps} sweeps, " f"{len(self._started)} sessions watched)"
            )
        return (
            f"invariants: {len(self.violations)} VIOLATION(S)\n"
            + "\n".join(f"  {v}" for v in self.violations)
        )
