"""The fault taxonomy and the seeded, replayable FaultSchedule DSL.

The paper's sessions survived hostile realities — firewalled HPC centres,
flaky trans-Atlantic links, mid-session service moves — but the testbed
so far only met them as fixed topology.  This module makes failure a
*scenario dimension*: a :class:`FaultSchedule` is a declarative, seeded
list of faults over virtual time, compiled by
:meth:`FaultSchedule.install` into DES processes that drive a
:class:`~repro.chaos.inject.FaultInjector` while an open-loop fleet is
running.  Same schedule, same seed, same arrivals => byte-for-byte the
same run, so every fault scenario is also a regression test.

Taxonomy (one frozen dataclass per kind):

========================  ===================================================
:class:`LinkDegrade`      WAN weather on one path: latency x N, bandwidth / N
:class:`Partition`        a host pair goes dark (messages lost, connects fail)
:class:`SiteOutage`       a whole site dies: HPC + service hosts isolated,
                          every listener down, capacity marked failed
:class:`ContainerCrash`   the OGSI::Lite container crashes; hosts stay up —
                          the migration-recovery case
:class:`VBrokerCrash`     a collaborative multiplexer dies; its sessions
                          need broker-pool failover
:class:`RegistryShardLoss`  one registry shard loses its entries (no revert:
                          data loss is permanent until recovery republishes)
:class:`FirewallLockdown` a site's firewall flips to deny-all mid-session
:class:`SlowNode`         limp mode: every link touching the site degrades
========================  ===================================================

Faults with a ``duration`` auto-revert (the injector undoes them); with
``duration=None`` they are permanent for the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import ClassVar, Iterator, Optional, Sequence

from repro.errors import ChaosError


@dataclass(frozen=True, kw_only=True)
class Fault:
    """Base: *when* it fires and for how long it holds."""

    kind: ClassVar[str] = "fault"

    at: float
    #: fault window; None = permanent (never reverted)
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ChaosError(f"{self.kind}: fault time must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ChaosError(f"{self.kind}: duration must be > 0 or None (permanent)")

    def describe(self) -> str:
        params = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name not in ("at", "duration")
        )
        window = "permanent" if self.duration is None else f"{self.duration:g}s"
        return f"{self.kind}(t={self.at:g}, {window}" + (f", {params})" if params else ")")


@dataclass(frozen=True, kw_only=True)
class LinkDegrade(Fault):
    kind: ClassVar[str] = "link-degrade"

    a: str
    b: str
    latency_factor: float = 10.0
    bandwidth_factor: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_factor < 1.0 or not 0.0 < self.bandwidth_factor <= 1.0:
            raise ChaosError(
                f"{self.kind}: need latency_factor >= 1 and " "bandwidth_factor in (0, 1]"
            )


@dataclass(frozen=True, kw_only=True)
class Partition(Fault):
    kind: ClassVar[str] = "partition"

    a: str
    b: str


@dataclass(frozen=True, kw_only=True)
class SiteOutage(Fault):
    kind: ClassVar[str] = "site-outage"

    site: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.site < 0:
            raise ChaosError(f"{self.kind}: site index must be >= 0")


@dataclass(frozen=True, kw_only=True)
class ContainerCrash(Fault):
    kind: ClassVar[str] = "container-crash"

    site: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.site < 0:
            raise ChaosError(f"{self.kind}: site index must be >= 0")


@dataclass(frozen=True, kw_only=True)
class VBrokerCrash(Fault):
    kind: ClassVar[str] = "vbroker-crash"

    broker: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.broker < 0:
            raise ChaosError(f"{self.kind}: broker index must be >= 0")


@dataclass(frozen=True, kw_only=True)
class RegistryShardLoss(Fault):
    kind: ClassVar[str] = "registry-shard-loss"

    shard: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shard < 0:
            raise ChaosError(f"{self.kind}: shard index must be >= 0")
        if self.duration is not None:
            raise ChaosError(
                f"{self.kind}: shard loss is permanent data loss; recovery "
                "republishes — a duration would imply the entries come back"
            )


@dataclass(frozen=True, kw_only=True)
class FirewallLockdown(Fault):
    kind: ClassVar[str] = "firewall-lockdown"

    host: str


@dataclass(frozen=True, kw_only=True)
class SlowNode(Fault):
    kind: ClassVar[str] = "slow-node"

    site: int
    factor: float = 8.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.site < 0:
            raise ChaosError(f"{self.kind}: site index must be >= 0")
        if self.factor <= 1.0:
            raise ChaosError(f"{self.kind}: limp factor must be > 1")


#: every concrete fault kind, for validation and random generation
FAULT_KINDS: tuple[type, ...] = (
    LinkDegrade, Partition, SiteOutage, ContainerCrash, VBrokerCrash,
    RegistryShardLoss, FirewallLockdown, SlowNode,
)

#: the continuous/integer :meth:`FaultSchedule.random` parameters an
#: adaptive campaign search may sweep (``faults.random.<name>`` paths)
RANDOM_TUNABLES: tuple[str, ...] = ("n_faults", "window", "duration_scale")


class FaultSchedule:
    """An ordered, validated set of faults — the replayable scenario unit.

    Iteration order is firing order: by ``at``, ties broken by insertion
    (same-time faults fire in the order they were declared, matching the
    DES kernel's FIFO rule — determinism is load-bearing here too).
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self._faults: list[Fault] = []
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultSchedule":
        if not isinstance(fault, Fault) or type(fault) is Fault:
            raise ChaosError(
                f"schedule entries must be concrete Fault instances, " f"got {fault!r}"
            )
        self._faults.append(fault)
        return self

    def __iter__(self) -> Iterator[Fault]:
        decorated = sorted((fault.at, i, fault) for i, fault in enumerate(self._faults))
        return iter(fault for _, _, fault in decorated)

    def __len__(self) -> int:
        return len(self._faults)

    @property
    def horizon(self) -> float:
        """When the last fault window closes (0.0 for an empty schedule)."""
        return max((f.at + (f.duration or 0.0) for f in self._faults), default=0.0)

    def describe(self) -> list[str]:
        return [f.describe() for f in self]

    # -- compilation -------------------------------------------------------

    def install(self, injector) -> list:
        """Compile into DES processes driving the injector; returns them.

        Each fault becomes one process: wait until ``at``, apply; if the
        fault has a duration, wait it out and revert.
        """
        injector.validate(self)
        return [injector.env.process(self._fire(injector, fault)) for fault in self]

    @staticmethod
    def _fire(injector, fault: Fault):
        env = injector.env
        if fault.at > env.now:
            yield env.timeout(fault.at - env.now)
        injector.apply(fault)
        if fault.duration is not None:
            yield env.timeout(fault.duration)
            injector.revert(fault)

    # -- seeded generation -------------------------------------------------

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        horizon: float,
        n_faults: int = 4,
        sites: int = 2,
        shards: int = 0,
        brokers: int = 0,
        hosts: Sequence[str] = (),
        host_pairs: Sequence[tuple[str, str]] = (),
        kinds: Optional[Sequence[type]] = None,
        window: float = 0.8,
        duration_scale: float = 1.0,
    ) -> "FaultSchedule":
        """A seeded random schedule over the fabric's population.

        Keyword-only: the campaign search layer addresses these
        parameters by name (``faults.random.<param>`` paths), so the
        signature is part of the wire format and positional calls are
        refused.

        Faults land in disjoint time slots across ``(0, window *
        horizon)`` — overlap-free per construction, so apply/revert
        pairs never interleave on the same target and the same seed
        always compiles to the same DES event sequence.  Kinds needing
        a population the caller did not declare (no brokers, no host
        pairs...) are excluded automatically.

        ``window`` and ``duration_scale`` are the continuous severity
        knobs an adaptive search sweeps: shrinking the window packs the
        same faults into less virtual time, and ``duration_scale``
        stretches (or shortens) every outage within its slot — at the
        defaults both leave the drawn schedule untouched, so existing
        seeds stay byte-identical.
        """
        if horizon <= 0:
            raise ChaosError("random schedule needs a positive horizon")
        if n_faults < 1:
            raise ChaosError("random schedule needs >= 1 fault")
        if not 0.0 < window <= 1.0:
            raise ChaosError("random schedule window must be in (0, 1]")
        if duration_scale <= 0:
            raise ChaosError("random schedule duration_scale must be > 0")
        rng = random.Random(seed)
        pool = list(kinds) if kinds is not None else list(FAULT_KINDS)
        if sites < 1:
            pool = [k for k in pool if k not in (SiteOutage, ContainerCrash, SlowNode)]
        if shards < 1:
            pool = [k for k in pool if k is not RegistryShardLoss]
        if brokers < 1:
            pool = [k for k in pool if k is not VBrokerCrash]
        if not host_pairs:
            pool = [k for k in pool if k not in (LinkDegrade, Partition)]
        if not hosts:
            pool = [k for k in pool if k is not FirewallLockdown]
        if not pool:
            raise ChaosError("no fault kind is satisfiable with the declared populations")
        schedule = cls()
        slot = window * horizon / n_faults
        for i in range(n_faults):
            kind = rng.choice(pool)
            offset = rng.uniform(0.1, 0.5) * slot
            at = slot * i + offset
            # The whole apply..revert window stays inside this fault's
            # slot, so windows are disjoint by construction; the scale
            # is clamped to the slot remainder for the same reason.
            duration = rng.uniform(0.3, 0.95) * (slot - offset)
            duration = min(duration * duration_scale, slot - offset)
            if kind is LinkDegrade:
                a, b = rng.choice(list(host_pairs))
                schedule.add(LinkDegrade(
                    at=at, duration=duration, a=a, b=b,
                    latency_factor=float(rng.randint(2, 20)),
                    bandwidth_factor=rng.choice((0.5, 0.25, 0.1)),
                ))
            elif kind is Partition:
                a, b = rng.choice(list(host_pairs))
                schedule.add(Partition(at=at, duration=duration, a=a, b=b))
            elif kind is SiteOutage:
                schedule.add(SiteOutage(at=at, duration=duration, site=rng.randrange(sites)))
            elif kind is ContainerCrash:
                schedule.add(ContainerCrash(at=at, duration=duration, site=rng.randrange(sites)))
            elif kind is VBrokerCrash:
                schedule.add(VBrokerCrash(at=at, duration=duration, broker=rng.randrange(brokers)))
            elif kind is RegistryShardLoss:
                schedule.add(RegistryShardLoss(at=at, shard=rng.randrange(shards)))
            elif kind is FirewallLockdown:
                schedule.add(
                    FirewallLockdown(at=at, duration=duration, host=rng.choice(list(hosts)))
                )
            elif kind is SlowNode:
                schedule.add(SlowNode(
                    at=at, duration=duration, site=rng.randrange(sites),
                    factor=float(rng.randint(4, 12)),
                ))
        return schedule
