"""Recovery orchestration: explicit per-session policies over faults.

Section 2.4's promise — "migrate both computation and visualization
within a session without any disturbance ... on the part of the
participating clients" — only means something if somebody *drives* the
migration when a fault hits.  The :class:`RecoveryOrchestrator` is that
somebody: it subscribes to a :class:`~repro.chaos.inject.FaultInjector`
and maps each fault onto one of four per-session actions:

* **retry** — cancel the stranded session and requeue its spec through
  the admission controller (recovery-priority, bound-exempt), so it
  relaunches from scratch on a live site.  The full-site-outage answer:
  when the compute host died, there is nothing left to migrate.
* **migrate** — move the session's steering/viz service instances out of
  a crashed container into a live site's container via
  :func:`repro.ogsa.migration.migrate_service` and rebind the resolver;
  clients re-resolve the same GSH on their next failed op and steering
  resumes mid-session.  The container-crash answer.
* **degrade** — tell the session to shed its remaining steering ops and
  wind down cleanly (limp-mode links are survivable; hammering a slow
  path with more ops is not).
* **abandon** — cancel and give up (the policy of last resort, and the
  explicit budget cap on retry storms).

Broker and registry faults recover at the *fabric* level: vbroker crash
=> broker-pool failover of its sessions; shard loss => republish every
live session's handles from the containers (the source of truth) through
a surviving front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.chaos.faults import (
    ContainerCrash,
    Fault,
    FirewallLockdown,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
)
from repro.errors import ChaosError, OgsaError, ReproError, VisitError
from repro.ogsa.migration import migrate_service
from repro.util.stats import RunningStats

RETRY, MIGRATE, DEGRADE, ABANDON = "retry", "migrate", "degrade", "abandon"
_ACTIONS = (RETRY, MIGRATE, DEGRADE, ABANDON)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Which action each fault class maps to, plus the retry budget."""

    site_outage: str = RETRY
    container_crash: str = MIGRATE
    slow_node: str = DEGRADE
    firewall_lockdown: str = DEGRADE
    max_retries: int = 2

    def __post_init__(self) -> None:
        for name in ("site_outage", "container_crash", "slow_node", "firewall_lockdown"):
            if getattr(self, name) not in _ACTIONS:
                raise ChaosError(f"policy {name} must be one of {_ACTIONS}")
        if self.site_outage == MIGRATE:
            raise ChaosError(
                "a full site outage kills the compute host; there is "
                "nothing to migrate — use retry or abandon"
            )
        if self.max_retries < 0:
            raise ChaosError("max_retries must be >= 0")

    def action_for(self, fault: Fault) -> Optional[str]:
        if isinstance(fault, SiteOutage):
            return self.site_outage
        if isinstance(fault, ContainerCrash):
            return self.container_crash
        if isinstance(fault, SlowNode):
            return self.slow_node
        if isinstance(fault, FirewallLockdown):
            return self.firewall_lockdown
        return None  # broker/registry/link faults recover at fabric level


def retry_name(name: str, attempt: int) -> str:
    """The attempt-th relaunch of a session (unique per fleet rules)."""
    return f"{name}~r{attempt}"


def root_name(name: str) -> str:
    return name.split("~r", 1)[0]


class RecoveryOrchestrator:
    """Wires fault notifications to recovery actions and keeps score."""

    def __init__(
        self,
        injector,
        controller=None,
        pool=None,
        policy: Optional[RecoveryPolicy] = None,
        track_pool: bool = True,
    ) -> None:
        self.injector = injector
        self.driver = injector.driver
        self.env = injector.env
        self.controller = controller if controller is not None else injector.controller
        self.pool = pool if pool is not None else injector.pool
        self.policy = policy or RecoveryPolicy()
        injector.on_fault.append(self._on_fault)
        self.driver.session_observers.append(self._on_session)
        #: (virtual time, fault kind, action, session) audit trail
        self.events: list[tuple[float, str, str, str]] = []
        #: retry session name -> (original name, fault time)
        self._pending_retry: dict[str, tuple[str, float]] = {}
        #: original name -> fault time, for migrated sessions in flight
        self._pending_migrate: dict[str, float] = {}
        self._retry_counts: dict[str, int] = {}
        self.recovery_latency = RunningStats()
        self._latency_max = 0.0
        self.impacted = 0
        self.recovered_retry = 0
        self.recovered_migrate = 0
        self.failed_retries = 0
        self.degraded = 0
        self.abandoned = 0
        self.broker_failovers = 0
        self.registry_rebuilds = 0
        self.unplaced = 0
        if track_pool and self.pool is not None:
            # Mirror the fleet lifecycle onto broker occupancy so vbroker
            # faults have real sessions to strand.
            self.driver.session_observers.append(self._track_brokers)

    # -- fault reactions ---------------------------------------------------

    def _on_fault(self, fault: Fault, phase: str) -> None:
        if phase != "apply":
            return
        if isinstance(fault, VBrokerCrash):
            self._fail_over_broker(fault)
            return
        if isinstance(fault, RegistryShardLoss):
            self._rebuild_registry(fault)
            return
        action = self.policy.action_for(fault)
        if action is None:
            return
        site = getattr(fault, "site", None)
        if site is None:  # lockdown names a host; map it to its site
            site = self.driver.site_of_host(fault.host)
            if site is None:
                return
        names = self.driver.sessions_at(site)
        if not names:
            return
        if action == MIGRATE:
            self._migrate_sessions(fault, site, names)
            return
        for name in names:
            self.impacted += 1
            if action == RETRY:
                self._retry(fault, name)
            elif action == DEGRADE:
                self.driver.degrade_session(name)
                self.degraded += 1
                self.events.append((self.env.now, fault.kind, DEGRADE, name))
            else:  # abandon
                self._abandon(fault, name)

    # -- the four actions --------------------------------------------------

    def _retry(self, fault: Fault, name: str) -> None:
        root = root_name(name)
        attempt = self._retry_counts.get(root, 0) + 1
        if self.controller is None or attempt > self.policy.max_retries:
            self._abandon(fault, name)
            return
        self._retry_counts[root] = attempt
        spec = self.driver.spec_of(name)
        self.driver.cancel_session(name, f"{fault.kind}; retrying elsewhere")
        retried = replace(spec, name=retry_name(root, attempt))
        self.controller.requeue(retried)
        self._pending_retry[retried.name] = (name, self.env.now)
        self.events.append((self.env.now, fault.kind, RETRY, name))

    def _abandon(self, fault: Fault, name: str) -> None:
        self.driver.cancel_session(name, f"{fault.kind}; abandoned")
        self.abandoned += 1
        self.events.append((self.env.now, fault.kind, ABANDON, name))

    def _migrate_sessions(self, fault: Fault, site_index: int, names: list[str]) -> None:
        source = self.driver.sites[site_index].container
        target_site = self._pick_target_site(site_index)
        for name in names:
            self.impacted += 1
            if target_site is None:
                # Nowhere to go: fall back to retry (or abandon inside).
                self._retry(fault, name)
                continue
            target = self.driver.sites[target_site].container
            moved = 0
            for sid in (f"steer-{name}", f"viz-{name}"):
                if sid not in source.deployed():
                    continue  # session died before deploying
                try:
                    migrate_service(sid, source, target, self.driver.resolver)
                    moved += 1
                except (OgsaError, ReproError):
                    break
            if moved:
                self._pending_migrate[name] = self.env.now
                self.events.append((self.env.now, fault.kind, MIGRATE, name))
            else:
                self._retry(fault, name)

    def _pick_target_site(self, exclude: int) -> Optional[int]:
        """The live site with the most headroom (deterministic tie-break:
        lowest index).  Uses the ledger when one exists, else any other
        site whose container is up."""
        ledger = self.injector.ledger
        candidates = []
        for site in self.driver.sites:
            if site.index == exclude or site.container.dead:
                continue
            if ledger is not None and site.index in ledger.sites():
                if ledger.is_failed(site.index) or ledger.is_drained(site.index):
                    continue
                candidates.append((-ledger.free(site.index), site.index))
            else:
                candidates.append((0, site.index))
        if not candidates:
            return None
        return min(candidates)[1]

    # -- fabric-level recovery ---------------------------------------------

    def _fail_over_broker(self, fault: VBrokerCrash) -> None:
        if self.pool is None:
            return
        for session in self.pool.sessions_on(fault.broker):
            try:
                self.pool.replace(session)
                self.broker_failovers += 1
                self.events.append((self.env.now, fault.kind, "failover", session))
            except VisitError:
                self.unplaced += 1
                self.events.append((self.env.now, fault.kind, "unplaced", session))

    def _rebuild_registry(self, fault: RegistryShardLoss) -> None:
        """Republish every live container's services — the containers are
        the source of truth; the registry is a cache over them."""
        restored = self.rebuild_registry()
        self.registry_rebuilds += 1
        self.events.append((self.env.now, fault.kind, "rebuild", f"{restored} entries"))

    def rebuild_registry(self) -> int:
        front = next(
            (s.registry for s in self.driver.sites if not s.container.dead),
            None,
        )
        if front is None:
            return 0
        # The canonical GSH of a migrated service keeps its *source*
        # authority (the whole point of the handle indirection), so
        # prefer the resolver's binding over the hosting container's
        # authority when reconstructing handles.
        canonical = {
            h.service_id: str(h) for h in self.driver.resolver.handles()
        }
        restored = 0
        for site in self.driver.sites:
            container = site.container
            if container.dead:
                continue
            for sid in container.deployed():
                meta = self._metadata_for(sid)
                if meta is None:
                    continue
                handle = canonical.get(sid, f"gsh://{container.authority}/{sid}")
                try:
                    # An entry that survived on another shard keeps its
                    # richer metadata (the job id the orchestrator
                    # published); republish is a refresh, not a dup.
                    meta = front.lookup(handle)
                except OgsaError:
                    pass
                front.publish(handle, meta)
                restored += 1
        return restored

    @staticmethod
    def _metadata_for(service_id: str) -> Optional[dict]:
        for prefix, kind in (("steer-", "steering"), ("viz-", "viz-steering")):
            if service_id.startswith(prefix):
                return {
                    "type": kind,
                    "application": service_id[len(prefix):],
                }
        return None  # registry front-ends and other infrastructure

    # -- lifecycle feedback ------------------------------------------------

    def _record_latency(self, dt: float) -> None:
        self.recovery_latency.add(dt)
        if dt > self._latency_max:
            self._latency_max = dt

    def _on_session(self, kind: str, name: str, site: int) -> None:
        if kind == "complete":
            if name in self._pending_retry:
                _orig, fault_t = self._pending_retry.pop(name)
                self.recovered_retry += 1
                self._record_latency(self.env.now - fault_t)
            if name in self._pending_migrate:
                fault_t = self._pending_migrate.pop(name)
                self.recovered_migrate += 1
                self._record_latency(self.env.now - fault_t)
        elif kind == "cancel":
            # A second fault cancelled a session we were already
            # recovering; whichever policy issued the cancel owns the
            # follow-up (retry spawns its own pending entry), so just
            # drop the stale expectations.
            self._pending_retry.pop(name, None)
            self._pending_migrate.pop(name, None)
        elif kind == "fail":
            if name in self._pending_retry:
                self._pending_retry.pop(name)
                self.failed_retries += 1
            if name in self._pending_migrate:
                # The session died despite the migration (it was mid-find
                # or mid-bind when the container crashed, say): escalate
                # to retry, keeping the original fault time so recovery
                # latency measures fault-to-recovered.
                fault_t = self._pending_migrate.pop(name)
                self._escalate_retry(name, fault_t)

    def _escalate_retry(self, name: str, fault_t: float) -> None:
        root = root_name(name)
        attempt = self._retry_counts.get(root, 0) + 1
        if self.controller is None or attempt > self.policy.max_retries:
            self.abandoned += 1
            self.events.append((self.env.now, "escalation", ABANDON, name))
            return
        self._retry_counts[root] = attempt
        retried = replace(self.driver.spec_of(name), name=retry_name(root, attempt))
        self.controller.requeue(retried)
        self._pending_retry[retried.name] = (name, fault_t)
        self.events.append((self.env.now, "escalation", RETRY, name))

    def _track_brokers(self, kind: str, name: str, site: int) -> None:
        if kind == "start":
            try:
                self.pool.place(name)
            except VisitError:
                self.unplaced += 1
        elif kind in ("complete", "fail", "cancel"):
            self.pool.release(name)

    # -- the verdict -------------------------------------------------------

    @property
    def recovered(self) -> int:
        return self.recovered_retry + self.recovered_migrate

    @property
    def recovery_rate(self) -> float:
        """Recovered-or-degraded fraction of fault-impacted sessions."""
        if self.impacted == 0:
            return 1.0
        return (self.recovered + self.degraded) / self.impacted

    def summary(self) -> dict:
        stats = self.recovery_latency
        return {
            "impacted": self.impacted,
            "recovered": self.recovered,
            "recovered_via": {
                "retry": self.recovered_retry,
                "migrate": self.recovered_migrate,
            },
            "degraded": self.degraded,
            "abandoned": self.abandoned,
            "failed_retries": self.failed_retries,
            "recovery_rate": self.recovery_rate,
            "recovery_latency_s": {
                "n": stats.n,
                "mean": stats.mean if stats.n else None,
                "max": self._latency_max if stats.n else None,
            },
            "broker_failovers": self.broker_failovers,
            "registry_rebuilds": self.registry_rebuilds,
            "unplaced": self.unplaced,
        }
