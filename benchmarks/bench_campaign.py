"""CAMPAIGN — the 12-cell smoke grid as one experiment-engine bench.

Runs the ``smoke`` preset (2 scenario suites x 2 arrival shapes x 3
fault schedules) through the campaign engine and reports the per-axis
marginals the matrix layer derives — goodput, steering p90 and
invariant violations by scenario, arrival and fault — plus the
determinism property the whole layer stands on: the multiprocess run
merges to the byte-identical MatrixReport of the serial one.

Results land in ``BENCH_campaign.json`` (uniform perf envelope) so the
campaign trajectory is diffable across PRs like every other bench.
"""

import json
import time

from benchmarks.conftest import run_once, write_json
from repro.campaign import CampaignRunner, MatrixReport, ResultStore, preset

HEADER = ["axis", "point", "cells", "sessions", "goodput", "ops",
          "violations", "steer p90 (ms)", "wait p90 (s)"]


def _run(tmpdir, workers: int):
    spec = preset("smoke")
    store = ResultStore(tmpdir / f"smoke-w{workers}.jsonl")
    runner = CampaignRunner(spec, store, workers=workers)
    t0 = time.perf_counter()
    matrix = runner.run()
    wall = time.perf_counter() - t0
    events = sum(
        rec["perf"].get("events", 0) for rec in store.cell_records()
    )
    return matrix, wall, events


def _marginal_rows(matrix: MatrixReport):
    rows = []
    for axis in ("scenario", "arrival", "faults"):
        for name, agg in matrix.marginals[axis].items():
            d = agg.to_dict()
            rows.append([
                axis, name, agg.cells, agg.sessions,
                f"{agg.goodput:.0%}", agg.ops, agg.violations,
                f"{d['steer_p90_ms']:.1f}", f"{d['wait_p90_s']:.2f}",
            ])
    return rows


def test_campaign_matrix(benchmark, reporter, tmp_path):
    def both():
        serial = _run(tmp_path, workers=1)
        parallel = _run(tmp_path, workers=2)
        return serial, parallel

    (matrix1, wall1, events), (matrix2, wall2, _) = run_once(benchmark, both)
    reporter.table(
        f"CAMPAIGN: smoke grid marginals ({matrix1.totals.cells} cells, "
        f"seed {preset('smoke').seed}; serial {wall1:.1f}s, "
        f"2 workers {wall2:.1f}s)",
        HEADER,
        _marginal_rows(matrix1),
    )
    # The engine's contract: full grid, zero invariant violations, and
    # the 2-worker merge is byte-identical to the serial one.
    assert matrix1.complete
    assert matrix1.violations == 0
    assert json.dumps(matrix1.to_dict(), sort_keys=True) == \
        json.dumps(matrix2.to_dict(), sort_keys=True)
    assert matrix1.render(per_cell=True) == matrix2.render(per_cell=True)
    write_json(
        "BENCH_campaign.json",
        {
            "serial_wall_seconds": wall1,
            "two_worker_wall_seconds": wall2,
            "matrix": matrix1.to_dict(),
        },
        wall_seconds=wall1 + wall2,
        events=2 * events,
    )


def test_campaign_smoke(reporter, tmp_path):
    """CI smoke: the 12-cell grid across 2 workers, resumably."""
    matrix, wall, events = _run(tmp_path, workers=2)
    reporter.note(
        f"CAMPAIGN smoke: {matrix.totals.cells}/{matrix.expected_cells} "
        f"cells, {matrix.totals.completed}/{matrix.totals.sessions} "
        f"sessions completed, {matrix.violations} violations, "
        f"wall {wall:.1f}s (2 workers)"
    )
    assert matrix.complete
    assert matrix.totals.cells >= 12
    assert matrix.violations == 0
    assert matrix.totals.completed / matrix.totals.sessions >= 0.7
    # Freshly generated every run (gitignored, unlike the committed
    # baselines) so the CI artifact upload carries this run's numbers,
    # not a copy of the repo's reference files.
    write_json(
        "BENCH_campaign_smoke.json",
        {"matrix": matrix.to_dict()},
        wall_seconds=wall,
        events=events,
    )
