"""FIG1 — the RealityGrid prototype pipeline (paper Figure 1).

"Computation and visualisation are on different machines and the steering
and visualisation can be viewed and controlled from a user's laptop."

Workload: LB3D on ucl-onyx; OGSA steering + visualization services on
man-bezier; the user on the SC conference floor.  Regenerated series: the
per-stage latencies of the steer -> see loop, against the 60 s human
tolerance of section 4.4.
"""

from benchmarks._wiring import wire_app_to_host
from benchmarks.conftest import run_once
from repro.ogsa import OgsiLiteContainer, ServiceConnection, SteeringService, VisualizationService
from repro.sims import LatticeBoltzmann3D
from repro.steering import SteeredApplication, steered_app_process
from repro.viz import decompress_frame
from repro.workloads import SIM_FEEDBACK_TOLERANCE, realitygrid_testbed


def _scenario():
    env, net = realitygrid_testbed()
    sim = LatticeBoltzmann3D(shape=(16, 16, 16), g=0.5, seed=11)
    app = SteeredApplication(sim, name="lb3d", sample_interval=2)

    control = wire_app_to_host(env, net, app, "ucl-onyx", "man-bezier", 7001,
                               kind="control")
    samples = wire_app_to_host(env, net, app, "ucl-onyx", "man-bezier", 7002,
                               kind="sample")

    container = OgsiLiteContainer(net.host("man-bezier"), 8000)
    container.start()
    marks: dict[str, float] = {}

    def deploy_when_wired():
        while "service_link" not in control or "service_link" not in samples:
            yield env.timeout(0.01)
        steer = SteeringService("steer-lb3d", control["service_link"],
                                application_name="LB3D")
        viz = VisualizationService("viz-lb3d", samples["service_link"])
        container.deploy(steer)
        container.deploy(viz)
        marks["deployed"] = env.now

    # The simulation: ~0.25 s of virtual compute per LB step.
    env.process(steered_app_process(env, app, compute_time=0.25))
    env.process(deploy_when_wired())

    stages = {}

    def user():
        while "deployed" not in marks:
            yield env.timeout(0.05)
        conn = ServiceConnection(net.host("floor-laptop"), "man-bezier", 8000)
        yield from conn.open()
        yield env.timeout(3.0)  # watch a few samples arrive first

        t0 = env.now
        yield from conn.invoke("steer-lb3d", "set_parameter", name="g",
                               value=3.0)
        stages["steer_ack"] = env.now - t0

        # Wait until a sample taken *after* the change reaches the viz.
        steer_step = app.sim.step_count
        t1 = env.now
        while True:
            meta = yield from conn.invoke("viz-lb3d", "stats")
            if meta["latest_step"] > steer_step:
                break
            yield env.timeout(0.2)
        stages["post_change_sample_at_viz"] = env.now - t1

        t2 = env.now
        yield from conn.invoke("viz-lb3d", "set_view", eye=[0.0, -3.0, 0.0],
                               target=[0.0, 0.0, 0.0])
        info = yield from conn.invoke("viz-lb3d", "render_frame")
        frame = decompress_frame(info["frame"])
        stages["render_and_fetch_frame"] = env.now - t2
        stages["frame_pixels_nonzero"] = float(
            (frame.color.sum(axis=2) > 0).mean()
        )
        stages["total_steer_to_see"] = env.now - t0

    env.process(user())
    env.run(until=120.0)
    return stages


def test_fig1_steer_to_see_pipeline(benchmark, reporter):
    stages = run_once(benchmark, _scenario)
    rows = [
        ["steer command acked (floor -> Manchester -> UCL -> back)",
         f"{stages['steer_ack']:.3f}"],
        ["post-change sample at viz host (UCL -> Manchester)",
         f"{stages['post_change_sample_at_viz']:.3f}"],
        ["render + fetch compressed frame (Manchester -> floor)",
         f"{stages['render_and_fetch_frame']:.3f}"],
        ["TOTAL steer -> updated picture",
         f"{stages['total_steer_to_see']:.3f}"],
        ["human tolerance budget (section 4.4)",
         f"{SIM_FEEDBACK_TOLERANCE:.1f}"],
    ]
    reporter.table("FIG1: RealityGrid steering pipeline latency (s, virtual)",
                   ["stage", "seconds"], rows)
    assert stages["total_steer_to_see"] < SIM_FEEDBACK_TOLERANCE
    assert stages["steer_ack"] < 2.0
    assert stages["frame_pixels_nonzero"] > 0.0
