"""ABL-THETA — ablation of the Barnes-Hut acceptance parameter.

The tree code's only tunable is theta (s/d acceptance).  This ablation
maps the accuracy/cost frontier that sits behind FIG3's O(N log N) claim:
small theta converges to direct summation (exact, O(N^2)); large theta is
cheap but sloppy.  PEPC's production default sits near 0.5-0.7.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.sims.pepc import build_octree, direct_field, tree_field


def _sweep(n=2048, thetas=(0.2, 0.4, 0.6, 0.8, 1.2)):
    rng = np.random.default_rng(11)
    pos = rng.random((n, 3))
    q = rng.choice([-1.0, 1.0], size=n)
    Ed, _ = direct_field(pos, q)
    norm = np.maximum(np.linalg.norm(Ed, axis=1), 1e-9)
    rows = []
    for theta in thetas:
        tree = build_octree(pos, q)
        t0 = time.perf_counter()
        Et, _, stats = tree_field(tree, theta=theta)
        elapsed = time.perf_counter() - t0
        err = np.linalg.norm(Et - Ed, axis=1) / norm
        ints = stats["monopole_interactions"] + stats["direct_interactions"]
        rows.append((theta, ints, float(np.median(err)),
                     float(np.percentile(err, 95)), elapsed))
    return rows


def test_ablation_theta_accuracy_cost_frontier(benchmark, reporter):
    rows = run_once(benchmark, _sweep)
    table = [
        [f"{theta:.1f}", ints, f"{med * 100:.2f}%", f"{p95 * 100:.2f}%",
         f"{t:.3f}"]
        for theta, ints, med, p95, t in rows
    ]
    reporter.table(
        "ABL-THETA: Barnes-Hut accuracy vs cost (N=2048, monopole)",
        ["theta", "interactions", "median err", "p95 err", "wall (s)"],
        table,
    )
    # Monotone frontier: cost falls, error rises with theta.
    ints = [r[1] for r in rows]
    errs = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(ints, ints[1:]))
    assert all(a <= b * 1.05 for a, b in zip(errs, errs[1:]))
    # The production operating point: few-percent error (monopole-only
    # expansion) at a fraction of the direct cost.
    theta06 = next(r for r in rows if abs(r[0] - 0.6) < 1e-9)
    assert theta06[2] < 0.10
    assert theta06[1] < 0.5 * 2048 * 2047
