"""CHAOS — recovery latency and goodput retained across a fault matrix.

Every scenario runs the same seeded 2x-overload Poisson stream against
the same 3-site fabric; only the fault schedule differs.  The questions
a production grid is judged on when things break:

* **goodput retained** — completed sessions as a fraction of the
  no-fault baseline: how much of the service survived the fault;
* **recovery latency** — fault instant to recovered-session completion,
  for the migrate/retry paths;
* **honesty** — zero invariant violations in every cell: the machinery
  may lose capacity, never track of a session or a slot.

All runs are deterministic under the fixed seeds; results land in
``BENCH_chaos.json`` so the resilience trajectory is diffable across PRs.
"""

import time

from benchmarks.conftest import run_once, write_json
from repro.chaos import (
    ChaosHarness,
    ContainerCrash,
    FaultSchedule,
    FirewallLockdown,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
)
from repro.fleet import BrokerPool, FleetDriver
from repro.load import AdmissionController, PoissonArrivals

N_SITES = 3
QUEUE_SLOTS = 2
QUEUE_LIMIT = 12
HORIZON = 12.0
SEED = 11
#: ~2x the fabric's service rate (6 slots / ~3.5 s per session)
RATE_2X = 3.4

#: the fault matrix: scenario name -> schedule builder
MATRIX = {
    "baseline": lambda: FaultSchedule(),
    "site-outage": lambda: FaultSchedule([
        SiteOutage(at=5.0, site=0, duration=20.0),
    ]),
    "container-crash": lambda: FaultSchedule([
        ContainerCrash(at=5.0, site=0, duration=10.0),
    ]),
    "vbroker-crash": lambda: FaultSchedule([
        VBrokerCrash(at=5.0, broker=0),
    ]),
    "shard-loss": lambda: FaultSchedule([
        RegistryShardLoss(at=5.0, shard=0),
    ]),
    "lockdown": lambda: FaultSchedule([
        FirewallLockdown(at=5.0, host="hpc-1", duration=8.0),
    ]),
    "limp-node": lambda: FaultSchedule([
        SlowNode(at=5.0, site=1, factor=8.0, duration=8.0),
    ]),
    "outage+vbroker": lambda: FaultSchedule([
        SiteOutage(at=5.0, site=0, duration=20.0),
        VBrokerCrash(at=6.0, broker=0),
    ]),
}


def _run(scenario: str):
    t0 = time.perf_counter()
    driver = FleetDriver(n_sites=N_SITES, queue_slots=QUEUE_SLOTS)
    pool = BrokerPool.build(
        driver.net, [s.svc_name for s in driver.sites], port=7100
    )
    ctl = AdmissionController(driver, queue_limit=QUEUE_LIMIT)
    world = ChaosHarness(driver, ctl, pool=pool)
    world.install(MATRIX[scenario]())
    arrivals = PoissonArrivals(rate=RATE_2X, horizon=HORIZON, seed=SEED,
                               duration=2.0, cadence=0.5, participants=1)
    report = ctl.run(arrivals, until=180.0)
    verdict = world.verdict(report)
    return report, verdict, time.perf_counter() - t0


def _row(name, report, verdict, baseline_completed, wall):
    rec = verdict["recovery"]
    lat = rec["recovery_latency_s"]
    return [
        name,
        report.completed,
        f"{report.completed / baseline_completed:.0%}",
        rec["impacted"],
        rec["recovered_via"]["retry"],
        rec["recovered_via"]["migrate"],
        rec["degraded"],
        rec["abandoned"],
        "-" if lat["mean"] is None else f"{lat['mean']:.2f}",
        "-" if lat["max"] is None else f"{lat['max']:.2f}",
        verdict["invariant_violations"],
        f"{wall:.2f}",
    ]


HEADER = ["fault", "completed", "goodput vs base", "impacted", "retry",
          "migrate", "degraded", "abandoned", "rec lat mean (s)",
          "rec lat max (s)", "violations", "wall (s)"]


def test_chaos_fault_matrix(benchmark, reporter):
    def matrix():
        return {name: _run(name) for name in MATRIX}

    results = run_once(benchmark, matrix)
    base_report, base_verdict, _ = results["baseline"]
    rows = [
        _row(name, rep, ver, base_report.completed, wall)
        for name, (rep, ver, wall) in results.items()
    ]
    reporter.table(
        f"CHAOS: fault matrix at 2x load ({N_SITES} sites x "
        f"{QUEUE_SLOTS} slots, Poisson lambda={RATE_2X}/s, seed {SEED})",
        HEADER,
        rows,
    )
    # Honesty: zero invariant violations in every cell of the matrix.
    for name, (rep, ver, _) in results.items():
        assert ver["invariant_violations"] == 0, (name, ver["violations"])
        # Nothing stuck: every session reached a terminal state.
        assert rep.completed + rep.failed == rep.n_sessions, name
    # The acceptance bar: compound outage+vbroker recovers >= 90% of the
    # impacted sessions via migrate/retry rather than abandoning them.
    rec = results["outage+vbroker"][1]["recovery"]
    assert rec["impacted"] > 0
    assert rec["recovered"] / rec["impacted"] >= 0.9, rec
    # Single-fault goodput stays useful: every cell retains >= 70% of
    # the baseline's completions (the controller sheds fresh load, it
    # does not collapse).
    for name, (rep, _, _) in results.items():
        assert rep.completed >= 0.7 * base_report.completed, name
    # Deterministic under the fixed seeds: a rerun of one cell agrees.
    again_rep, again_ver, _ = _run("site-outage")
    assert again_rep.to_dict() == results["site-outage"][0].to_dict()
    assert again_ver == results["site-outage"][1]
    write_json("BENCH_chaos.json", {
        "config": {
            "n_sites": N_SITES, "queue_slots": QUEUE_SLOTS,
            "queue_limit": QUEUE_LIMIT, "rate": RATE_2X,
            "horizon": HORIZON, "seed": SEED,
        },
        "matrix": {
            name: {
                "report": rep.to_dict(),
                "verdict": ver,
                "wall_seconds": wall,
            }
            for name, (rep, ver, wall) in results.items()
        },
    }, wall_seconds=sum(wall for (_r, _v, wall) in results.values()))


def test_chaos_smoke(reporter):
    """CI smoke: one seeded compound fault schedule end-to-end."""
    report, verdict, wall = _run("outage+vbroker")
    rec = verdict["recovery"]
    reporter.note(
        f"CHAOS smoke: {report.completed} completed, "
        f"{rec['impacted']} impacted, {rec['recovered']} recovered "
        f"({rec['recovered_via']}), "
        f"{verdict['invariant_violations']} violations, wall {wall:.2f}s"
    )
    assert verdict["invariant_violations"] == 0
    assert rec["impacted"] > 0
    assert rec["recovered"] / rec["impacted"] >= 0.9
