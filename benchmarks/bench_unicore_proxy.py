"""UPROXY — the VISIT-UNICORE proxy path (paper section 3.3).

Regenerated series: (a) the firewall reality — direct VISIT blocked, the
gateway passes; (b) sample delivery latency through the polling proxy vs
the poll interval (the price of firewall-friendliness); (c) steering
round-trip through the proxy vs a direct VISIT connection.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.des import Environment
from repro.errors import FirewallBlocked
from repro.net import Firewall, Network
from repro.unicore import (
    Certificate,
    Gateway,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.unicore.visit_ext import VisitProxyServer, VisitUnicorePlugin
from repro.visit import VisitClient
from repro.workloads import SUPERJANET, link_with_profile

GATEWAY_PORT = 4433
PROXY_PORT = 5500
TAG_DATA, TAG_STEER = 1, 2


def _grid(poll_interval):
    env = Environment()
    net = Network(env)
    net.add_host("user")
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    link_with_profile(net, "user", "hpc", SUPERJANET)
    trust = TrustStore({"CA"})
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("hpc"))
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "SITE", tsi)
    gw.register_vsite("SITE", "hpc", 9000)
    gw.start()
    njs.start()
    proxy = VisitProxyServer(net.host("hpc"), PROXY_PORT, password="pw")
    proxy.start()
    tsi.visit_proxy = proxy
    ident = UserIdentity(Certificate("CN=user", "CA"), "user")
    uc = UnicoreClient(net.host("user"), ident, "hpc", GATEWAY_PORT)
    plugin = VisitUnicorePlugin(uc, "SITE", "user", poll_interval=poll_interval)
    return env, net, uc, plugin, proxy


def _proxied_run(poll_interval, steps=40):
    env, net, uc, plugin, proxy = _grid(poll_interval)
    plugin.provide(TAG_STEER, lambda: 0.7)
    sim_client = VisitClient(net.host("hpc"), "hpc", PROXY_PORT, "pw")
    steer_latencies = []

    def simulation():
        yield from sim_client.connect(timeout=1.0)
        for _ in range(steps):
            yield env.timeout(0.1)
            yield from sim_client.send(TAG_DATA, np.zeros(512, dtype=np.float32))
            t0 = env.now
            ok, _ = yield from sim_client.request(TAG_STEER,
                                                  timeout=4 * poll_interval + 1)
            if ok:
                steer_latencies.append(env.now - t0)

    def user():
        yield from uc.connect()
        plugin.start()

    env.process(simulation())
    env.process(user())
    # Each step costs ~0.1s compute plus a steering wait of up to ~one
    # poll interval; budget accordingly so every configuration finishes.
    env.run(until=steps * (0.3 + 2.0 * poll_interval) + 20.0)
    return {
        "delivery_mean": float(np.mean(plugin.delivery_latencies))
        if plugin.delivery_latencies else float("inf"),
        "steer_mean": float(np.mean(steer_latencies))
        if steer_latencies else float("inf"),
        "samples": len(plugin.received[TAG_DATA]),
        "steers": len(steer_latencies),
    }


def _direct_blocked():
    env, net, uc, plugin, proxy = _grid(0.5)
    outcome = {}

    def try_direct():
        try:
            yield from net.host("user").connect("hpc", PROXY_PORT)
        except FirewallBlocked:
            outcome["blocked"] = True

    env.process(try_direct())
    env.run(until=5.0)
    return outcome.get("blocked", False)


def test_uproxy_firewall_and_poll_latency(benchmark, reporter):
    def sweep():
        blocked = _direct_blocked()
        results = {p: _proxied_run(p) for p in (0.1, 0.5, 1.0)}
        return blocked, results

    blocked, results = run_once(benchmark, sweep)
    rows = []
    for interval, r in sorted(results.items()):
        rows.append(
            [interval, f"{r['delivery_mean'] * 1e3:.0f}",
             f"{r['steer_mean'] * 1e3:.0f}", r["samples"], r["steers"]]
        )
    reporter.table(
        "UPROXY: VISIT through the UNICORE gateway (polling proxy)",
        ["poll interval (s)", "sample delivery (ms)",
         "steer round-trip (ms)", "samples", "steer ok"],
        rows,
    )
    reporter.note(
        f"direct VISIT connection through the firewall: "
        f"{'BLOCKED (as designed)' if blocked else 'unexpectedly allowed'}"
    )
    assert blocked
    # Latency tracks the poll interval (~interval/2 + transport).
    assert results[0.1]["delivery_mean"] < results[1.0]["delivery_mean"]
    assert results[1.0]["delivery_mean"] > 0.3  # dominated by polling
    for r in results.values():
        assert r["samples"] >= 35 and r["steers"] >= 30
