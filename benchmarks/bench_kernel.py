"""KERNEL — raw DES engine throughput (events/sec) per hot pattern.

The fleet/chaos/load benches measure scenarios; this one measures the
kernel itself, so a regression in event dispatch, timeout recycling,
store handoff or interrupt tombstoning is visible in isolation — and the
committed ``BENCH_kernel.json`` records the trajectory across PRs.

Every pattern runs once per scheduler backend (``repro.des.sched``), so
the calendar queue and the reference heap are measured side by side and
``BENCH_kernel.json`` keys its results per backend.  The throughput test
also asserts the headline claim: the calendar queue beats the heap by at
least 2x on at least one pattern (``deep-horizon`` is the one built to
show it).

Patterns:

* ``timer-churn`` — one process yielding bare timeouts: the recycled
  delay-then-resume path every poll loop and compute step rides.
* ``timer-fanout`` — 1000 concurrently ticking processes: heap pressure
  at fleet-like depth.
* ``store-pingpong`` — two processes handing items through two stores:
  the mailbox path under every simulated connection.
* ``interrupt-storm`` — parked processes interrupted and resumed: the
  tombstone path fault recovery leans on.
* ``deep-horizon`` — hundreds of thousands of pre-scheduled timeouts
  spread over a wide horizon: the deep-schedule shape where a binary
  heap pays O(log n) cache-hostile sift per event and a calendar queue
  pays an O(1) bucket append.
"""

import time

from benchmarks.conftest import run_once, write_json
from repro.des import Environment, Interrupt, Store, Timeout, available_backends

N_CHURN = 200_000
N_FANOUT_PROCS = 1_000
N_FANOUT_TICKS = 100
N_PINGPONG = 50_000
N_INTERRUPTS = 20_000
N_DEEP = 400_000
DEEP_SPREAD_MS = 1_000_000


def _timed(env: Environment, horizon=None):
    t0 = time.perf_counter()
    env.run(until=horizon)
    wall = time.perf_counter() - t0
    return env.events_processed, wall


def bench_timer_churn(backend=None):
    env = Environment(scheduler=backend)

    def ticker():
        for _ in range(N_CHURN):
            yield env.timeout(0.001)

    env.process(ticker())
    return _timed(env)


def bench_timer_fanout(backend=None):
    env = Environment(scheduler=backend)

    def ticker(phase):
        for _ in range(N_FANOUT_TICKS):
            yield env.timeout(0.01 + phase * 1e-6)

    for p in range(N_FANOUT_PROCS):
        env.process(ticker(p))
    return _timed(env)


def bench_store_pingpong(backend=None):
    env = Environment(scheduler=backend)
    ping, pong = Store(env), Store(env)

    def left():
        for i in range(N_PINGPONG):
            yield ping.put(i)
            yield pong.get()

    def right():
        for _ in range(N_PINGPONG):
            item = yield ping.get()
            yield pong.put(item)

    env.process(left())
    env.process(right())
    return _timed(env)


def bench_interrupt_storm(backend=None):
    env = Environment(scheduler=backend)

    def sleeper():
        woken = 0
        while True:
            try:
                yield env.timeout(1e9)
            except Interrupt:
                woken += 1
                if woken >= N_INTERRUPTS // 10:
                    return

    def waker(procs):
        for _ in range(N_INTERRUPTS // 10):
            for p in procs:
                if p.is_alive:
                    p.interrupt("tick")
            yield env.timeout(0.001)

    procs = [env.process(sleeper()) for _ in range(10)]
    env.process(waker(procs))
    return _timed(env, horizon=1e8)


def bench_deep_horizon(backend=None):
    env = Environment(scheduler=backend)
    # Knuth-hash the index so insertion order is uncorrelated with event
    # time — the adversarial shape for a binary heap's sift path.
    for i in range(N_DEEP):
        Timeout(env, ((i * 2654435761) % DEEP_SPREAD_MS) * 1e-3)
    return _timed(env)


SCENARIOS = {
    "timer-churn": bench_timer_churn,
    "timer-fanout": bench_timer_fanout,
    "store-pingpong": bench_store_pingpong,
    "interrupt-storm": bench_interrupt_storm,
    "deep-horizon": bench_deep_horizon,
}

#: conservative events/sec floors per backend — a CI box is allowed to
#: be ~10x slower than a dev laptop, but an accidental O(n) in the
#: kernel (or a calendar width-adaptation pathology) is not
FLOORS = {
    "heap": {
        "timer-churn": 100_000,
        "timer-fanout": 100_000,
        "store-pingpong": 80_000,
        "interrupt-storm": 50_000,
        "deep-horizon": 25_000,
    },
    "calendar": {
        "timer-churn": 100_000,
        "timer-fanout": 80_000,
        "store-pingpong": 80_000,
        "interrupt-storm": 50_000,
        "deep-horizon": 60_000,
    },
}

#: the headline acceptance claim: calendar >= 2x heap on at least one
#: pattern (deep-horizon measures ~2.3x on a dev container)
SPEEDUP_CLAIM = 2.0


def test_kernel_throughput(benchmark, reporter):
    def matrix():
        return {
            backend: {name: fn(backend) for name, fn in SCENARIOS.items()}
            for backend in available_backends()
        }

    results = run_once(benchmark, matrix)
    rows = [
        [backend, name, events, f"{wall * 1e3:.1f}", f"{events / wall:,.0f}"]
        for backend, per in results.items()
        for name, (events, wall) in per.items()
    ]
    reporter.table(
        "KERNEL: DES engine throughput per hot pattern x scheduler backend",
        ["backend", "pattern", "events", "wall (ms)", "events/s"],
        rows,
    )
    for backend, per in results.items():
        for name, (events, wall) in per.items():
            rate = events / wall
            assert rate > FLOORS[backend][name], (
                f"{backend}/{name}: {rate:,.0f} events/s below floor "
                f"{FLOORS[backend][name]:,}"
            )
    # Identical workloads must process identical event counts on every
    # backend — a backend cannot buy throughput by dropping work.
    reference = results["heap"]
    for backend, per in results.items():
        for name, (events, _wall) in per.items():
            assert events == reference[name][0], (
                f"{backend}/{name}: {events} events vs heap's {reference[name][0]}"
            )
    best = max(
        (per[name][0] / per[name][1]) / (reference[name][0] / reference[name][1])
        for backend, per in results.items()
        if backend != "heap"
        for name in per
    )
    reporter.note(f"KERNEL: best non-heap speedup over heap {best:.2f}x")
    assert best >= SPEEDUP_CLAIM, (
        f"no backend reached {SPEEDUP_CLAIM}x over heap (best {best:.2f}x)"
    )
    write_json(
        "BENCH_kernel.json",
        {
            backend: {
                name: {
                    "events": events,
                    "wall_seconds": wall,
                    "events_per_sec": events / wall,
                }
                for name, (events, wall) in per.items()
            }
            for backend, per in results.items()
        },
        wall_seconds=sum(
            wall for per in results.values() for (_e, wall) in per.values()
        ),
        events=sum(
            events for per in results.values() for (events, _w) in per.values()
        ),
    )


def test_kernel_smoke(reporter):
    """CI smoke: the recycled-timeout path clears a conservative floor on
    every scheduler backend (and the pool actually recycles on each)."""
    for backend in available_backends():
        env = Environment(scheduler=backend)

        def ticker():
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(ticker())
        t0 = time.perf_counter()
        env.run()
        wall = time.perf_counter() - t0
        rate = env.events_processed / wall
        reporter.note(
            f"KERNEL smoke [{backend}]: {env.events_processed} events in "
            f"{wall * 1e3:.1f} ms ({rate:,.0f} events/s), timeout pool size "
            f"{len(env._timeout_pool)}"
        )
        assert rate > 50_000
        # The pool actually recycles: a churn run must not allocate one
        # Timeout per yield.
        assert len(env._timeout_pool) >= 1
