"""KERNEL — raw DES engine throughput (events/sec) per hot pattern.

The fleet/chaos/load benches measure scenarios; this one measures the
kernel itself, so a regression in event dispatch, timeout recycling,
store handoff or interrupt tombstoning is visible in isolation — and the
committed ``BENCH_kernel.json`` records the trajectory across PRs.

Patterns:

* ``timer-churn`` — one process yielding bare timeouts: the recycled
  delay-then-resume path every poll loop and compute step rides.
* ``timer-fanout`` — 1000 concurrently ticking processes: heap pressure
  at fleet-like depth.
* ``store-pingpong`` — two processes handing items through two stores:
  the mailbox path under every simulated connection.
* ``interrupt-storm`` — parked processes interrupted and resumed: the
  tombstone path fault recovery leans on.
"""

import time

from benchmarks.conftest import run_once, write_json
from repro.des import Environment, Interrupt, Store

N_CHURN = 200_000
N_FANOUT_PROCS = 1_000
N_FANOUT_TICKS = 100
N_PINGPONG = 50_000
N_INTERRUPTS = 20_000


def _timed(env: Environment, horizon=None):
    t0 = time.perf_counter()
    env.run(until=horizon)
    wall = time.perf_counter() - t0
    return env.events_processed, wall


def bench_timer_churn():
    env = Environment()

    def ticker():
        for _ in range(N_CHURN):
            yield env.timeout(0.001)

    env.process(ticker())
    return _timed(env)


def bench_timer_fanout():
    env = Environment()

    def ticker(phase):
        for _ in range(N_FANOUT_TICKS):
            yield env.timeout(0.01 + phase * 1e-6)

    for p in range(N_FANOUT_PROCS):
        env.process(ticker(p))
    return _timed(env)


def bench_store_pingpong():
    env = Environment()
    ping, pong = Store(env), Store(env)

    def left():
        for i in range(N_PINGPONG):
            yield ping.put(i)
            yield pong.get()

    def right():
        for _ in range(N_PINGPONG):
            item = yield ping.get()
            yield pong.put(item)

    env.process(left())
    env.process(right())
    return _timed(env)


def bench_interrupt_storm():
    env = Environment()

    def sleeper():
        woken = 0
        while True:
            try:
                yield env.timeout(1e9)
            except Interrupt:
                woken += 1
                if woken >= N_INTERRUPTS // 10:
                    return

    def waker(procs):
        for _ in range(N_INTERRUPTS // 10):
            for p in procs:
                if p.is_alive:
                    p.interrupt("tick")
            yield env.timeout(0.001)

    procs = [env.process(sleeper()) for _ in range(10)]
    env.process(waker(procs))
    return _timed(env, horizon=1e8)


SCENARIOS = {
    "timer-churn": bench_timer_churn,
    "timer-fanout": bench_timer_fanout,
    "store-pingpong": bench_store_pingpong,
    "interrupt-storm": bench_interrupt_storm,
}

#: conservative events/sec floors — a CI box is allowed to be ~10x
#: slower than a dev laptop, but an accidental O(n) in the kernel is not
FLOORS = {
    "timer-churn": 100_000,
    "timer-fanout": 100_000,
    "store-pingpong": 80_000,
    "interrupt-storm": 50_000,
}


def test_kernel_throughput(benchmark, reporter):
    def matrix():
        return {name: fn() for name, fn in SCENARIOS.items()}

    results = run_once(benchmark, matrix)
    rows = [
        [name, events, f"{wall * 1e3:.1f}", f"{events / wall:,.0f}"]
        for name, (events, wall) in results.items()
    ]
    reporter.table(
        "KERNEL: DES engine throughput per hot pattern",
        ["pattern", "events", "wall (ms)", "events/s"],
        rows,
    )
    for name, (events, wall) in results.items():
        rate = events / wall
        assert rate > FLOORS[name], (
            f"{name}: {rate:,.0f} events/s below floor {FLOORS[name]:,}"
        )
    write_json(
        "BENCH_kernel.json",
        {
            name: {
                "events": events,
                "wall_seconds": wall,
                "events_per_sec": events / wall,
            }
            for name, (events, wall) in results.items()
        },
        wall_seconds=sum(wall for (_e, wall) in results.values()),
        events=sum(events for (events, _w) in results.values()),
    )


def test_kernel_smoke(reporter):
    """CI smoke: the recycled-timeout path clears a conservative floor."""
    env = Environment()

    def ticker():
        for _ in range(20_000):
            yield env.timeout(0.001)

    env.process(ticker())
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    rate = env.events_processed / wall
    reporter.note(
        f"KERNEL smoke: {env.events_processed} events in {wall * 1e3:.1f} ms "
        f"({rate:,.0f} events/s), timeout pool size "
        f"{len(env._timeout_pool)}"
    )
    assert rate > 50_000
    # The pool actually recycles: a churn run must not allocate one
    # Timeout per yield.
    assert len(env._timeout_pool) >= 1
