"""S43 — the post-processing feedback loop (paper section 4.3).

"The more stringent requirement here is, that the update takes place at
the same time at the different participating sites...  such scene update
rates are only possible if the generation of the new content is done
locally and only synchronisation information such as the parameter set
for the cutting plane determination is exchanged."

Regenerated series: update latency, inter-site skew and WAN bytes for
parameter-sync vs content-streaming, swept over field size and
participant count.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.covise import CollaborativeCovise, MapEditor
from repro.des import Environment
from repro.net import Network
from repro.workloads import SUPERJANET, link_with_profile


def _spec(resolution):
    env = Environment()
    net = Network(env)
    net.add_host("scratch")
    editor = MapEditor(net)
    editor.add_source("read", "scratch", lambda: np.zeros((4, 4, 4)))
    editor.add("CuttingPlane", "cut", "scratch", resolution=resolution)
    editor.connect("read", "field", "cut", "field")
    return editor.spec()


def _session(n_sites, field_n, resolution):
    env = Environment()
    net = Network(env)
    names = [f"site{i}" for i in range(n_sites)]
    for n in names:
        net.add_host(n)
    for i in range(n_sites):
        for j in range(i + 1, n_sites):
            link_with_profile(net, names[i], names[j], SUPERJANET)
    rng = np.random.default_rng(3)
    field = rng.random((field_n, field_n, field_n))
    sources = {n: {"read": (lambda f=field: f)} for n in names}
    session = CollaborativeCovise(
        net, _spec(resolution), {n: n for n in names}, sources,
        watch=("cut", "plane"),
    )
    return env, session


def _measure(n_sites, field_n, mode, resolution=48):
    env, session = _session(n_sites, field_n, resolution)
    out = {}

    def proc():
        yield from session.execute_all()
        t0 = env.now
        report = yield from session.change_parameter(
            "cut", "point", (field_n / 3.0,) * 3, mode=mode
        )
        report["latency"] = max(report["per_site_done"].values()) - t0
        out.update(report)

    env.process(proc())
    env.run(until=300.0)
    return out


def test_s43_param_vs_content_over_plane_resolution(benchmark, reporter):
    def sweep():
        rows = []
        for resolution in (32, 64, 96):
            for mode in ("parameter", "content"):
                r = _measure(3, 32, mode, resolution=resolution)
                rows.append(
                    [f"{resolution}x{resolution}", mode,
                     f"{r['latency'] * 1e3:.1f}",
                     f"{r['skew'] * 1e3:.2f}", r["wan_bytes"],
                     r["digests_agree"]]
                )
        return rows

    rows = run_once(benchmark, sweep)
    reporter.table(
        "S43a: cutting-plane update, 3 sites on SuperJanet "
        "(latency | skew | WAN bytes)",
        ["plane", "sync mode", "latency (ms)", "skew (ms)", "WAN bytes",
         "identical content"],
        rows,
    )
    # Parameter mode: WAN bytes constant regardless of the extracted
    # content size; content mode grows with it.
    param_bytes = [int(r[4]) for r in rows if r[1] == "parameter"]
    content_bytes = [int(r[4]) for r in rows if r[1] == "content"]
    assert len(set(param_bytes)) == 1
    assert content_bytes[0] < content_bytes[-1]
    assert all(r[5] for r in rows)


def test_s43_skew_vs_participants(benchmark, reporter):
    def sweep():
        rows = []
        for k in (2, 4, 8):
            for mode in ("parameter", "content"):
                r = _measure(k, 32, mode, resolution=96)
                rows.append([k, mode, f"{r['skew'] * 1e3:.2f}",
                             r["wan_bytes"]])
        return rows

    rows = run_once(benchmark, sweep)
    reporter.table(
        "S43b: inter-site skew vs participants (96x96 plane)",
        ["sites", "sync mode", "skew (ms)", "WAN bytes"], rows,
    )
    # Content streaming serializes per-receiver transfers -> skew grows
    # with participants; parameter sync stays near-flat.
    param_skews = [float(r[2]) for r in rows if r[1] == "parameter"]
    content_skews = [float(r[2]) for r in rows if r[1] == "content"]
    assert content_skews[-1] > 2 * param_skews[-1]
    assert content_skews[0] < content_skews[-1]  # grows with participants
    # Parameter-mode skew stays near the one-way latency at every size.
    assert max(param_skews) < 3 * min(param_skews) + 1e-9
