"""VISIT-T — the VISIT design goal (paper section 3.2).

"A main design goal of VISIT was to minimize the load on the steered
simulation and to prevent failures or slow operation of the visualization
from disturbing the simulation progress ...  all operations ... are
guaranteed to complete (or fail) after a user-specified timeout."

Workload: a simulation stepping every 50 ms (virtual) that ships a sample
and polls for parameters each step, against a healthy / slow / dead
visualization — once with the VISIT client (bounded ops), once with a
blocking-style baseline.  Regenerated series: steps completed in a fixed
virtual horizon and the per-step overhead.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.des import Environment
from repro.net import Network
from repro.visit import VisitClient, VisitServer
from repro.visit.client import BlockingClientBaseline
from repro.workloads import CAMPUS, link_with_profile

HORIZON = 20.0
STEP_COST = 0.05
TAG_DATA, TAG_PARAMS = 1, 2


def _grid(response_delay=0.0, ack_sends=False):
    env = Environment()
    net = Network(env)
    net.add_host("sim-host")
    net.add_host("viz-host")
    link_with_profile(net, "sim-host", "viz-host", CAMPUS)
    server = VisitServer(net.host("viz-host"), 6000, password="pw",
                         response_delay=response_delay, ack_sends=ack_sends)
    server.provide(TAG_PARAMS, lambda: 1.0)
    server.start()
    return env, net, server


def _visit_run(server_state):
    delay = {"healthy": 0.0, "slow": 2.0, "dead": 0.0}[server_state]
    env, net, server = _grid(response_delay=delay)
    client = VisitClient(net.host("sim-host"), "viz-host", 6000, "pw",
                         default_timeout=0.1)
    steps = {"n": 0}

    def simulation():
        yield from client.connect(timeout=1.0)
        if server_state == "dead":
            server.kill()
        while env.now < HORIZON:
            yield env.timeout(STEP_COST)
            yield from client.send(TAG_DATA, np.zeros(256, dtype=np.float32))
            yield from client.request(TAG_PARAMS, timeout=0.1)
            steps["n"] += 1

    env.process(simulation())
    env.run(until=HORIZON + 1.0)
    return steps["n"]


def _blocking_run(server_state):
    delay = {"healthy": 0.0, "slow": 2.0, "dead": 0.0}[server_state]
    env, net, server = _grid(response_delay=delay, ack_sends=True)
    client = BlockingClientBaseline(net.host("sim-host"), "viz-host", 6000, "pw")
    steps = {"n": 0}

    def simulation():
        yield from client.connect()
        if server_state == "dead":
            server.kill()
        while env.now < HORIZON:
            yield env.timeout(STEP_COST)
            yield from client.send(TAG_DATA, np.zeros(256, dtype=np.float32))
            steps["n"] += 1

    env.process(simulation())
    env.run(until=HORIZON + 1.0)
    return steps["n"]


def test_visit_timeouts_protect_the_simulation(benchmark, reporter):
    def sweep():
        out = {}
        for state in ("healthy", "slow", "dead"):
            out[state] = (_visit_run(state), _blocking_run(state))
        return out

    results = run_once(benchmark, sweep)
    ideal = int(HORIZON / STEP_COST)
    rows = []
    for state, (visit_steps, blocking_steps) in results.items():
        rows.append(
            [state, visit_steps, blocking_steps,
             f"{visit_steps / ideal * 100:.0f}%",
             f"{blocking_steps / ideal * 100:.0f}%"]
        )
    reporter.table(
        f"VISIT-T: simulation steps completed in {HORIZON:.0f}s virtual "
        f"(ideal {ideal}; step cost {STEP_COST}s)",
        ["viz state", "VISIT steps", "blocking steps", "VISIT %ideal",
         "blocking %ideal"],
        rows,
    )
    visit_healthy, blocking_healthy = results["healthy"]
    visit_slow, blocking_slow = results["slow"]
    visit_dead, blocking_dead = results["dead"]
    # Healthy: both fine.
    assert visit_healthy > 0.8 * ideal
    # Slow viz: VISIT bounded by its 0.1s timeout; blocking collapses.
    assert visit_slow > 0.25 * ideal
    assert blocking_slow < 0.15 * ideal
    # Dead viz: VISIT keeps going; blocking stops entirely.
    assert visit_dead > 0.25 * ideal
    assert blocking_dead <= 2
