"""LIVE — the real-time control plane under seeded open-loop stress.

Three numbers summarise whether "live" is viable on top of the DES
fabric, and all three land in ``BENCH_live.json``:

* **requests/s** — HTTP round trips the single-threaded asyncio server
  sustains while the paced kernel runs underneath;
* **admit latency p90** — the client-observed ``POST /sessions`` round
  trip (socket + codec + synchronous admission + response);
* **paced-kernel overhead** — wall cost of driving the same event
  schedule through :class:`~repro.live.pacing.PacedRunner` in turbo
  mode versus ``Environment.run()`` raw: the price of batching and
  event-loop yields, which bounds how far behind a paced server can
  fall before catch-up accounting fires.
"""

import asyncio
import time

from benchmarks.conftest import run_once, write_json
from repro.des.core import Environment
from repro.live.client import StressClient
from repro.live.pacing import PacedRunner
from repro.live.server import LiveServer

#: enough schedule to dwarf the runner's fixed costs, small enough for CI
OVERHEAD_EVENTS = 50_000
STRESS_RATE = 40.0
STRESS_SECONDS = 2.0


def _tick_workload(env: Environment, n_procs: int, steps: int):
    def gen():
        for _ in range(steps):
            yield env.timeout(1.0)

    for _ in range(n_procs):
        env.process(gen())
    return n_procs * steps


def _paced_overhead():
    """(raw_wall, paced_wall, events) for the same tick schedule."""
    steps = OVERHEAD_EVENTS // 50
    raw_env = Environment()
    _tick_workload(raw_env, 50, steps)
    t0 = time.perf_counter()
    raw_env.run(until=steps + 1.0)
    raw_wall = time.perf_counter() - t0

    paced_env = Environment()
    events = _tick_workload(paced_env, 50, steps)
    runner = PacedRunner(paced_env, rate=None)
    t0 = time.perf_counter()
    asyncio.run(runner.run(until=steps + 1.0))
    paced_wall = time.perf_counter() - t0
    assert paced_env.now == raw_env.now
    return raw_wall, paced_wall, events


def _stress():
    """Seeded open-loop load against a fast-forwarded live server."""

    async def go():
        server = LiveServer(config={"rate": 10.0, "seed": 0})
        await server.start()
        try:
            client = StressClient(
                server.host,
                server.port,
                rate=STRESS_RATE,
                duration=STRESS_SECONDS,
                seed=1,
                steer_every=5,
            )
            report = await client.run()
        finally:
            await server.shutdown(grace=60.0)
        return report, server.statsz()

    return asyncio.run(go())


def _payload(report, stats, raw_wall, paced_wall, events):
    pacing = stats["pacing"]
    return {
        "requests_per_sec": report["achieved_rps"],
        "offered_rps": report["offered_rps"],
        "requests": report["requests"],
        "admitted": report["admitted"],
        "rejected": report["rejected"],
        "admit_latency_p50_ms": report["latency_p50"] * 1e3,
        "admit_latency_p90_ms": report["latency_p90"] * 1e3,
        "admit_latency_p99_ms": report["latency_p99"] * 1e3,
        "paced_overhead": {
            "events": events,
            "raw_wall_seconds": raw_wall,
            "paced_wall_seconds": paced_wall,
            "ratio": paced_wall / raw_wall if raw_wall > 0 else 0.0,
        },
        "server_pacing": {
            "ticks": pacing["ticks"],
            "catchups": pacing["catchups"],
            "max_behind": pacing["max_behind"],
            "stepping_wall": pacing["stepping_wall"],
            "events": pacing["events"],
        },
    }


def test_live_control_plane(benchmark, reporter):
    def both():
        return _stress(), _paced_overhead()

    (report, stats), (raw_wall, paced_wall, events) = run_once(benchmark, both)
    ratio = paced_wall / raw_wall if raw_wall > 0 else 0.0
    reporter.table(
        f"LIVE: control plane under stress (seed {report['seed']}, "
        f"{STRESS_SECONDS:.0f}s at {STRESS_RATE:.0f} rps offered)",
        ["metric", "value"],
        [
            ["achieved rps", f"{report['achieved_rps']:.1f}"],
            ["admitted / rejected", f"{report['admitted']} / {report['rejected']}"],
            ["admit latency p50 (ms)", f"{report['latency_p50'] * 1e3:.2f}"],
            ["admit latency p90 (ms)", f"{report['latency_p90'] * 1e3:.2f}"],
            ["paced/raw kernel wall", f"{ratio:.2f}x over {events} events"],
            ["server catchups", stats["pacing"]["catchups"]],
        ],
    )
    assert report["errors"] == 0
    assert report["requests"] > 0
    write_json(
        "BENCH_live.json",
        _payload(report, stats, raw_wall, paced_wall, events),
        wall_seconds=report["wall_seconds"] + raw_wall + paced_wall,
        events=stats["pacing"]["events"] + 2 * events,
    )


def test_live_smoke(reporter):
    """CI smoke: stress the server, measure pacing overhead, gate sanity."""
    report, stats = _stress()
    raw_wall, paced_wall, events = _paced_overhead()
    reporter.note(
        f"LIVE smoke: {report['requests']} requests "
        f"({report['achieved_rps']:.1f} rps, {report['admitted']} admitted, "
        f"{report['rejected']} rejected), admit p90 "
        f"{report['latency_p90'] * 1e3:.1f}ms, paced/raw "
        f"{paced_wall / raw_wall:.2f}x over {events} events"
    )
    # The paper's collaborative-steering loop budgets ~100ms of human
    # latency; local HTTP admission must be far inside that.
    assert report["errors"] == 0
    assert report["latency_p90"] < 0.5
    assert report["admitted"] > 0
    # Turbo pacing may cost a few x raw stepping (yields + batching),
    # but an order of magnitude means the runner is broken.
    assert paced_wall < 10 * raw_wall + 0.5
    write_json(
        "BENCH_live.json",
        _payload(report, stats, raw_wall, paced_wall, events),
        wall_seconds=report["wall_seconds"] + raw_wall + paced_wall,
        events=stats["pacing"]["events"] + 2 * events,
    )
