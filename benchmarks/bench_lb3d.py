"""LB3D — the steered Lattice-Boltzmann workload (paper section 2.2).

Regenerated series: (a) wall-time step cost vs lattice size (the compute
budget the Grid has to supply to keep the session interactive); (b) the
physics response that made the demo worth watching — steering the
miscibility flips the mixture between mixed and demixed states.
"""

import time

import pytest

from benchmarks.conftest import run_once
from repro.sims import LatticeBoltzmann3D


def test_lb3d_step_kernel(benchmark):
    """Wall-time per LB step on a 24^3 lattice."""
    sim = LatticeBoltzmann3D(shape=(24, 24, 24), g=2.0, seed=1)
    benchmark(sim.step)
    # Mass equals the initialized total (n^3 up to the seeded perturbation).
    assert sim.total_mass() == pytest.approx(24**3, rel=1e-3)


def _scaling(sizes=(12, 16, 24, 32)):
    rows = []
    for n in sizes:
        sim = LatticeBoltzmann3D(shape=(n, n, n), g=2.0, seed=1)
        sim.step()  # warm
        t0 = time.perf_counter()
        steps = 5
        for _ in range(steps):
            sim.step()
        per_step = (time.perf_counter() - t0) / steps
        rows.append((n, per_step, per_step / n**3))
    return rows


def test_lb3d_scaling(benchmark, reporter):
    rows = run_once(benchmark, _scaling)
    table = [
        [f"{n}^3", f"{t * 1e3:.1f}", f"{per_site * 1e9:.1f}"]
        for n, t, per_site in rows
    ]
    reporter.table(
        "LB3D-a: step cost vs lattice size (wall time)",
        ["lattice", "ms/step", "ns/site/step"], table,
    )
    # Cost per site roughly constant: the kernel is O(sites).
    per_site = [r[2] for r in rows]
    assert max(per_site) < 6 * min(per_site)


def _steering_response():
    sim = LatticeBoltzmann3D(shape=(12, 12, 12), g=0.5, seed=2)
    series = []
    for step in range(40):
        sim.step()
        series.append((step, sim.g, sim.demix_measure()))
    sim.set_parameter("g", 3.0)  # the demo moment: slide the miscibility
    response_step = None
    for step in range(40, 160):
        sim.step()
        series.append((step, sim.g, sim.demix_measure()))
        if response_step is None and sim.demix_measure() > 0.2:
            response_step = step
    return series, response_step


def test_lb3d_miscibility_steering_response(benchmark, reporter):
    series, response_step = run_once(benchmark, _steering_response)
    picks = [s for s in series if s[0] % 20 == 0 or s[0] == response_step]
    reporter.table(
        "LB3D-b: order-parameter response to steering g: 0.5 -> 3.0 at "
        "step 40",
        ["step", "g", "demix measure"],
        [[s, g, f"{d:.4f}"] for s, g, d in picks],
    )
    reporter.note(
        f"structures become clearly demixed at step {response_step} "
        f"({response_step - 40} steps after the steer)"
    )
    before = max(d for s, _, d in series if s < 40)
    after = series[-1][2]
    assert before < 0.05 and after > 0.3
    assert response_step is not None and response_step < 150
