"""FLEET — hundreds of concurrent steering sessions on one testbed.

The paper runs one collaborative session across UCL/Manchester/ANL; the
fleet engine asks the production question: how do admission and steering
latency hold up when 1 -> 128 sessions share the sc03 showfloor fabric?
Each session is the full workflow (UNICORE consignment through a
firewalled gateway, OGSA service deployment, registry publication,
find -> bind -> steer), so the series measures the middleware fabric,
not a stripped-down stand-in.

Also regenerated here: the registry inverted index vs the naive linear
scan at fleet-scale handle counts (the `find` every admission issues).
"""

import os
import time

from benchmarks.conftest import run_once, write_json
from repro.ogsa import RegistryService
from repro.perf.gate import run_fleet

#: fleet sizes of the scaling series (override for smoke runs)
FLEET_SIZES = tuple(
    int(s) for s in os.environ.get("FLEET_SIZES", "1,8,32,128").split(",")
)


def _run_fleet(n_sessions: int):
    # One scenario definition shared with the CI regression gate, so the
    # committed baseline and the gate's measurement can never drift.
    report, wall, events = run_fleet(n_sessions)
    report.wall_seconds = wall
    return report, events


def test_fleet_scaling(benchmark, reporter):
    def sweep():
        return {n: _run_fleet(n) for n in FLEET_SIZES}

    raw = run_once(benchmark, sweep)
    results = {n: rep for n, (rep, _ev) in raw.items()}
    events = sum(ev for _rep, ev in raw.values())
    rows = []
    for n, rep in sorted(results.items()):
        rows.append(rep.summary_row() + [f"{rep.wall_seconds:.2f}"])
    reporter.table(
        "FLEET: N concurrent sessions on the sc03 showfloor fabric "
        "(full UNICORE+OGSA workflow each)",
        ["sessions", "completed", "steer ops", "p50 (ms)", "p90 (ms)",
         "p99 (ms)", "admit p90 (ms)", "makespan (s)", "wall (s)"],
        rows,
    )
    write_json(
        "BENCH_fleet_scaling.json",
        {str(n): rep.to_dict() for n, rep in sorted(results.items())},
        wall_seconds=sum(rep.wall_seconds for rep in results.values()),
        events=events,
    )
    for n, rep in results.items():
        # Every admitted session must complete with zero steering timeouts.
        assert rep.completed == n, (n, rep.render(per_session=True))
        assert rep.timeouts == 0, (n, rep.render())
        # Bounded wall-clock: the whole fleet stays far under a minute
        # of virtual time and the engine keeps up in real time.
        assert rep.makespan < 60.0
    # Steering latency is a property of the link classes, not the fleet
    # size: the p50 may not blow up as sessions multiply.
    p50s = [rep.steer_p50 for rep in results.values()]
    assert max(p50s) < 4 * min(p50s)


def test_fleet_smoke(reporter):
    """CI smoke: one session end-to-end through the whole fabric."""
    rep, _events = _run_fleet(1)
    reporter.note(
        f"FLEET smoke: {rep.completed}/1 completed, "
        f"p50={rep.steer_p50 * 1e3:.1f}ms wall={rep.wall_seconds:.2f}s"
    )
    assert rep.completed == 1 and rep.failed == 0


def test_registry_indexed_vs_naive_scan(benchmark, reporter):
    """`find` on >= 1000 published handles: inverted index vs linear scan."""
    n_handles, n_finds = 2000, 300
    reg = RegistryService()
    for i in range(n_handles):
        reg.publish(
            f"gsh://site-{i % 8}:8000/svc-{i}",
            {"type": "steering" if i % 2 else "viz-steering",
             "application": f"app-{i % 50}", "site": f"site-{i % 8}"},
        )
    query = {"application": "app-7", "type": "steering"}
    assert reg.find(query) == reg._find_naive(query)

    def timed(fn):
        t0 = time.perf_counter()
        for _ in range(n_finds):
            fn(query)
        return time.perf_counter() - t0

    def measure():
        return timed(reg.find), timed(reg._find_naive)

    indexed_s, naive_s = run_once(benchmark, measure)
    speedup = naive_s / indexed_s
    reporter.table(
        f"REGISTRY: {n_finds} x find over {n_handles} published handles",
        ["impl", "total (ms)", "per find (us)", "speedup"],
        [
            ["inverted index", f"{indexed_s * 1e3:.1f}",
             f"{indexed_s / n_finds * 1e6:.1f}", f"{speedup:.1f}x"],
            ["naive scan", f"{naive_s * 1e3:.1f}",
             f"{naive_s / n_finds * 1e6:.1f}", "1.0x"],
        ],
    )
    # The acceptance bar: measurably faster than the naive scan.
    assert speedup > 3.0, f"index only {speedup:.2f}x faster"
