"""S42 — the rendering feedback loop (paper section 4.2).

"When a user moves, the whole scene content has to be redrawn ... with at
least 10 to 15 updates per second.  In case of a remote rendering ...
just taking the communication delays as well as the compression and
decompression times into account, without considering the rendering
times, these already exceed the required turn around time.  Therefore
typical distributed virtual environments work with local scene graphs."

Regenerated series: the per-stage breakdown of the remote loop for every
network class and frame size, against the VR and desktop budgets; plus a
live DES validation with a VizServer session.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.accessgrid.vizserver import VizServerClient, VizServerSession
from repro.des import Environment
from repro.net import Network
from repro.viz import Geometry
from repro.workloads import (
    CAMPUS,
    DESKTOP_BUDGET,
    LAN,
    SUPERJANET,
    TRANSATLANTIC,
    VR_BUDGET,
    FeedbackLoopModel,
    link_with_profile,
)

FRAME_SIZES = {
    "desktop 320x240": 320 * 240 * 3,
    "desktop 640x480": 640 * 480 * 3,
    "CAVE stereo 1024x768": 1024 * 768 * 3 * 2,
}

PROFILES = (LAN, CAMPUS, SUPERJANET, TRANSATLANTIC)


def _model_table():
    model = FeedbackLoopModel()
    rows = []
    for label, nbytes in FRAME_SIZES.items():
        for profile in PROFILES:
            no_render = model.remote_loop_time(profile, nbytes,
                                               include_render=False)
            full = model.remote_loop_time(profile, nbytes)
            fps = 1.0 / full
            budget = VR_BUDGET if "CAVE" in label else DESKTOP_BUDGET
            rows.append(
                [label, profile.name, f"{no_render * 1e3:.1f}",
                 f"{full * 1e3:.1f}", f"{fps:.1f}",
                 "OK" if full <= budget else "MISS"]
            )
    local = model.local_loop_time()
    return rows, local


def test_s42_remote_loop_budgets(benchmark, reporter):
    rows, local = run_once(benchmark, _model_table)
    reporter.table(
        "S42a: remote rendering loop vs budgets "
        "(no-render ms | full ms | fps | budget)",
        ["frame", "network", "loop w/o render (ms)", "full loop (ms)",
         "fps", "verdict"],
        rows,
    )
    model = FeedbackLoopModel()
    reporter.table(
        "S42b: local scene graph loop",
        ["path", "ms/frame", "fps"],
        [["local render + display", f"{local * 1e3:.1f}", f"{1 / local:.0f}"]],
    )
    # The paper's claims, quantified:
    cave = 1024 * 768 * 3 * 2
    for profile in (CAMPUS, SUPERJANET, TRANSATLANTIC):
        # even without rendering, WAN remote loops miss the VR budget
        assert model.remote_loop_time(profile, cave,
                                      include_render=False) > VR_BUDGET
    # the local scene graph holds 10-15 fps comfortably
    assert local < VR_BUDGET
    # desktop-budget remote rendering is feasible on a LAN (that is why
    # VizServer to a nearby client works at all)
    assert model.remote_loop_time(LAN, FRAME_SIZES["desktop 320x240"]) \
        < DESKTOP_BUDGET


def _live_vizserver_fps(profile, seconds=10.0):
    """Measure achieved frame delivery rate through a live DES session."""
    env = Environment()
    net = Network(env)
    net.add_host("onyx")
    net.add_host("client")
    link_with_profile(net, "onyx", "client", profile)
    session = VizServerSession(net.host("onyx"), 7000, width=320, height=240)
    rng = np.random.default_rng(0)
    session.scene.add_node("cloud", Geometry("points", rng.random((3000, 3))))
    session.start()
    client = VizServerClient(net.host("client"), "onyx", 7000, "client")

    def scenario():
        yield from client.join()
        while env.now < seconds:
            # continuous viewer motion: move camera, render, stream
            session.renderer.camera.orbit(0.05)
            yield from session.render_and_stream()

    env.process(scenario())
    env.run(until=seconds + 1.0)
    client.drain_frames()
    return client.frames_received / seconds


def test_s42_live_vizserver_fps(benchmark, reporter):
    def run():
        return {p.name: _live_vizserver_fps(p) for p in (LAN, SUPERJANET,
                                                         TRANSATLANTIC)}

    fps = run_once(benchmark, run)
    rows = [
        [name, f"{rate:.1f}",
         "OK" if rate >= 1 / DESKTOP_BUDGET else "MISS"]
        for name, rate in fps.items()
    ]
    reporter.table(
        "S42c: live VizServer delivery rate, 320x240 desktop frames "
        "(DES, server-side render 12ms + 1.5us/point)",
        ["network", "achieved fps", "vs 3-5 fps desktop budget"], rows,
    )
    # Delivery rate degrades with distance but holds the desktop budget on
    # the LAN.
    assert fps["lan"] >= 1 / DESKTOP_BUDGET
    assert fps["lan"] >= fps["transatlantic"]
