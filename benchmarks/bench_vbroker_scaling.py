"""VBROKER — the collaborative multiplexer (paper section 3.3).

Regenerated series: fan-out cost vs number of participating
visualizations, observer-consistency (everyone sees every sample), and
steering-request latency independence from the participant count.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.des import Environment
from repro.net import Network
from repro.visit import VBroker, VisitClient, VisitServer
from repro.workloads import CAMPUS, SUPERJANET, link_with_profile

TAG_DATA, TAG_PARAMS = 1, 2
SAMPLE = np.zeros(4096, dtype=np.float32)  # 16 KB per sample


def _run(k_viz, n_samples=20):
    env = Environment()
    net = Network(env)
    net.add_host("sim-host")
    net.add_host("broker-host")
    link_with_profile(net, "sim-host", "broker-host", CAMPUS)
    servers = {}
    for i in range(k_viz):
        name = f"viz-{i}"
        net.add_host(name)
        link_with_profile(net, "broker-host", name, SUPERJANET)
        s = VisitServer(net.host(name), 6000, password="pw", name=name)
        s.provide(TAG_PARAMS, lambda n=name: f"params:{n}")
        s.start()
        servers[name] = s
    broker = VBroker(net.host("broker-host"), 7000, password="pw")
    broker.start()
    client = VisitClient(net.host("sim-host"), "broker-host", 7000, "pw")
    out = {}

    def scenario():
        for name in servers:
            yield from broker.add_visualization(name, name, 6000)
        yield from client.connect(timeout=1.0)
        t0 = env.now
        for i in range(n_samples):
            yield from client.send(TAG_DATA, SAMPLE)
            yield env.timeout(0.02)
        out["send_phase"] = env.now - t0
        t0 = env.now
        ok, _ = yield from client.request(TAG_PARAMS, timeout=5.0)
        out["steer_latency"] = env.now - t0
        out["steer_ok"] = ok

    env.process(scenario())
    env.run(until=60.0)
    counts = [len(s.received[TAG_DATA]) for s in servers.values()]
    out["min_received"] = min(counts)
    out["max_received"] = max(counts)
    out["broker_fanout"] = broker.fanout_messages
    return out


def test_vbroker_scaling(benchmark, reporter):
    def sweep():
        return {k: _run(k) for k in (1, 2, 4, 8, 16)}

    results = run_once(benchmark, sweep)
    rows = []
    for k, r in sorted(results.items()):
        rows.append(
            [k, r["min_received"], r["max_received"],
             f"{r['steer_latency'] * 1e3:.1f}",
             "yes" if r["steer_ok"] else "no"]
        )
    reporter.table(
        "VBROKER: 20 x 16KB samples fanned out to k visualizations",
        ["k", "min samples seen", "max samples seen",
         "steer latency (ms)", "steer ok"],
        rows,
    )
    for k, r in results.items():
        # Observer consistency: every participant saw every sample.
        assert r["min_received"] == r["max_received"] == 20, k
        assert r["steer_ok"]
    # Steering latency goes to the master only: independent of k.
    latencies = [r["steer_latency"] for r in results.values()]
    assert max(latencies) < 2 * min(latencies)
