"""VIZSRV — the VizServer traffic claim (paper section 2.4).

"The datasets which are being rendered as isosurfaces are too large to be
visualized on a laptop client.  VizServer allows the output of the
graphics pipes ... to be accessed remotely.  In addition this greatly
reduces network traffic since only compressed bitmaps need to be sent."

Regenerated series: wire bytes per frame for (a) streaming the isosurface
geometry vs (b) shipping the compressed rendered bitmap, as the dataset
grows — including the crossover point.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.viz import Camera, Renderer, compress_frame, isosurface


def _field(n):
    ax = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    # A wavy blob: irregular enough that the isosurface has real detail.
    return (np.sqrt(x**2 + y**2 + z**2)
            + 0.15 * np.sin(4 * x) * np.sin(4 * y) * np.sin(4 * z) - 0.6)


def _sweep(sizes=(8, 12, 16, 24, 32, 48)):
    rows = []
    renderer = Renderer(320, 240)
    renderer.camera = Camera(eye=np.array([0.0, -3.0, 0.0]))
    prev = None
    for n in sizes:
        verts, faces = isosurface(
            _field(n), 0.0, spacing=(2.0 / (n - 1),) * 3,
            origin=(-1.0, -1.0, -1.0),
        )
        geometry_bytes = verts.nbytes + faces.nbytes
        renderer.clear()
        renderer.camera.orbit(0.15)  # the viewer keeps moving
        renderer.draw_triangles(verts, faces)
        frame_blob = compress_frame(renderer.fb, previous=prev)
        prev = renderer.fb.copy()
        rows.append((n, len(faces), geometry_bytes, len(frame_blob)))
    return rows


def test_vizserver_bitmaps_vs_geometry(benchmark, reporter):
    rows = run_once(benchmark, _sweep)
    table = [
        [f"{n}^3", ntris, geo, frame, f"{geo / frame:.1f}x"]
        for n, ntris, geo, frame in rows
    ]
    reporter.table(
        "VIZSRV: per-frame wire bytes — geometry streaming vs VizServer "
        "compressed bitmap (320x240, moving viewer)",
        ["dataset", "triangles", "geometry bytes", "bitmap bytes",
         "geometry/bitmap"],
        table,
    )
    geo = np.array([r[2] for r in rows], dtype=float)
    frame = np.array([r[3] for r in rows], dtype=float)
    # Geometry grows with the dataset...
    assert geo[-1] > 20 * geo[0]
    # ...bitmaps stay bounded by the screen, not the data.
    assert frame.max() < 4 * frame.min()
    # At small datasets geometry may be cheaper; at the largest, VizServer
    # wins decisively — the paper's "too large for a laptop" regime.
    assert geo[-1] > 5 * frame[-1]


def test_vizserver_frame_compression_kernel(benchmark):
    """Wall-time kernel: compress one 320x240 frame against its
    predecessor (the per-frame server cost of VizServer remoting)."""
    rng = np.random.default_rng(0)
    renderer = Renderer(320, 240)
    renderer.camera = Camera(eye=np.array([0.0, -3.0, 0.0]))
    verts, faces = isosurface(
        _field(24), 0.0, spacing=(2.0 / 23,) * 3, origin=(-1, -1, -1)
    )
    renderer.draw_triangles(verts, faces)
    prev = renderer.fb.copy()
    renderer.camera.orbit(0.1)
    renderer.clear()
    renderer.draw_triangles(verts, faces)

    blob = benchmark(lambda: compress_frame(renderer.fb, previous=prev))
    assert len(blob) > 0
