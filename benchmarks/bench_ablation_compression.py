"""ABL-COMP — ablation of the VizServer/vnc frame codec.

The remoting layer composes two stages: inter-frame *delta* coding and
byte *RLE*.  This ablation measures each stage's contribution across the
three content regimes a steering session produces: a static view (idle
discussion), a slowly-moving view (typical exploration), and a fully
changing frame (camera flythrough) — showing why delta+RLE is the right
default and where it stops helping.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.viz import Camera, Renderer, isosurface
from repro.viz.compress import delta_encode, rle_encode


def _frames():
    """(previous, current) frame pairs for the three regimes."""
    n = 20
    ax = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    field = np.sqrt(x**2 + y**2 + z**2) - 0.6
    verts, faces = isosurface(field, 0.0, spacing=(2.0 / (n - 1),) * 3,
                              origin=(-1, -1, -1))
    r = Renderer(320, 240)
    r.camera = Camera(eye=np.array([0.0, -3.0, 0.0]))
    r.draw_triangles(verts, faces)
    static_prev = r.fb.copy()
    static_cur = r.fb.copy()

    r.camera.orbit(0.06)
    r.clear()
    r.draw_triangles(verts, faces)
    moving_cur = r.fb.copy()

    rng = np.random.default_rng(0)
    noise_prev = r.fb.copy()
    noise_prev.color[:] = rng.integers(0, 256, noise_prev.color.shape,
                                       dtype=np.uint8)
    noise_cur = noise_prev.copy()
    noise_cur.color[:] = rng.integers(0, 256, noise_cur.color.shape,
                                      dtype=np.uint8)
    return {
        "static view": (static_prev, static_cur),
        "moving view": (static_prev, moving_cur),
        "full change": (noise_prev, noise_cur),
    }


def _ablate():
    rows = []
    for regime, (prev, cur) in _frames().items():
        raw = cur.nbytes
        rle_only = len(rle_encode(cur.color.reshape(-1)))
        delta = delta_encode(cur.color.reshape(-1), prev.color.reshape(-1))
        delta_rle = len(rle_encode(delta))
        rows.append((regime, raw, rle_only, delta_rle))
    return rows


def test_ablation_compression_stages(benchmark, reporter):
    rows = run_once(benchmark, _ablate)
    table = [
        [regime, raw, rle, drle, f"{raw / max(1, drle):.1f}x"]
        for regime, raw, rle, drle in rows
    ]
    reporter.table(
        "ABL-COMP: frame bytes by codec stage (320x240)",
        ["content regime", "raw", "RLE only", "delta+RLE",
         "delta+RLE ratio"],
        table,
    )
    by_regime = {r[0]: r for r in rows}
    _, raw_s, rle_s, drle_s = by_regime["static view"]
    _, raw_m, rle_m, drle_m = by_regime["moving view"]
    _, raw_n, rle_n, drle_n = by_regime["full change"]
    # Static: delta collapses the frame to ~1% (RLE pairs over the
    # all-zero delta: 2 bytes per 255-run); RLE alone cannot get there.
    assert drle_s < raw_s / 100
    assert drle_s < rle_s / 10
    # Moving view: delta+RLE still beats RLE-only.
    assert drle_m <= rle_m
    # Full change: compression cannot help much; overhead stays bounded
    # (the worst case costs at most 2x raw — RLE's pair encoding).
    assert drle_n <= 2 * raw_n + 16
