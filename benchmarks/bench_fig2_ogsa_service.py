"""FIG2 — the OGSA steering service architecture (paper Figure 2).

Regenerated series: (a) cost of steering *through* the service fabric vs
a hypothetical direct connection to the application host; (b) registry
find cost vs number of published services; (c) amortization — bind once,
steer many times.
"""

from benchmarks._wiring import wire_app_to_host
from benchmarks.conftest import run_once
from repro.des import Environment
from repro.net import Network
from repro.ogsa import (
    HandleResolver,
    OgsaSteeringClient,
    OgsiLiteContainer,
    RegistryService,
    ServiceConnection,
    SteeringService,
)
from repro.sims import LatticeBoltzmann3D
from repro.steering import SteeredApplication, SteeringClient, steered_app_process
from repro.workloads import CONFERENCE_FLOOR, SUPERJANET, link_with_profile


def _grid():
    env = Environment()
    net = Network(env)
    for h in ("hpc", "services", "user"):
        net.add_host(h)
    link_with_profile(net, "hpc", "services", SUPERJANET)
    link_with_profile(net, "services", "user", CONFERENCE_FLOOR)
    link_with_profile(net, "hpc", "user", CONFERENCE_FLOOR)
    return env, net


def _service_vs_direct(calls: int = 25):
    """Mean set_parameter latency through the service vs direct to the app.

    Averaged over many calls because a single call's latency is dominated
    by the phase of the application's control-poll loop.
    """
    env, net = _grid()
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), seed=1)
    app = SteeredApplication(sim, name="lb3d")
    control = wire_app_to_host(env, net, app, "hpc", "services", 7001)
    # A second, direct control path user -> hpc.
    direct = wire_app_to_host(env, net, app, "hpc", "user", 7002)

    container = OgsiLiteContainer(net.host("services"), 8000)
    container.start()
    env.process(steered_app_process(env, app, compute_time=0.05))
    times = {}

    def scenario():
        while "service_link" not in control or "service_link" not in direct:
            yield env.timeout(0.01)
        container.deploy(SteeringService("steer", control["service_link"]))

        # Through the service (user -> services container -> hpc).
        conn = ServiceConnection(net.host("user"), "services", 8000)
        yield from conn.open()
        total = 0.0
        for i in range(calls):
            t0 = env.now
            yield from conn.invoke("steer", "set_parameter", name="g",
                                   value=0.1 * (i % 5))
            total += env.now - t0
        times["via_service"] = total / calls

        # Direct (user -> hpc), using the raw steering protocol.
        client = SteeringClient(direct["service_link"], name="direct")
        total = 0.0
        for i in range(calls):
            t0 = env.now
            seq = client.set_parameter("g", 0.1 * (i % 5))
            while client.ack_for(seq) is None:
                client.drain()
                yield env.timeout(0.002)
            total += env.now - t0
        times["direct"] = total / calls

    env.process(scenario())
    env.run(until=30.0)
    return times


def _registry_scaling(counts=(10, 100, 1000)):
    env, net = _grid()
    container = OgsiLiteContainer(net.host("services"), 8000)
    registry = RegistryService()
    container.deploy(registry)
    container.start()
    results = {}

    def scenario():
        conn = ServiceConnection(net.host("user"), "services", 8000)
        yield from conn.open()
        published = 0
        for count in counts:
            while published < count:
                yield from conn.invoke(
                    "registry", "publish",
                    handle=f"gsh://auth/svc-{published}",
                    metadata={"type": "steering", "app": f"app{published % 7}"},
                )
                published += 1
            t0 = env.now
            found = yield from conn.invoke(
                "registry", "find", query={"app": "app3"}
            )
            results[count] = (env.now - t0, len(found))

    env.process(scenario())
    env.run(until=600.0)
    return results


def _bind_amortization(n_steers=20):
    env, net = _grid()
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), seed=2)
    app = SteeredApplication(sim, name="lb3d")
    control = wire_app_to_host(env, net, app, "hpc", "services", 7001)
    container = OgsiLiteContainer(net.host("services"), 8000)
    registry = RegistryService()
    container.deploy(registry)
    container.start()
    env.process(steered_app_process(env, app, compute_time=0.05))
    resolver = HandleResolver()
    out = {}

    def scenario():
        while "service_link" not in control:
            yield env.timeout(0.01)
        ref = container.deploy(SteeringService("steer", control["service_link"]))
        resolver.bind(ref)
        conn = ServiceConnection(net.host("user"), "services", 8000)
        yield from conn.open()
        yield from conn.invoke("registry", "publish", handle=str(ref.handle),
                               metadata={"type": "steering"})

        client = OgsaSteeringClient(net.host("user"), resolver,
                                    "services", 8000)
        t0 = env.now
        found = yield from client.find_services(type="steering")
        handle = found[0]["handle"]
        yield from client.bind(handle)
        out["discover_and_bind"] = env.now - t0

        t0 = env.now
        for i in range(n_steers):
            yield from client.invoke(handle, "set_parameter", name="g",
                                     value=0.1 * (i % 5))
        out["per_steer_after_bind"] = (env.now - t0) / n_steers

    env.process(scenario())
    env.run(until=120.0)
    return out


def test_fig2_service_indirection_overhead(benchmark, reporter):
    times = run_once(benchmark, _service_vs_direct)
    overhead = times["via_service"] / times["direct"]
    reporter.table(
        "FIG2a: steering call — OGSA service vs direct connection (s, virtual)",
        ["path", "mean latency"],
        [
            ["user -> steering service -> app", f"{times['via_service']:.3f}"],
            ["user -> app direct", f"{times['direct']:.3f}"],
            ["indirection factor", f"{overhead:.2f}x"],
        ],
    )
    # Indirection costs something but stays the same order of magnitude
    # (both paths are dominated by the application's control-poll cadence).
    assert 0.8 <= overhead < 10.0


def test_fig2_registry_find_scaling(benchmark, reporter):
    results = run_once(benchmark, _registry_scaling)
    rows = [
        [n, f"{t:.4f}", found] for n, (t, found) in sorted(results.items())
    ]
    reporter.table(
        "FIG2b: registry find latency vs published services",
        ["published", "find (s, virtual)", "matches"], rows,
    )
    times = [t for t, _ in results.values()]
    # Find stays cheap (network-dominated) across 2 decades of registry size.
    assert max(times) < 10 * min(times)


def test_fig2_bind_once_steer_many(benchmark, reporter):
    out = run_once(benchmark, _bind_amortization)
    reporter.table(
        "FIG2c: bind-once amortization (s, virtual)",
        ["phase", "seconds"],
        [
            ["registry lookup + bind (one-time)", f"{out['discover_and_bind']:.3f}"],
            ["per steering call after bind", f"{out['per_steer_after_bind']:.3f}"],
        ],
    )
    # Both phases are sub-second: discovery is a one-time cost of the same
    # order as a single steering call, so binding amortizes immediately.
    assert out["discover_and_bind"] < 1.0
    assert out["per_steer_after_bind"] < 1.0
