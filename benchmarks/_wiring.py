"""Wiring helpers: connect steered apps to services across the simulated net."""

from __future__ import annotations

from repro.steering import LinkAdapter, SteeredApplication


def wire_app_to_host(env, net, app: SteeredApplication, app_host: str,
                     svc_host: str, port: int, kind: str = "control"):
    """Open a connection app_host -> svc_host and attach both ends.

    Returns a dict that will hold the service-side link once the wiring
    process has run (schedule before env.run()).
    """
    out = {}
    listener = net.host(svc_host).listen(port)

    def accept_side():
        conn = yield from listener.accept()
        out["service_link"] = LinkAdapter(conn)

    def connect_side():
        conn = yield from net.host(app_host).connect(svc_host, port)
        link = LinkAdapter(conn)
        if kind == "control":
            app.attach_control(link)
        else:
            app.attach_sample_sink(link)
        out["app_link"] = link

    env.process(accept_side())
    env.process(connect_side())
    return out
