"""Shared benchmark infrastructure.

Every bench prints its paper-style table through the ``reporter`` fixture,
which also appends to ``benchmarks/results.txt`` so the series survive
pytest's output capture.  EXPERIMENTS.md is written from those tables.
"""

from __future__ import annotations

import pathlib
from typing import Optional

import pytest

from repro.perf.bench import write_bench

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def write_json(
    name: str,
    payload,
    wall_seconds: Optional[float] = None,
    events: Optional[int] = None,
) -> pathlib.Path:
    """Persist machine-readable bench results (BENCH_*.json) next to the
    benches; these are committed so the perf trajectory is diffable
    across PRs.

    Every bench registers with the unified :mod:`repro.perf` runner
    through this single entry point: the payload lands under
    ``results`` inside the uniform envelope (wall seconds, events,
    events/sec, peak RSS), so one schema covers the whole suite.  The
    write is atomic (tmp + ``os.replace`` inside ``write_bench``), so a
    bench run interrupted mid-write cannot truncate a committed baseline
    the perf gate would later misread.
    """
    path = pathlib.Path(__file__).parent / name
    bench_name = name.removeprefix("BENCH_").removesuffix(".json")
    return write_bench(
        path, bench_name, payload, wall_seconds=wall_seconds, events=events
    )


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


class Reporter:
    def __init__(self) -> None:
        self._chunks: list[str] = []

    def table(self, title: str, header: list[str], rows: list[list]) -> str:
        widths = [
            max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
            else len(str(header[i]))
            for i in range(len(header))
        ]

        def fmt(cells):
            return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

        lines = [f"== {title} ==", fmt(header),
                 "-+-".join("-" * w for w in widths)]
        lines += [fmt(r) for r in rows]
        text = "\n".join(lines) + "\n"
        self._chunks.append(text)
        return text

    def note(self, text: str) -> None:
        self._chunks.append(text + "\n")

    def flush(self) -> None:
        blob = "\n".join(self._chunks) + "\n"
        print("\n" + blob)
        with RESULTS_PATH.open("a") as fh:
            fh.write(blob)
        self._chunks.clear()


@pytest.fixture
def reporter():
    rep = Reporter()
    yield rep
    rep.flush()


def run_once(benchmark, fn):
    """Run a whole-scenario function exactly once under pytest-benchmark.

    Scenario benches measure virtual-time quantities themselves; the
    benchmark fixture is still exercised so ``--benchmark-only`` keeps
    them, and the wall time it records is the scenario cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
