"""FIG3 — PEPC online visualization via VISIT (paper Figure 3).

Regenerated series: (a) the O(N log N) claim — tree-force interaction
counts and wall time vs the O(N^2) direct baseline; (b) the cost of the
VISIT instrumentation (shipping coordinates, velocities, charge,
processor number, labels and tree-domain boxes every step).
"""

import math
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.sims.pepc import (
    PlasmaSim,
    beam_on_sphere_setup,
    build_octree,
    direct_field,
    tree_field,
)
from repro.visit.messages import DataSend, encode_visit


def _scaling_table(sizes=(512, 1024, 2048, 4096, 8192)):
    rng = np.random.default_rng(42)
    rows = []
    for n in sizes:
        pos = rng.random((n, 3))
        q = rng.choice([-1.0, 1.0], size=n)
        t0 = time.perf_counter()
        tree = build_octree(pos, q)
        _, _, stats = tree_field(tree, theta=0.6)
        t_tree = time.perf_counter() - t0
        ints = stats["monopole_interactions"] + stats["direct_interactions"]
        if n <= 2048:
            t0 = time.perf_counter()
            direct_field(pos, q)
            t_direct = time.perf_counter() - t0
        else:
            t_direct = None
        rows.append((n, ints, t_tree, t_direct))
    return rows


def test_fig3_tree_vs_direct_scaling(benchmark, reporter):
    rows = run_once(benchmark, _scaling_table)
    table = []
    for n, ints, t_tree, t_direct in rows:
        table.append(
            [n, ints, f"{ints / n:.0f}", f"{t_tree:.3f}",
             f"{t_direct:.3f}" if t_direct else "-"]
        )
    reporter.table(
        "FIG3a: PEPC force summation scaling (theta=0.6)",
        ["N", "interactions", "ints/N", "tree (s, wall)", "direct (s, wall)"],
        table,
    )
    # O(N log N) shape: interactions grow far slower than N^2.
    n0, i0 = rows[0][0], rows[0][1]
    n1, i1 = rows[-1][0], rows[-1][1]
    exponent = math.log(i1 / i0) / math.log(n1 / n0)
    reporter.note(f"fitted interaction-count exponent: N^{exponent:.2f} "
                  "(direct summation would be N^2.00)")
    assert exponent < 1.7
    # And the tree beats direct in wall time at the largest common size.
    n2048 = next(r for r in rows if r[0] == 2048)
    assert n2048[2] < n2048[3]


def test_fig3_tree_force_kernel(benchmark):
    """Wall-time kernel benchmark: one tree-force evaluation at N=2048."""
    rng = np.random.default_rng(7)
    pos = rng.random((2048, 3))
    q = rng.choice([-1.0, 1.0], size=2048)

    def kernel():
        tree = build_octree(pos, q)
        return tree_field(tree, theta=0.6)

    E, _, _ = benchmark(kernel)
    assert np.all(np.isfinite(E))


def _instrumentation_overhead(steps=5):
    setup = beam_on_sphere_setup(n_plasma=400, n_beam=56, seed=3)
    bare = PlasmaSim(setup={k: v.copy() for k, v in setup.items()}, theta=0.6)
    instrumented = PlasmaSim(setup={k: v.copy() for k, v in setup.items()},
                             theta=0.6)

    t0 = time.perf_counter()
    for _ in range(steps):
        bare.step()
    t_bare = (time.perf_counter() - t0) / steps

    t0 = time.perf_counter()
    shipped = 0
    for _ in range(steps):
        instrumented.step()
        # The full section 3.4 data-space, encoded for the wire.
        blob = encode_visit(DataSend(tag=1, payload=instrumented.sample()))
        shipped += len(blob)
    t_inst = (time.perf_counter() - t0) / steps
    return t_bare, t_inst, shipped / steps


def test_fig3_visit_instrumentation_overhead(benchmark, reporter):
    t_bare, t_inst, bytes_per_step = run_once(
        benchmark, _instrumentation_overhead
    )
    overhead = (t_inst - t_bare) / t_bare * 100.0
    reporter.table(
        "FIG3b: VISIT instrumentation cost (PEPC, N=456, per step, wall)",
        ["variant", "s/step", "sample bytes/step"],
        [
            ["bare simulation", f"{t_bare:.4f}", "-"],
            ["instrumented (ship full data-space)", f"{t_inst:.4f}",
             f"{bytes_per_step:.0f}"],
            ["overhead", f"{overhead:.1f}%", ""],
        ],
    )
    # The design goal: instrumentation must not dominate the simulation.
    assert t_inst < 2.0 * t_bare
