"""OBS — what does observability cost the canonical fleet scenario?

Three interleaved variants of the same seed-identical fleet run
(`fleet_of(n, stagger=0.2)` on 4 sites — the perf-gate scenario):

* ``bare``     — no Observability attached: the pre-obs code paths;
* ``obs_off``  — the acceptance configuration: metrics + breakers wired,
  tracing disabled.  This is what a production fabric runs;
* ``tracing``  — full causal span capture on top, priced separately.

Every variant must produce the exact same FleetReport and event count —
observability that perturbs the simulation cannot pass.

The < 2% tracing-off floor is gated on a *hook-cost account*, not a raw
wall-clock ratio: shared runners jitter far more than 2% between two
identical runs, so an A/B ratio gate would flake on noise while missing
nothing.  Instead the bench reads the exact number of hot-path pushes
out of the run's own counters (viz frames, steer ops, finds — the only
per-event work ``obs_off`` adds), microbenchmarks each instrument call,
and floors ``calls x per-call cost / bare wall``.  Both inputs are
stable: the counts are deterministic, and a tight-loop minimum per-call
time is repeatable where whole-run walls are not.  The end-to-end A/B
minimum is still measured and reported, with a loose sanity bound that
catches gross regressions (a hook growing I/O or quadratic work).
"""

import os
import time

from benchmarks.conftest import run_once, write_json
from repro.obs import Observability
from repro.perf.gate import FLEET_N_SITES, FLEET_STAGGER

#: sessions / interleaved repeats of the A/B (override for smoke runs)
OBS_SESSIONS = int(os.environ.get("OBS_SESSIONS", "16"))
OBS_REPEATS = int(os.environ.get("OBS_REPEATS", "3"))
#: tracing-off hook-cost floor (fraction of the bare wall)
OBS_GATE_THRESHOLD = float(os.environ.get("OBS_GATE_THRESHOLD", "0.02"))
#: end-to-end A/B sanity bound — loose because shared-runner noise is
#: real; the hook-cost account above is the tight gate
OBS_AB_SANITY = float(os.environ.get("OBS_AB_SANITY", "0.25"))

VARIANTS = ("bare", "obs_off", "tracing")


def _obs_for(variant):
    if variant == "bare":
        return None
    return Observability(
        tracing=(variant == "tracing"), metrics=True, breakers=True
    )


def _run_fleet(n_sessions, obs):
    from repro.fleet import FleetDriver, fleet_of

    specs = fleet_of(n_sessions, stagger=FLEET_STAGGER)
    t0 = time.perf_counter()
    driver = FleetDriver(specs, n_sites=FLEET_N_SITES, obs=obs)
    report = driver.run(wall_seconds=None)
    wall = time.perf_counter() - t0
    return report, wall, driver.env.events_processed


def _ab(n_sessions, repeats):
    """Interleaved repeats; per-variant walls + last report/events/obs."""
    walls = {name: [] for name in VARIANTS}
    reports, events, obs_used = {}, {}, {}
    for _ in range(repeats):
        for name in VARIANTS:
            obs = _obs_for(name)
            report, wall, ev = _run_fleet(n_sessions, obs)
            walls[name].append(wall)
            reports[name], events[name], obs_used[name] = report, ev, obs
    return walls, reports, events, obs_used


def _assert_same_work(reports, events):
    """Observability must not perturb the simulation."""
    base = reports["bare"]
    for name, rep in reports.items():
        assert (rep.completed, rep.failed, rep.ops) == (
            base.completed, base.failed, base.ops
        ), (name, rep.render())
        assert events[name] == events["bare"], (name, events)


def _hook_counts(obs):
    """Exact hot-path push counts, read back out of the run's metrics."""
    metrics = obs.metrics
    frames = sum(metrics.get("repro_viz_frames_total").series.values())
    ops = sum(metrics.get("repro_steer_ops_total").series.values())
    steer_obs = metrics.get("repro_steer_latency_seconds").series[()][2]
    finds = metrics.get("repro_find_latency_seconds").series[()][2]
    return {
        "viz_frames": int(frames),
        "op_incs": int(ops),
        "steer_observes": int(steer_obs),
        "find_observes": int(finds),
    }


def _per_call(fn, n=20000, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / n


def _hook_cost_seconds(counts):
    """counts x microbenchmarked per-call instrument cost."""
    obs = Observability(tracing=False, metrics=True)
    hist = obs.metrics.histogram("bench_hist", "per-call cost probe")
    plain = obs.metrics.counter("bench_plain", "per-call cost probe")
    labeled = obs.metrics.counter(
        "bench_labeled", "per-call cost probe", labels=("outcome",)
    )
    # A closure call wrapping the inc, like the driver's viz-frame hook.
    c_frame = _per_call(lambda: plain.inc())
    c_observe = _per_call(lambda: hist.observe(0.0123))
    c_op = _per_call(lambda: labeled.inc(outcome="ok"))
    return (
        counts["viz_frames"] * c_frame
        + counts["op_incs"] * c_op
        + (counts["steer_observes"] + counts["find_observes"]) * c_observe
    ), {"frame_ns": c_frame * 1e9, "observe_ns": c_observe * 1e9,
        "op_inc_ns": c_op * 1e9}


def _gate(walls, obs_used):
    counts = _hook_counts(obs_used["obs_off"])
    hook_s, per_call_ns = _hook_cost_seconds(counts)
    bare = min(walls["bare"])
    return {
        "counts": counts,
        "per_call_ns": {k: round(v, 1) for k, v in per_call_ns.items()},
        "hook_cost_ms": round(hook_s * 1e3, 3),
        "bare_wall_ms": round(bare * 1e3, 1),
        "overhead": hook_s / bare,
        "ab_ratio_obs_off": min(walls["obs_off"]) / bare - 1.0,
        "ab_ratio_tracing": min(walls["tracing"]) / bare - 1.0,
    }


def test_obs_overhead(benchmark, reporter):
    walls, reports, events, obs_used = run_once(
        benchmark, lambda: _ab(OBS_SESSIONS, OBS_REPEATS)
    )
    _assert_same_work(reports, events)
    gate = _gate(walls, obs_used)
    reporter.table(
        f"OBS: observability cost, {OBS_SESSIONS}-session fleet "
        f"(min of {OBS_REPEATS} interleaved repeats)",
        ["variant", "wall (ms)", "A/B min ratio"],
        [[name, f"{min(walls[name]) * 1e3:.1f}",
          f"{min(walls[name]) / min(walls['bare']) - 1:+.2%}"]
         for name in VARIANTS],
    )
    reporter.note(
        f"hook-cost account: {gate['counts']} pushes, "
        f"{gate['hook_cost_ms']:.2f} ms over a {gate['bare_wall_ms']:.0f} ms "
        f"bare run = {gate['overhead']:.3%} (floor {OBS_GATE_THRESHOLD:.0%})"
    )
    write_json(
        "BENCH_obs.json",
        {
            "sessions": OBS_SESSIONS,
            "repeats": OBS_REPEATS,
            "walls_ms": {
                name: [round(w * 1e3, 3) for w in ws]
                for name, ws in walls.items()
            },
            "gate": {k: v for k, v in gate.items()},
            "gate_threshold": OBS_GATE_THRESHOLD,
        },
        wall_seconds=sum(sum(ws) for ws in walls.values()),
        events=sum(events.values()) * OBS_REPEATS,
    )
    _assert_floor(gate)


def _assert_floor(gate):
    # The floor the ISSUE gates on: wiring metrics + breakers with
    # tracing off must be (near-)free on the hot paths.
    assert gate["overhead"] < OBS_GATE_THRESHOLD, (
        f"tracing-off hook cost {gate['overhead']:.3%} >= "
        f"{OBS_GATE_THRESHOLD:.0%} of the bare wall"
    )
    # Gross-regression sanity on the real end-to-end ratio (loose: the
    # runner's own jitter exceeds the tight floor).
    assert gate["ab_ratio_obs_off"] < OBS_AB_SANITY, (
        f"end-to-end obs-off overhead {gate['ab_ratio_obs_off']:+.1%} >= "
        f"{OBS_AB_SANITY:.0%} — a hook is doing real per-event work"
    )


def test_obs_smoke(reporter):
    """CI smoke: tiny A/B, same-work invariant + the overhead floor."""
    walls, reports, events, obs_used = _ab(n_sessions=8, repeats=2)
    _assert_same_work(reports, events)
    gate = _gate(walls, obs_used)
    reporter.note(
        f"OBS smoke: hook cost {gate['overhead']:.3%} of the bare wall "
        f"(floor {OBS_GATE_THRESHOLD:.0%}), end-to-end A/B "
        f"{gate['ab_ratio_obs_off']:+.1%}, "
        f"{reports['bare'].completed}/8 completed in all variants"
    )
    _assert_floor(gate)
