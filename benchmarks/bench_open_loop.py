"""OPEN LOOP — offered-load sweep over the admission-controlled grid.

PR 1's fleet bench ran a *closed* batch; here sessions arrive by a
seeded Poisson process against finite site capacity.  The questions a
production grid is judged on:

* below saturation the p99 admission wait stays bounded and nothing is
  rejected;
* at 2x saturation the controller sheds load (explicit rejects, queue
  depth capped at the configured bound) instead of growing the queue
  without limit;
* the reactive autoscaler at the same overload measurably lowers the
  p99 admission wait versus fixed capacity — elasticity pays for itself.

All runs are deterministic under the fixed seeds; results also land in
``BENCH_open_loop.json`` so the trajectory is diffable across PRs.
"""

import time

from benchmarks.conftest import run_once, write_json
from repro.fleet import FleetDriver
from repro.load import AdmissionController, PoissonArrivals, ReactiveAutoscaler

#: fixed fabric: 2 sites x 3 slots; a session occupies its slot for
#: ~4.4 virtual s (3s steering + launch/teardown), so the service rate
#: is ~1.35 sessions/s — the saturation point of the sweep.
N_SITES = 2
QUEUE_SLOTS = 3
QUEUE_LIMIT = 12
HORIZON = 20.0
SEED = 7
RATE_UNDER, RATE_NEAR, RATE_2X = 0.6, 1.2, 2.8


def _run(rate: float, autoscale: bool = False, seed: int = SEED):
    t0 = time.perf_counter()
    driver = FleetDriver(n_sites=N_SITES, queue_slots=QUEUE_SLOTS)
    ctl = AdmissionController(driver, queue_limit=QUEUE_LIMIT)
    if autoscale:
        ReactiveAutoscaler(ctl, max_sites=6, high_depth=3, interval=1.0,
                           cooldown=0.0)
    arrivals = PoissonArrivals(rate=rate, horizon=HORIZON, seed=seed,
                               duration=3.0, cadence=0.5)
    report = ctl.run(arrivals, wall_seconds=None)
    report.wall_seconds = time.perf_counter() - t0
    return report


def _row(label, rep):
    q = rep.queue
    return [
        label, q.offered, q.admitted, q.rejected, q.abandoned,
        f"{q.wait_p50:.2f}", f"{q.wait_p99:.2f}", q.depth_max,
        f"+{q.scale_ups}/-{q.scale_downs}", rep.completed,
        f"{rep.wall_seconds:.2f}",
    ]


HEADER = ["offered load", "offered", "admitted", "rejected", "abandoned",
          "wait p50 (s)", "wait p99 (s)", "depth max", "scale",
          "completed", "wall (s)"]


def test_open_loop_saturation_sweep(benchmark, reporter):
    def sweep():
        return {
            "underload": _run(RATE_UNDER),
            "near-saturation": _run(RATE_NEAR),
            "2x-saturation": _run(RATE_2X),
        }

    results = run_once(benchmark, sweep)
    reporter.table(
        "OPEN LOOP: Poisson arrivals vs fixed capacity "
        f"({N_SITES} sites x {QUEUE_SLOTS} slots, queue bound {QUEUE_LIMIT})",
        HEADER,
        [_row(k, rep) for k, rep in results.items()],
    )
    under, near, over = (results["underload"].queue,
                         results["near-saturation"].queue,
                         results["2x-saturation"].queue)
    # Below saturation: nothing rejected, bounded p99 admission wait.
    for q in (under, near):
        assert q.rejected == 0, q.render()
        assert q.abandoned == 0, q.render()
    assert under.wait_p99 < 2.0, under.render()
    assert near.wait_p99 < 6.0, near.render()
    # Every admitted session still completes (admission protects the
    # fabric: overload never degrades sessions already inside).
    for rep in results.values():
        assert rep.completed == rep.queue.admitted
        assert rep.timeouts == 0
    # At 2x saturation the controller sheds: explicit rejects, and the
    # queue never grows past its bound.
    assert over.rejected > 0
    assert over.rejection_rate > 0.15
    assert over.depth_max <= QUEUE_LIMIT
    # Deterministic under the fixed seed: an identical rerun agrees.
    again = _run(RATE_UNDER).queue
    assert (again.offered, again.admitted, again.wait_p99) == (
        under.offered, under.admitted, under.wait_p99
    )
    write_json(
        "BENCH_open_loop.json",
        {"sweep": {k: rep.to_dict() for k, rep in results.items()}},
        wall_seconds=sum(rep.wall_seconds for rep in results.values()),
    )


def test_open_loop_autoscaler_lowers_wait(benchmark, reporter):
    def pair():
        return {"fixed": _run(RATE_2X), "autoscaled": _run(RATE_2X, True)}

    results = run_once(benchmark, pair)
    reporter.table(
        f"OPEN LOOP: 2x saturation (lambda={RATE_2X}/s), fixed capacity "
        "vs reactive autoscaler (max 6 sites)",
        HEADER,
        [_row(k, rep) for k, rep in results.items()],
    )
    fixed, elastic = results["fixed"].queue, results["autoscaled"].queue
    # Elasticity pays: the scaler grows, waits drop measurably, and the
    # load that fixed capacity rejected is served instead.
    assert elastic.scale_ups > 0
    assert elastic.wait_p99 < 0.6 * fixed.wait_p99, (
        f"autoscaled p99 {elastic.wait_p99:.2f}s vs fixed "
        f"{fixed.wait_p99:.2f}s"
    )
    assert elastic.rejected < fixed.rejected
    assert elastic.admitted > fixed.admitted
    # The scaler also drained back down once the rush passed.
    assert elastic.scale_downs > 0
    write_json(
        "BENCH_open_loop_autoscale.json",
        {k: rep.to_dict() for k, rep in results.items()},
        wall_seconds=sum(rep.wall_seconds for rep in results.values()),
    )


def test_open_loop_smoke(reporter):
    """CI smoke: a short underload stream end-to-end, nothing shed."""
    driver = FleetDriver(n_sites=1, queue_slots=3)
    ctl = AdmissionController(driver, queue_limit=8)
    report = ctl.run(
        PoissonArrivals(rate=0.5, horizon=8.0, seed=3,
                        duration=2.0, cadence=0.5)
    )
    q = report.queue
    reporter.note(
        f"OPEN LOOP smoke: {q.admitted}/{q.offered} admitted, "
        f"{report.completed} completed, wait p99={q.wait_p99:.2f}s"
    )
    assert q.offered > 0
    assert q.rejected == 0
    assert report.completed == q.admitted == q.offered
