"""S44 — the simulation feedback loop (paper section 4.4).

"Experiments showed that people can tolerate delays of up to a minute
while waiting for new simulation results.  This tolerance can even be
increased if intermediate results like from an iterative solver are
displayed in-between."

Workload: steer LB3D's miscibility over the RealityGrid testbed; measure
(a) time from the steer command to the first *physically responding*
sample at the client, and (b) how the sample interval (intermediate
results) changes the longest visual silence the user endures.
"""

import numpy as np

from benchmarks._wiring import wire_app_to_host
from benchmarks.conftest import run_once
from repro.sims import LatticeBoltzmann3D
from repro.steering import (
    SteeredApplication,
    SteeringClient,
    steered_app_process,
)
from repro.workloads import SIM_FEEDBACK_TOLERANCE, realitygrid_testbed

#: virtual compute time per LB step on the 2003-era compute host
STEP_COST = 0.8


def _scenario(sample_interval):
    env, net = realitygrid_testbed()
    sim = LatticeBoltzmann3D(shape=(12, 12, 12), g=0.0, seed=6)
    app = SteeredApplication(sim, name="lb3d", sample_interval=sample_interval)
    control = wire_app_to_host(env, net, app, "ucl-onyx", "floor-laptop", 7001)
    samples = wire_app_to_host(env, net, app, "ucl-onyx", "floor-laptop",
                               7002, kind="sample")
    env.process(steered_app_process(env, app, compute_time=STEP_COST))
    out = {}

    def user():
        while "service_link" not in control or "service_link" not in samples:
            yield env.timeout(0.01)
        steerer = SteeringClient(control["service_link"], name="john")
        watcher = SteeringClient(samples["service_link"], name="john-eyes")
        yield env.timeout(5.0)  # watch the mixed fluid for a while

        t_steer = env.now
        steerer.set_parameter("g", 3.0)
        arrivals = []
        responded_at = None
        while env.now < t_steer + 120.0:
            watcher.drain()
            for s in watcher.samples:
                phi = s.data["order_parameter"]
                t_arrive = arrivals[-1][0] if arrivals and arrivals[-1][1] is s.seq else None
                if not any(seq == s.seq for _, seq in arrivals):
                    arrivals.append((env.now, s.seq))
                if responded_at is None and float(np.std(phi)) > 0.05:
                    responded_at = env.now
            if responded_at is not None and len(arrivals) > 4:
                break
            yield env.timeout(0.25)
        out["steer_to_response"] = (responded_at - t_steer
                                    if responded_at else float("inf"))
        gaps = [b - a for (a, _), (b, _) in zip(arrivals, arrivals[1:])]
        out["max_visual_silence"] = max(gaps) if gaps else float("inf")

    env.process(user())
    env.run(until=200.0)
    return out


def test_s44_simulation_feedback_loop(benchmark, reporter):
    def sweep():
        return {k: _scenario(k) for k in (1, 5, 20)}

    results = run_once(benchmark, sweep)
    rows = []
    for interval, r in sorted(results.items()):
        rows.append(
            [interval, f"{r['steer_to_response']:.1f}",
             f"{r['max_visual_silence']:.1f}",
             "OK" if r["steer_to_response"] < SIM_FEEDBACK_TOLERANCE
             else "MISS"]
        )
    reporter.table(
        "S44: steer miscibility -> visible demixing at the client "
        f"(LB step = {STEP_COST}s virtual; budget {SIM_FEEDBACK_TOLERANCE:.0f}s)",
        ["sample every N steps", "steer -> response (s)",
         "longest visual silence (s)", "verdict"],
        rows,
    )
    for r in results.values():
        assert r["steer_to_response"] < SIM_FEEDBACK_TOLERANCE
    # Intermediate results (small sample interval) shrink the visual gap —
    # the paper's tolerance-extension mechanism.
    assert results[1]["max_visual_silence"] < results[20]["max_visual_silence"]
