"""FIG4 — COVISE collaborative session in the Access Grid (paper Figure 4).

Workload: the building-climatization map replicated on every AG site
(one a bridged CAVE), media flowing in the venue, a collaborative
cutting-plane exploration.  Regenerated series: per-site content
consistency, update skew, WAN bytes, and media latency per site class.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.accessgrid import AGNode, VenueServer
from repro.accessgrid.media import MediaProducer
from repro.covise import CollaborativeCovise, MapEditor
from repro.sims import BuildingClimate
from repro.workloads import sc03_showfloor


def _build_spec():
    """Map spec built on a scratch net (placement is per-site anyway)."""
    from repro.des import Environment
    from repro.net import Network

    env = Environment()
    net = Network(env)
    net.add_host("scratch")
    editor = MapEditor(net)
    editor.add_source("read", "scratch", lambda: np.zeros((4, 4, 4)))
    editor.add("CuttingPlane", "cut", "scratch", resolution=32)
    editor.add("IsoSurface", "iso", "scratch", level=22.0)
    editor.add("Renderer", "render", "scratch")
    editor.connect("read", "field", "cut", "field")
    editor.connect("read", "field", "iso", "field")
    editor.connect("iso", "surface", "render", "surface")
    return editor.spec()


def _scenario(n_sites=4):
    env, net, names = sc03_showfloor(n_sites=n_sites, cave=True)
    venue_server = VenueServer(net, net.host("venue-server"))
    venue = venue_server.create_venue("SC03")

    nodes = []
    for name in names:
        node = AGNode(net.host(name))
        if name == "hlrs-cave":
            node.enter(venue, bridge_host=net.host("venue-server"))
        else:
            node.enter(venue)
        nodes.append(node)

    # Every site runs the same building simulation feed (the simulation
    # output is deterministic, so replicas agree).
    sims = {name: BuildingClimate(shape=(16, 10, 6), seed=5) for name in names}
    for s in sims.values():
        s.run(50)
    sources = {
        name: {"read": (lambda s=sims[name]: s.temperature.copy())}
        for name in names
    }
    session = CollaborativeCovise(
        net, _build_spec(), {name: name for name in names}, sources,
        watch=("cut", "plane"),
    )

    # Media: the show floor site streams video into the venue.
    producer = MediaProducer(net.host(names[0]), venue.video, fps=25,
                             frame_bytes=8000)
    producer.start()

    report = {}

    def scenario():
        yield from session.execute_all()
        out = yield from session.change_parameter(
            "cut", "point", (8.0, 5.0, 2.0), mode="parameter"
        )
        report.update(out)

    env.process(scenario())
    env.run(until=20.0)
    producer.stop()

    media = {
        n.site_name: (
            n.video_receiver.frames_received,
            n.video_receiver.latency.mean if n.video_receiver.frames_received else 0.0,
        )
        for n in nodes
    }
    return report, media, names


def test_fig4_collaborative_session(benchmark, reporter):
    report, media, names = run_once(benchmark, _scenario)
    rows = [
        [site, f"{report['per_site_done'][site]:.3f}"] for site in names
    ]
    reporter.table(
        "FIG4a: cutting-plane update completion per site (s, virtual)",
        ["site", "done at"], rows,
    )
    reporter.table(
        "FIG4b: session summary",
        ["metric", "value"],
        [
            ["all sites show identical content", report["digests_agree"]],
            ["update skew across sites", f"{report['skew'] * 1e3:.1f} ms"],
            ["WAN bytes for the update", report["wan_bytes"]],
        ],
    )
    media_rows = [
        [site, frames, f"{lat * 1e3:.1f}"] for site, (frames, lat) in media.items()
    ]
    reporter.table(
        "FIG4c: venue media plane (25 fps video)",
        ["site", "frames received", "mean latency (ms)"], media_rows,
    )
    assert report["digests_agree"] is True
    assert report["skew"] < 0.5  # sub-frame-rate skew: usable discussion
    assert report["wan_bytes"] <= len(names) * 256
    # Every non-sender site (incl. the bridged CAVE) got the video.
    receivers = [f for site, (f, _) in media.items() if site != names[0]]
    assert all(f > 100 for f in receivers)
