"""Compatibility shim for environments whose pip cannot build editable
wheels (e.g. fully offline hosts without the ``wheel`` package).

Prefer ``pip install -e .``.  As a last resort, an equivalent of the
editable install is a .pth file pointing at ``src``::

    echo "$(pwd)/src" > "$(python -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"
"""

from setuptools import setup

setup()
