"""PacedRunner: wall-clock pacing, turbo, catch-up accounting, drain."""

import asyncio

import pytest

from repro.des.core import Environment
from repro.errors import LiveError
from repro.live.pacing import PacedRunner


def _ticker(env, period, count, hits):
    def gen():
        for _ in range(count):
            yield env.timeout(period)
            hits.append(env.now)

    return gen()


def test_constructor_validation():
    env = Environment()
    with pytest.raises(LiveError):
        PacedRunner(env, rate=0.0)
    with pytest.raises(LiveError):
        PacedRunner(env, rate=float("nan"))
    with pytest.raises(LiveError):
        PacedRunner(env, rate=-1.0)
    with pytest.raises(LiveError):
        PacedRunner(env, max_tick=0.0)
    with pytest.raises(LiveError):
        PacedRunner(env, batch=0)


def test_turbo_runs_to_the_deadline():
    env = Environment()
    hits: list = []
    env.process(_ticker(env, 1.0, 5, hits))
    runner = PacedRunner(env, rate=None)
    asyncio.run(runner.run(until=3.5))
    assert hits == [1.0, 2.0, 3.0]
    assert env.now == 3.5
    assert runner.events >= 3


def test_paced_fast_forward_matches_batch_semantics():
    env = Environment()
    hits: list = []
    env.process(_ticker(env, 1.0, 8, hits))
    runner = PacedRunner(env, rate=500.0, max_tick=0.01)
    asyncio.run(runner.run(until=8.0))
    assert hits == [float(k) for k in range(1, 9)]
    assert env.now == 8.0


def test_catchup_accounting_with_tiny_batches():
    env = Environment()
    hits: list = []
    # 40 events all due within the first paced tick, but batch=4 means a
    # full batch still leaves due work behind: catch-up pressure.
    for _ in range(10):
        env.process(_ticker(env, 1e-6, 4, hits))
    runner = PacedRunner(env, rate=1000.0, max_tick=0.01, batch=4)
    asyncio.run(runner.run(until=0.001))
    assert len(hits) == 40
    assert runner.catchups >= 1
    assert runner.stats()["events"] >= 40


def test_injected_work_wakes_an_idle_runner():
    env = Environment()
    hits: list = []
    runner = PacedRunner(env, rate=1000.0, max_tick=5.0)

    async def go():
        task = asyncio.create_task(runner.run())
        await asyncio.sleep(0.02)  # runner parks (empty heap, long tick)
        env.process(_ticker(env, 0.001, 3, hits))  # on_schedule -> kick
        await asyncio.sleep(0.1)
        runner.stop()
        await task

    asyncio.run(go())
    # Without the kick the 5s max_tick would far outlast the test sleep.
    assert len(hits) == 3


def test_set_rate_switches_to_turbo_mid_run():
    env = Environment()
    hits: list = []
    env.process(_ticker(env, 10.0, 5, hits))
    runner = PacedRunner(env, rate=1.0, max_tick=0.01)

    async def go():
        task = asyncio.create_task(runner.run(until=50.0))
        await asyncio.sleep(0.05)  # real time: no 10s tick fires yet
        assert hits == []
        runner.set_rate(None)
        await task

    asyncio.run(go())
    assert hits == [10.0, 20.0, 30.0, 40.0, 50.0]
    assert env.now == 50.0


def test_run_is_not_reentrant():
    env = Environment()
    runner = PacedRunner(env, rate=None)

    async def go():
        task = asyncio.create_task(runner.run())
        await asyncio.sleep(0)
        with pytest.raises(LiveError):
            await runner.run()
        runner.stop()
        await task

    asyncio.run(go())


def test_finish_drains_within_grace():
    env = Environment()
    hits: list = []
    env.process(_ticker(env, 1.0, 4, hits))
    runner = PacedRunner(env, rate=None)

    async def go():
        task = asyncio.create_task(runner.run(until=1.5))
        await task
        return await runner.finish(grace=10.0)

    drain = asyncio.run(go())
    assert hits == [1.0, 2.0, 3.0, 4.0]
    assert drain["drained"] is True
    assert drain["events"] >= 3


def test_finish_respects_the_grace_budget():
    env = Environment()
    hits: list = []
    env.process(_ticker(env, 10.0, 5, hits))
    runner = PacedRunner(env, rate=None)

    async def go():
        return await runner.finish(grace=25.0)

    drain = asyncio.run(go())
    assert hits == [10.0, 20.0]  # 30.0 is beyond now + grace
    assert drain["drained"] is False
    with pytest.raises(LiveError):
        asyncio.run(runner.finish(grace=-1.0))


def test_finish_refuses_while_running():
    env = Environment()
    runner = PacedRunner(env, rate=None)

    async def go():
        task = asyncio.create_task(runner.run())
        await asyncio.sleep(0)
        with pytest.raises(LiveError):
            await runner.finish()
        runner.stop()
        await task

    asyncio.run(go())


def test_on_schedule_hook_is_restored_after_run():
    env = Environment()
    sentinel = []
    env.on_schedule = lambda: sentinel.append(1)
    runner = PacedRunner(env, rate=None)
    asyncio.run(runner.run(until=1.0))
    assert env.on_schedule is not None
    env.process(_ticker(env, 1.0, 1, []))
    assert sentinel  # the previous hook fires again
