"""Mergeable/streaming statistics (the substrate of fleet telemetry).

Covers RunningStats.merge (exactness + associativity), the P² streaming
quantile estimator, and the mergeable reservoir sample.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import P2Quantile, ReservoirSample, RunningStats, percentile


def _stats_of(xs):
    s = RunningStats()
    s.extend(xs)
    return s


def _assert_stats_equal(a: RunningStats, b: RunningStats):
    assert a.n == b.n
    assert a.mean == pytest.approx(b.mean, rel=1e-12, abs=1e-12, nan_ok=True)
    assert a.variance == pytest.approx(b.variance, rel=1e-9, abs=1e-12)
    assert a.min == b.min
    assert a.max == b.max


def test_merge_matches_concatenated_stream():
    xs = [1.0, 4.0, 2.0, 8.0]
    ys = [3.0, -1.0, 7.0]
    merged = _stats_of(xs).merge(_stats_of(ys))
    _assert_stats_equal(merged, _stats_of(xs + ys))


def test_merge_with_empty_is_identity_both_ways():
    xs = [2.0, 5.0, 11.0]
    left = _stats_of(xs).merge(RunningStats())
    _assert_stats_equal(left, _stats_of(xs))
    right = RunningStats().merge(_stats_of(xs))
    _assert_stats_equal(right, _stats_of(xs))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(-1e6, 1e6), max_size=30),
    st.lists(st.floats(-1e6, 1e6), max_size=30),
    st.lists(st.floats(-1e6, 1e6), max_size=30),
)
def test_property_merge_associative_and_exact(xs, ys, zs):
    # (x + y) + z  ==  x + (y + z)  ==  stats of the concatenation.
    ab_c = _stats_of(xs).merge(_stats_of(ys)).merge(_stats_of(zs))
    bc = _stats_of(ys).merge(_stats_of(zs))
    a_bc = _stats_of(xs).merge(bc)
    whole = _stats_of(xs + ys + zs)
    _assert_stats_equal(ab_c, whole)
    _assert_stats_equal(a_bc, whole)


def test_p2_quantile_rejects_bad_q():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_quantile_small_streams_are_exact():
    est = P2Quantile(0.5)
    assert math.isnan(est.value)
    for x in (5.0, 1.0, 3.0):
        est.add(x)
    assert est.value == percentile([5.0, 1.0, 3.0], 50)


@pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
def test_p2_quantile_accuracy_uniform(q):
    rng = random.Random(42)
    est = P2Quantile(q)
    xs = [rng.random() for _ in range(5000)]
    for x in xs:
        est.add(x)
    exact = percentile(xs, q * 100)
    assert est.value == pytest.approx(exact, abs=0.03)


def test_p2_quantile_accuracy_heavy_tail():
    rng = random.Random(7)
    est = P2Quantile(0.9)
    xs = [rng.expovariate(1.0) for _ in range(8000)]
    for x in xs:
        est.add(x)
    exact = percentile(xs, 90)
    assert est.value == pytest.approx(exact, rel=0.1)


def test_reservoir_keeps_everything_under_capacity():
    res = ReservoirSample(capacity=16, seed=3)
    res.extend(range(10))
    assert res.n == 10 and len(res) == 10
    assert res.percentile(0) == 0.0
    assert res.percentile(100) == 9.0


def test_reservoir_empty_percentile_raises():
    with pytest.raises(ValueError):
        ReservoirSample(capacity=4).percentile(50)
    with pytest.raises(ValueError):
        ReservoirSample(capacity=0)


def test_reservoir_percentile_accuracy_over_capacity():
    res = ReservoirSample(capacity=512, seed=11)
    xs = list(range(20000))
    res.extend(xs)
    assert res.n == 20000 and len(res) == 512
    assert res.percentile(50) == pytest.approx(10000, rel=0.15)
    assert res.percentile(90) == pytest.approx(18000, rel=0.15)


def test_reservoir_merge_tracks_combined_distribution():
    # Two disjoint streams; the union's median sits between them.
    a = ReservoirSample(capacity=256, seed=1)
    b = ReservoirSample(capacity=256, seed=2)
    a.extend([0.0] * 3000)
    b.extend([1.0] * 1000)
    a.merge(b)
    assert a.n == 4000
    # ~25% of the mass is 1.0, so p50 is 0 and p90 is 1.
    assert a.percentile(50) == 0.0
    assert a.percentile(95) == 1.0
    frac_ones = sum(1 for x in a._items if x == 1.0) / len(a)
    assert 0.1 < frac_ones < 0.45


def test_reservoir_merge_into_empty_respects_capacity():
    big = ReservoirSample(capacity=256, seed=4)
    big.extend(range(1000))
    small = ReservoirSample(capacity=8, seed=5)
    small.merge(big)
    assert small.n == 1000
    assert len(small) == 8  # the fixed-size invariant survives the merge
    small.add(123.0)  # and later adds still sample uniformly
    assert len(small) == 8


def test_reservoir_merge_with_empty_and_into_empty():
    a = ReservoirSample(capacity=8, seed=5)
    a.extend([1.0, 2.0])
    a.merge(ReservoirSample(capacity=8))
    assert a.n == 2 and len(a) == 2
    c = ReservoirSample(capacity=8, seed=6)
    c.merge(a)
    assert c.n == 2 and sorted(c._items) == [1.0, 2.0]
