"""Tests for the mesh-mapped diagnostics (the section 3.4 future extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sims.pepc import PlasmaSim, beam_on_sphere_setup
from repro.sims.pepc.meshdiag import DiagnosticMesh


def small_sim(**kw):
    return PlasmaSim(setup=beam_on_sphere_setup(n_plasma=64, n_beam=8, seed=2),
                     theta=0.6, **kw)


def mesh(shape=(8, 8, 8)):
    return DiagnosticMesh(lo=(-4.0, -2.0, -2.0), hi=(2.0, 2.0, 2.0),
                          shape=shape)


def test_mesh_validation():
    with pytest.raises(SimulationError):
        DiagnosticMesh(lo=(0, 0, 0), hi=(0, 1, 1))
    with pytest.raises(SimulationError):
        DiagnosticMesh(lo=(0, 0), hi=(1, 1))
    with pytest.raises(SimulationError):
        DiagnosticMesh(lo=(0, 0, 0), hi=(1, 1, 1), shape=(1, 4, 4))


def test_deposit_conserves_total_charge():
    """CIC deposition must conserve the deposited quantity exactly."""
    sim = small_sim()
    m = mesh()
    rho = m.charge_density(sim)
    total = rho.sum() * m.cell_volume
    assert total == pytest.approx(sim.charges.sum(), abs=1e-9)


def test_deposit_point_charge_lands_in_right_cell():
    m = DiagnosticMesh(lo=(0, 0, 0), hi=(8, 8, 8), shape=(8, 8, 8))
    pos = np.array([[4.5, 4.5, 4.5]])  # the centre of cell (4,4,4)
    rho = m.deposit(pos, np.array([2.0]))
    assert rho[4, 4, 4] * m.cell_volume == pytest.approx(2.0)
    assert rho.sum() * m.cell_volume == pytest.approx(2.0)


def test_deposit_splits_between_cells():
    m = DiagnosticMesh(lo=(0, 0, 0), hi=(8, 8, 8), shape=(8, 8, 8))
    pos = np.array([[5.0, 4.5, 4.5]])  # on the x-face between cells 4 and 5
    rho = m.deposit(pos, np.array([1.0]))
    assert rho[4, 4, 4] == pytest.approx(rho[5, 4, 4])
    assert rho.sum() * m.cell_volume == pytest.approx(1.0)


def test_particles_outside_mesh_clamp_not_crash():
    m = DiagnosticMesh(lo=(0, 0, 0), hi=(1, 1, 1), shape=(4, 4, 4))
    pos = np.array([[-5.0, 0.5, 0.5], [9.0, 0.5, 0.5]])
    rho = m.deposit(pos, np.ones(2))
    assert rho.sum() * m.cell_volume == pytest.approx(2.0)


def test_current_density_shape_and_direction():
    sim = small_sim()
    m = mesh()
    J = m.current_density(sim)
    assert J.shape == (3,) + m.shape
    # The beam moves in +x with negative charge: its cells carry Jx < 0.
    beam_x = sim.positions[sim.is_beam, 0].mean()
    assert J[0].sum() * m.cell_volume == pytest.approx(
        float(np.sum(sim.charges * sim.velocities[:, 0])), abs=1e-9
    )


def test_e_field_magnitude_positive_near_charges():
    sim = small_sim()
    m = mesh(shape=(8, 8, 8))
    emag = m.electric_field_magnitude(sim, subsample=2)
    assert emag.shape == (4, 4, 4)
    assert np.all(emag >= 0) and emag.max() > 0


def test_laser_intensity_profile():
    sim = small_sim()
    sim.set_parameter("laser_intensity", 2.0)
    sim.set_parameter("laser_direction", [1.0, 0.0, 0.0])
    m = DiagnosticMesh(lo=(-2, -2, -2), hi=(2, 2, 2), shape=(9, 9, 9))
    intensity = m.laser_intensity(sim)
    # Peak on the beam axis (y = z = 0 plane centre), decays transversally.
    centre = intensity[:, 4, 4]
    edge = intensity[:, 0, 0]
    assert np.all(centre >= edge)
    assert intensity.max() == pytest.approx(4.0, rel=0.05)  # amplitude^2


def test_laser_intensity_zero_without_laser():
    sim = small_sim()
    m = mesh()
    assert m.laser_intensity(sim).max() == 0.0


def test_all_diagnostics_bundle():
    sim = small_sim()
    m = mesh()
    d = m.all_diagnostics(sim)
    assert set(d) == {"charge_density", "current_density",
                      "e_field_magnitude", "laser_intensity"}
    for arr in d.values():
        assert arr.dtype == np.float32


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(1, 60),
    seed=st.integers(0, 100),
)
def test_property_deposition_conserves_weight(n, seed):
    rng = np.random.default_rng(seed)
    m = DiagnosticMesh(lo=(0, 0, 0), hi=(2, 3, 4), shape=(5, 6, 7))
    pos = rng.uniform(-1, 5, size=(n, 3))  # some outside: they clamp
    w = rng.standard_normal(n)
    rho = m.deposit(pos, w)
    assert rho.sum() * m.cell_volume == pytest.approx(w.sum(), abs=1e-9)
