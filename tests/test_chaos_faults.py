"""Fault taxonomy, schedule DSL and injector mechanics (no recovery)."""

import pytest

from repro.chaos import (
    ChaosHarness,
    ContainerCrash,
    FaultInjector,
    FaultSchedule,
    FirewallLockdown,
    LinkDegrade,
    Partition,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
)
from repro.des import Environment
from repro.errors import ChaosError, HostUnreachable
from repro.fleet import FleetDriver
from repro.net import Firewall, Network


# -- DSL validation ----------------------------------------------------------


def test_fault_validation_rejects_nonsense():
    with pytest.raises(ChaosError):
        SiteOutage(at=-1.0, site=0)
    with pytest.raises(ChaosError):
        SiteOutage(at=1.0, site=0, duration=0.0)
    with pytest.raises(ChaosError):
        SiteOutage(at=1.0, site=-1)
    with pytest.raises(ChaosError):
        LinkDegrade(at=1.0, a="x", b="y", latency_factor=0.5)
    with pytest.raises(ChaosError):
        SlowNode(at=1.0, site=0, factor=1.0)
    with pytest.raises(ChaosError):
        # Shard loss is permanent data loss; a duration makes no sense.
        RegistryShardLoss(at=1.0, shard=0, duration=5.0)


def test_schedule_orders_by_time_and_reports_horizon():
    sched = FaultSchedule()
    sched.add(SiteOutage(at=9.0, site=1, duration=2.0))
    sched.add(Partition(at=2.0, a="x", b="y", duration=1.0))
    sched.add(SiteOutage(at=2.0, site=0))  # same instant: insertion order
    kinds = [f.kind for f in sched]
    assert kinds == ["partition", "site-outage", "site-outage"]
    assert sched.horizon == 11.0
    assert len(sched) == 3
    assert all("t=" in line for line in sched.describe())


def test_schedule_rejects_non_faults():
    with pytest.raises(ChaosError):
        FaultSchedule(["not a fault"])


def test_random_schedule_is_seeded_and_replayable():
    kw = dict(
        horizon=30.0, n_faults=6, sites=3, shards=2, brokers=2,
        hosts=("hpc-0",), host_pairs=(("hpc-0", "svc-0"),),
    )
    a = FaultSchedule.random(seed=42, **kw)
    b = FaultSchedule.random(seed=42, **kw)
    c = FaultSchedule.random(seed=43, **kw)
    assert a.describe() == b.describe()
    assert a.describe() != c.describe()
    assert len(a) == 6
    # Slotted generation: apply/revert windows never overlap.
    windows = sorted((f.at, f.at + (f.duration or 0.0)) for f in a)
    for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
        assert e0 <= s1


def test_random_schedule_excludes_unsatisfiable_kinds():
    sched = FaultSchedule.random(seed=1, horizon=20.0, n_faults=8,
                                 sites=2, shards=1)
    kinds = {f.kind for f in sched}
    assert "vbroker-crash" not in kinds      # no brokers declared
    assert "partition" not in kinds          # no host pairs declared
    assert "firewall-lockdown" not in kinds  # no hosts declared
    with pytest.raises(ChaosError):
        FaultSchedule.random(seed=1, horizon=20.0, sites=0, shards=0)


# -- firewall lockdown (the construct-time-only bugfix) ----------------------


def test_firewall_lockdown_is_a_mid_simulation_transition():
    fw = Firewall.single_port(4433)
    assert fw.allows_inbound(4433) and not fw.allows_inbound(80)
    fw.lockdown()
    assert fw.locked_down
    assert not fw.allows_inbound(4433)
    assert not fw.allow_multicast
    fw.lockdown()  # idempotent: does not clobber the saved policy
    fw.lift_lockdown()
    assert not fw.locked_down
    assert fw.allows_inbound(4433) and not fw.allows_inbound(80)


def test_lockdown_of_an_open_firewall_restores_open():
    fw = Firewall.open()
    fw.lockdown()
    assert not fw.allows_inbound(1234)
    fw.lift_lockdown()
    assert fw.allows_inbound(1234)
    assert fw.open_ports is None


# -- network-level faults ----------------------------------------------------


def _two_hosts():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.010, bandwidth=1e6)
    return env, net


def test_link_degrade_and_restore_are_absolute_against_base():
    env, net = _two_hosts()
    link = net.link("a", "b")
    link.degrade(latency_factor=10.0, bandwidth_factor=0.5)
    assert link.degraded
    assert link.latency == pytest.approx(0.100)
    assert link.bandwidth == pytest.approx(0.5e6)
    link.degrade(latency_factor=2.0)  # absolute, not compounding
    assert link.latency == pytest.approx(0.020)
    link.restore()
    assert not link.degraded
    assert link.latency == pytest.approx(0.010)
    assert link.bandwidth == pytest.approx(1e6)


def test_partition_drops_messages_and_fails_connects():
    env, net = _two_hosts()
    listener = net.host("b").listen(9000)
    result = {}

    def client():
        conn = yield from net.host("a").connect("b", 9000)
        conn.send(b"before")
        net.partition("a", "b")
        assert not net.reachable("a", "b")
        conn.send(b"lost-to-the-dark")
        try:
            yield from net.host("a").connect("b", 9000, timeout=1.0)
        except HostUnreachable:
            result["connect_failed_at"] = env.now
        net.heal("a", "b")
        conn.send(b"after-heal")

    def server():
        conn = yield from listener.accept()
        result["msgs"] = []
        for _ in range(2):
            msg = yield from conn.recv(timeout=30.0)
            result["msgs"].append(bytes(msg))

    env.process(client())
    env.process(server())
    env.run(until=40.0)
    # The partitioned send vanished; traffic resumed after heal.
    assert result["msgs"] == [b"before", b"after-heal"]
    assert net.dropped_messages == 1
    assert "connect_failed_at" in result


def test_isolation_cuts_a_host_from_everyone():
    env, net = _two_hosts()
    net.add_host("c")
    net.isolate("b")
    assert not net.reachable("a", "b")
    assert not net.reachable("c", "b")
    assert net.reachable("a", "c")
    assert net.reachable("b", "b")  # loopback survives
    assert net.isolated_hosts() == ["b"]
    net.rejoin("b")
    assert net.reachable("a", "b")


# -- injector mechanics on a real fabric -------------------------------------


def test_injector_validates_against_the_fabric():
    driver = FleetDriver(n_sites=2, queue_slots=2)
    injector = FaultInjector(driver)
    with pytest.raises(ChaosError, match="only 2 sites"):
        injector.install(FaultSchedule([SiteOutage(at=1.0, site=7)]))
    with pytest.raises(ChaosError, match="no broker pool"):
        injector.install(FaultSchedule([VBrokerCrash(at=1.0, broker=0)]))
    with pytest.raises(ChaosError, match="shards"):
        injector.install(FaultSchedule([RegistryShardLoss(at=1.0, shard=9)]))
    with pytest.raises(ChaosError, match="unknown host"):
        injector.install(FaultSchedule([FirewallLockdown(at=1.0, host="zz")]))


def test_site_outage_applies_and_reverts_cleanly():
    driver = FleetDriver(n_sites=2, queue_slots=2)
    env = driver.env
    injector = FaultInjector(driver)
    site = driver.sites[0]
    before = dict(driver.net.host(site.hpc_name).listeners)
    assert before  # the gateway is listening
    injector.install(
        FaultSchedule([SiteOutage(at=1.0, site=0, duration=2.0)])
    )
    env.run(until=1.5)
    assert driver.net.host(site.hpc_name).listeners == {}
    assert not driver.net.reachable(site.svc_name, "manchester")
    env.run(until=4.0)
    # Revert re-seats the same listener objects and rejoins the WAN.
    assert driver.net.host(site.hpc_name).listeners == before
    assert driver.net.reachable(site.svc_name, "manchester")
    phases = [phase for _, phase, _ in injector.log]
    assert phases == ["apply", "revert"]


def test_container_crash_severs_and_restart_serves_again():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    env = driver.env
    container = driver.sites[0].container
    assert container.alive and not container.dead
    injector = FaultInjector(driver)
    injector.install(
        FaultSchedule([ContainerCrash(at=1.0, site=0, duration=2.0)])
    )
    env.run(until=1.5)
    assert container.dead
    env.run(until=4.0)
    assert container.alive
    # A session launched after the heal completes normally.
    from repro.fleet.spec import ScenarioSpec

    done = driver.admit(ScenarioSpec(
        name="post-heal", duration=2.0, cadence=0.5, participants=1,
    ))
    env.run(until=40.0)
    assert done.ok
    assert driver.telemetry.sessions["post-heal"].completed


def test_slow_node_degrades_and_heals_every_touching_link():
    driver = FleetDriver(n_sites=2, queue_slots=2)
    injector = FaultInjector(driver)
    site = driver.sites[1]
    injector.install(
        FaultSchedule([SlowNode(at=1.0, site=1, factor=4.0, duration=2.0)])
    )
    driver.env.run(until=1.5)
    touched = driver.net.links_of(site.svc_name)
    assert touched and all(link.degraded for link in touched)
    driver.env.run(until=4.0)
    assert not any(link.degraded for link in touched)


def test_random_windows_disjoint_across_many_seeds():
    """Regression: duration is bounded by the remaining slot, so the
    disjoint-windows guarantee holds for every seed, not most."""
    for seed in range(200):
        sched = FaultSchedule.random(
            seed=seed, horizon=20.0, n_faults=5, sites=2, shards=2,
            brokers=2, hosts=("h",), host_pairs=(("h", "g"),),
        )
        windows = sorted((f.at, f.at + (f.duration or 0.0)) for f in sched)
        for (_, e0), (s1, _) in zip(windows, windows[1:]):
            assert e0 <= s1, (seed, windows)


def test_overlapping_site_faults_compose_last_revert_heals():
    """Regression: an outage reverting mid-container-crash must not
    repair the ledger or re-seat the container listener early."""
    from repro.load import AdmissionController

    driver = FleetDriver(n_sites=2, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=4)
    injector = FaultInjector(driver, controller=ctl)
    injector.install(FaultSchedule([
        SiteOutage(at=1.0, site=0, duration=4.0),        # heals at 5
        ContainerCrash(at=2.0, site=0, duration=10.0),   # heals at 12
    ]))
    env = driver.env
    env.run(until=6.0)  # outage reverted, crash still active
    assert ctl.ledger.is_failed(0)
    assert driver.sites[0].container.dead
    # The non-container listeners (gateway, NJS) did come back.
    assert driver.net.host(driver.sites[0].hpc_name).listeners
    env.run(until=13.0)  # crash reverted: now everything heals
    assert not ctl.ledger.is_failed(0)
    assert driver.sites[0].container.alive


def test_outage_revert_does_not_resurrect_a_crashed_vbroker():
    """Regression: a permanent VBrokerCrash inside a SiteOutage window
    must stay dead when the outage revert re-seats the site's listeners,
    and its downstreams must be severed even though the outage already
    unseated the listener."""
    from repro.fleet import BrokerPool

    driver = FleetDriver(n_sites=2, queue_slots=2)
    pool = BrokerPool.build(
        driver.net, [s.svc_name for s in driver.sites], port=7100
    )
    injector = FaultInjector(driver, pool=pool)
    injector.install(FaultSchedule([
        SiteOutage(at=1.0, site=0, duration=4.0),
        VBrokerCrash(at=2.0, broker=0),  # permanent, mid-outage
    ]))
    driver.env.run(until=6.0)  # outage reverted at t=5
    assert not pool.brokers[0].alive
    assert pool.brokers[0].participants() == []
    assert pool.live_brokers() == [1]
    # The rest of the site did come back.
    assert driver.net.host(driver.sites[0].hpc_name).listeners
    assert pool.place("after-heal") is pool.brokers[1]


def test_container_conns_are_pruned_when_clients_disconnect():
    """Regression: _conns must track open connections, not history."""
    from repro.fleet.spec import ScenarioSpec

    driver = FleetDriver(n_sites=1, queue_slots=4)
    for i in range(4):
        driver.admit(ScenarioSpec(
            name=f"c{i}", duration=1.0, cadence=0.5, participants=1,
        ))
    driver.env.run(until=60.0)
    assert driver.telemetry.totals()["completed"] == 4
    assert driver.sites[0].container._conns == []


def test_overlapping_lockdowns_refcount_on_one_host():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    injector = FaultInjector(driver)
    hpc = driver.sites[0].hpc_name
    injector.install(FaultSchedule([
        FirewallLockdown(at=1.0, host=hpc, duration=2.0),
        FirewallLockdown(at=2.0, host=hpc, duration=4.0),
    ]))
    driver.env.run(until=3.5)  # first lifted, second still active
    assert driver.net.host(hpc).firewall.locked_down
    driver.env.run(until=7.0)
    assert not driver.net.host(hpc).firewall.locked_down


def test_shard_loss_empties_exactly_one_shard():
    driver = FleetDriver(n_sites=1, registry_shards=3)
    reg = driver.sites[0].registry
    handles = [f"gsh://svc-0:8000/steer-{i}" for i in range(30)]
    for handle in handles:
        reg.publish(handle, {"type": "steering", "application": "x"})
    sizes_before = reg.shard_sizes()
    assert sum(sizes_before) == 30
    injector = FaultInjector(driver)
    injector.install(FaultSchedule([RegistryShardLoss(at=1.0, shard=1)]))
    driver.env.run(until=2.0)
    sizes_after = reg.shard_sizes()
    assert sizes_after[1] == 0
    assert sizes_after[0] == sizes_before[0]
    assert sizes_after[2] == sizes_before[2]
    # Surviving entries still look up through the front-end.
    for handle in handles:
        from repro.fleet.registry_fed import shard_index

        if shard_index(handle, 3) != 1:
            assert reg.lookup(handle)["type"] == "steering"


def test_lockdown_fault_blocks_new_sessions_then_lifts():
    driver = FleetDriver(n_sites=1, queue_slots=4)
    injector = FaultInjector(driver)
    hpc = driver.sites[0].hpc_name
    injector.install(FaultSchedule([
        FirewallLockdown(at=0.5, host=hpc, duration=30.0),
    ]))
    from repro.fleet.spec import ScenarioSpec

    blocked = driver.admit(ScenarioSpec(
        name="blocked", duration=2.0, cadence=0.5, participants=1,
    ), at=1.0)
    driver.env.run(until=20.0)
    assert driver.net.host(hpc).firewall.locked_down
    tel = driver.telemetry.sessions["blocked"]
    assert blocked.ok and not tel.completed
    assert "FirewallBlocked" in tel.failure
    driver.env.run(until=45.0)
    assert not driver.net.host(hpc).firewall.locked_down


def test_harness_smoke_keeps_invariants_on_a_healthy_run():
    from repro.load import AdmissionController, TraceArrivals
    from repro.fleet.spec import ScenarioSpec

    driver = FleetDriver(n_sites=2, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=8)
    world = ChaosHarness(driver, ctl)
    proto = ScenarioSpec(name="p", duration=2.0, cadence=0.5, participants=1)
    report = ctl.run(
        TraceArrivals([0.0, 0.5, 1.0], suite=[proto], prefix="h"),
        until=40.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0
    assert verdict["faults_applied"] == 0
    assert world.monitor.sweeps > 10
    assert report.completed == 3
