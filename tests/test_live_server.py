"""LiveServer end-to-end: HTTP lifecycle, backpressure, replay parity."""

import asyncio

import pytest

from repro.errors import LiveError
from repro.live.client import request
from repro.live.replay import matrix_digest, replay_trace
from repro.live.server import RETRY_AFTER_CAP, LiveServer
from repro.live.trace import load_trace

#: small fabric, fast-forward pacing — wall time stays in milliseconds
FAST = {"rate": 200.0, "queue_limit": 6, "seed": 3}


def _session_body(**kw):
    body = {"sim": "building", "participants": 1, "duration": 2.0}
    body.update(kw)
    return body


async def _wait_state(server, name, states, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        doc = (await request(server.host, server.port, "GET", f"/sessions/{name}")).json()
        if doc["state"] in states:
            return doc
        await asyncio.sleep(0.01)
    raise AssertionError(f"session {name} never reached {states}")


def test_rejects_unknown_config_keys():
    with pytest.raises(LiveError, match="unknown live config keys"):
        LiveServer(config={"warp_speed": 9})


def test_session_lifecycle_over_http():
    async def go():
        server = LiveServer(config=dict(FAST))
        await server.start()
        try:
            health = (await request(server.host, server.port, "GET", "/healthz")).json()
            assert health["ok"] is True

            resp = await request(
                server.host, server.port, "POST", "/sessions", _session_body()
            )
            assert resp.status == 202
            doc = resp.json()
            name = doc["name"]
            assert name.startswith("live00000-") and doc["state"] == "queued"

            final = await _wait_state(server, name, {"completed"})
            assert final["telemetry"]["completed"] is True

            stats = (await request(server.host, server.port, "GET", "/statsz")).json()
            assert stats["server"]["admitted"] == 1
            assert stats["sessions"]["states"][name] == "completed"
            assert stats["pacing"]["events"] > 0
        finally:
            await server.shutdown(grace=30.0)

    asyncio.run(go())


def test_error_statuses():
    async def go():
        server = LiveServer(config=dict(FAST))
        await server.start()
        try:
            args = (server.host, server.port)
            assert (await request(*args, "GET", "/nope")).status == 404
            assert (await request(*args, "DELETE", "/healthz")).status == 405
            assert (await request(*args, "GET", "/sessions/ghost")).status == 404
            assert (await request(*args, "POST", "/sessions/ghost/steer")).status == 404
            assert (await request(*args, "DELETE", "/sessions/ghost")).status == 404
            bad = await request(*args, "POST", "/sessions", {"flux": 1})
            assert bad.status == 400
            assert "unknown session fields" in bad.json()["error"]
            worse = await request(*args, "POST", "/sessions", {"sim": "not-a-sim"})
            assert worse.status == 400
        finally:
            await server.shutdown(grace=1.0)

    asyncio.run(go())


def test_429_backpressure_with_retry_after():
    async def go():
        # One site, one slot, one queue seat; pacing so slow nothing
        # finishes: the third concurrent offer must bounce.
        server = LiveServer(
            config={"n_sites": 1, "queue_slots": 1, "queue_limit": 1, "rate": 0.01}
        )
        await server.start()
        try:
            args = (server.host, server.port)
            first = await request(*args, "POST", "/sessions", _session_body())
            assert first.status == 202
            await asyncio.sleep(0.1)  # let the runner admit it to the slot
            second = await request(*args, "POST", "/sessions", _session_body())
            assert second.status == 202
            third = await request(*args, "POST", "/sessions", _session_body())
            assert third.status == 429
            assert int(third.headers["retry-after"]) >= 1
            doc = third.json()
            assert doc["backpressure"]["saturated"] is True
            assert doc["retry_after"] == int(third.headers["retry-after"])
            stats = (await request(*args, "GET", "/statsz")).json()
            assert stats["server"]["rejected"] == 1
            assert stats["backpressure"]["queue_depth"] == 1
        finally:
            await server.shutdown(grace=0.0)

    asyncio.run(go())


def test_steer_and_cancel_running_session():
    async def go():
        # Slow pacing keeps the session running while we poke it.
        server = LiveServer(config={"rate": 5.0, "seed": 1})
        await server.start()
        try:
            args = (server.host, server.port)
            body = _session_body(duration=40.0, cadence=1.0)
            name = (await request(*args, "POST", "/sessions", body)).json()["name"]
            await _wait_state(server, name, {"running"})

            steer = await request(*args, "POST", f"/sessions/{name}/steer", {"value": 7})
            assert steer.status == 202
            assert steer.json()["pending_steers"] >= 1

            gone = await request(*args, "DELETE", f"/sessions/{name}")
            assert gone.status == 202 and gone.json()["state"] == "cancelling"
            await _wait_state(server, name, {"cancelled"})

            # Steering a dead session is a conflict, not a 404.
            dead = await request(*args, "POST", f"/sessions/{name}/steer", {"value": 1})
            assert dead.status == 409
            stats = (await request(*args, "GET", "/statsz")).json()
            assert stats["server"]["steers"] == 1 and stats["server"]["cancels"] == 1
        finally:
            await server.shutdown(grace=60.0)

    asyncio.run(go())


def test_metricsz_serves_prometheus_text():
    async def go():
        server = LiveServer(config=dict(FAST))
        await server.start()
        try:
            args = (server.host, server.port)
            resp = await request(*args, "POST", "/sessions", _session_body())
            name = resp.json()["name"]
            await _wait_state(server, name, {"completed"})

            scrape = await request(*args, "GET", "/metricsz")
            assert scrape.status == 200
            assert scrape.headers["content-type"].startswith("text/plain")
            text = scrape.body.decode("utf-8")
            assert text.endswith("\n")
            # Admission, pacing and circuit-breaker series all exposed.
            for needle in (
                "# TYPE repro_admission_offered_total counter",
                "repro_admission_offered_total 1",
                "# TYPE repro_pacing_ticks_total counter",
                "# TYPE repro_circuit_state gauge",
                'repro_circuit_state{breaker="broker"} 0',
                "repro_backpressure 0",
                "# TYPE repro_http_requests_total counter",
            ):
                assert needle in text, needle
            # Every sample line parses as "<series> <float>".
            for line in text.splitlines():
                if not line.startswith("#"):
                    float(line.rpartition(" ")[2])
            assert (await request(*args, "POST", "/metricsz")).status == 405
        finally:
            await server.shutdown(grace=30.0)

    asyncio.run(go())


def test_metricsz_503_when_metrics_disabled():
    async def go():
        server = LiveServer(config=dict(FAST, metrics=False))
        await server.start()
        try:
            resp = await request(server.host, server.port, "GET", "/metricsz")
            assert resp.status == 503
            assert "disabled" in resp.json()["error"]
        finally:
            await server.shutdown(grace=0.0)

    asyncio.run(go())


def _record_session(trace_path, n=4):
    """Serve briefly, offer ``n`` sessions, shut down; returns statsz."""

    async def go():
        server = LiveServer(config=dict(FAST), trace_path=trace_path)
        await server.start()
        try:
            for _ in range(n):
                resp = await request(
                    server.host, server.port, "POST", "/sessions", _session_body()
                )
                assert resp.status in (202, 429)
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.1)
        finally:
            await server.shutdown(grace=60.0)
        return server.statsz()

    return asyncio.run(go())


def test_live_trace_replays_byte_identically(tmp_path):
    trace_path = tmp_path / "live.jsonl"
    stats = _record_session(trace_path, n=4)
    trace = load_trace(trace_path)
    assert trace.sealed and len(trace.arrivals) == 4
    assert {e["event"] for e in trace.events} >= {"admit"}

    first = replay_trace(trace_path, workers=1)
    second = replay_trace(trace_path, workers=1)
    assert matrix_digest(first) == matrix_digest(second)

    # The replayed cell re-offers exactly the recorded sessions.
    assert first.totals.sessions == stats["sessions"]["offered"] == 4


def test_replay_parity_across_worker_counts(tmp_path):
    trace_path = tmp_path / "live.jsonl"
    _record_session(trace_path, n=3)
    serial = matrix_digest(replay_trace(trace_path, workers=1))
    parallel = matrix_digest(replay_trace(trace_path, workers=2))
    assert serial == parallel


def test_replay_store_round_trips(tmp_path):
    trace_path = tmp_path / "live.jsonl"
    _record_session(trace_path, n=2)
    store = tmp_path / "replay-store.jsonl"
    kept = replay_trace(trace_path, store_path=store, workers=1)
    assert store.exists()
    again = replay_trace(trace_path, store_path=store, workers=1)  # resume: no rerun
    assert matrix_digest(kept) == matrix_digest(again)


# -- 429 Retry-After derivation (PR 8 regression) ----------------------------
#
# The old turbo path answered a constant 1 second regardless of backlog
# (runner.rate is None short-circuited the sim->wall conversion), and a
# pathological infinite-patience bound overflowed math.ceil into a 500
# on the 429 path.  These pin the fixed derivation.


def test_turbo_429_over_socket_saturates_retry_after():
    async def go():
        server = LiveServer(
            config={"n_sites": 1, "queue_slots": 1, "queue_limit": 1, "rate": None}
        )
        await server.start()
        # Freeze the kernel: once the run loop is up, stop it and wait
        # for it to park, so offers pile up at a frozen sim instant and
        # the third POST bounces deterministically.
        while not server.runner._running:
            await asyncio.sleep(0.01)
        server.runner.stop()
        while server.runner._running:
            await asyncio.sleep(0.01)
        # Drop the startup drain measurement: this pins the cold-start
        # path where turbo has no sim->wall mapping yet.
        server.runner.sim_stepped = 0.0
        server.runner.stepping_wall = 0.0
        try:
            args = (server.host, server.port)
            assert (await request(*args, "POST", "/sessions", _session_body())).status == 202
            assert (await request(*args, "POST", "/sessions", _session_body())).status == 202
            third = await request(*args, "POST", "/sessions", _session_body())
            assert third.status == 429
            retry = int(third.headers["retry-after"])
            # Turbo with no measured throughput falls back to the
            # backpressure scalar: a saturated queue advertises the full
            # cap, not the old constant 1.
            assert retry == RETRY_AFTER_CAP
            assert third.json()["retry_after"] == retry
        finally:
            await server.shutdown(grace=0.0)

    asyncio.run(go())


def test_retry_after_wall_converts_at_measured_turbo_throughput():
    server = LiveServer(config={"rate": None})
    server.controller.retry_after = lambda: 40.0
    # 5 sim-seconds drained per wall second, measured.
    server.runner.sim_stepped = 50.0
    server.runner.stepping_wall = 10.0
    assert server._retry_after_wall() == 8
    # A huge bound saturates the cap instead of advertising minutes.
    server.controller.retry_after = lambda: 1e6
    assert server._retry_after_wall() == RETRY_AFTER_CAP


def test_retry_after_wall_survives_infinite_patience_bound():
    import math as _math

    for rate in (2.0, None):
        server = LiveServer(config={"rate": rate})
        server.controller.retry_after = lambda: _math.inf
        retry = server._retry_after_wall()  # must not OverflowError
        assert 1 <= retry <= RETRY_AFTER_CAP
