"""Trace capture and load: atomicity, validation, campaign lifting."""

import json

import pytest

from repro.errors import LiveError
from repro.fleet.spec import ScenarioSpec
from repro.live.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    load_trace,
    spec_fields,
    spec_from_fields,
    trace_campaign,
)
from repro.load import RecordedArrivals


def _spec(name, **kw):
    return ScenarioSpec(name=name, sim="building", participants=1, **kw)


def _record(path, n=3, config=None):
    rec = TraceRecorder(path, config or {"n_sites": 2, "seed": 7})
    for i in range(n):
        rec.record_arrival(
            _spec(f"s{i}", seed=i), sim=float(i), wall=100.0 + i, cls="batch", outcome="queued"
        )
    return rec


def test_spec_fields_roundtrip_exactly():
    spec = _spec("a", seed=9, duration=3.0, sim_args={"grid": 16})
    doc = json.loads(json.dumps(spec_fields(spec)))
    again = spec_from_fields(doc)
    assert again == spec
    assert again.steps == spec.steps  # explicit, not re-derived
    with pytest.raises(LiveError, match="unknown fields"):
        spec_from_fields({**doc, "bogus": 1})
    with pytest.raises(LiveError, match="incomplete"):
        spec_from_fields({})  # no name: the spec cannot be rebuilt


def test_recorder_writes_header_immediately_and_appends(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder(path, {"seed": 1})
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    head = json.loads(lines[0])
    assert head["kind"] == "header" and head["schema"] == TRACE_SCHEMA
    rec.record_arrival(_spec("a"), sim=0.5, wall=1.0, cls="interactive", outcome="queued")
    rec.record_arrival(_spec("b"), sim=1.5, wall=2.0, cls="batch", outcome="rejected")
    rec.record_event("admit", sim=0.6, wall=1.1, name="a", site=0)
    rec.close(sim=9.0, wall=3.0)
    rec.close(sim=99.0, wall=9.0)  # idempotent: second call is a no-op
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [r["kind"] for r in records]
    assert kinds == ["header", "arrival", "arrival", "event", "end"]
    assert [r["index"] for r in records if r["kind"] == "arrival"] == [0, 1]
    assert records[-1]["sim"] == 9.0
    with pytest.raises(LiveError, match="already closed"):
        rec.record_event("late", sim=10.0, wall=4.0)


def test_recorder_rejects_bad_outcome(tmp_path):
    rec = TraceRecorder(tmp_path / "t.jsonl", {})
    with pytest.raises(LiveError, match="queued|rejected"):
        rec.record_arrival(_spec("a"), sim=0.0, wall=0.0, cls="batch", outcome="lost")


def test_load_roundtrip_and_arrival_process(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = _record(path, n=3)
    rec.close(sim=12.0, wall=200.0)
    trace = load_trace(path)
    assert trace.sealed and trace.config["n_sites"] == 2
    assert [s.name for _, s in trace.entries()] == ["s0", "s1", "s2"]
    assert trace.horizon == 12.0
    proc = trace.arrival_process()
    assert isinstance(proc, RecordedArrivals)
    assert list(proc.times()) == [0.0, 1.0, 2.0]


def test_unsealed_trace_horizon_hugs_the_last_arrival(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path, n=2)  # killed server: no end record
    trace = load_trace(path)
    assert not trace.sealed
    assert trace.horizon == pytest.approx(1.0, abs=1e-6)


def test_torn_trailing_line_is_dropped(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path, n=2)
    with path.open("a") as fh:
        fh.write('{"kind": "arrival", "index": 2, "tor')  # kill -9 mid-write
    trace = load_trace(path)
    assert trace.dropped_lines == 1
    assert len(trace.arrivals) == 2


def test_corrupt_interior_line_is_refused(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path, n=2)
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-5]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(LiveError, match="non-trailing"):
        load_trace(path)


def test_load_rejects_structural_damage(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(LiveError, match="empty trace"):
        load_trace(empty)
    with pytest.raises(LiveError, match="cannot read"):
        load_trace(tmp_path / "missing.jsonl")

    noheader = tmp_path / "noheader.jsonl"
    noheader.write_text('{"kind": "arrival", "index": 0}\n')
    with pytest.raises(LiveError, match="header"):
        load_trace(noheader)

    path = tmp_path / "t.jsonl"
    rec = _record(path, n=2)
    records = [json.loads(line) for line in path.read_text().splitlines()]

    reordered = records[:1] + records[1:][::-1]
    path.write_text("\n".join(json.dumps(r) for r in reordered) + "\n")
    with pytest.raises(LiveError, match="out of order"):
        load_trace(path)

    rec._records[1]["kind"] = "surprise"
    rec._rewrite()
    with pytest.raises(LiveError, match="unknown trace record kind"):
        load_trace(path)

    rec._records[1]["kind"] = "arrival"
    rec._records.append({"kind": "end", "sim": 5.0, "wall": 5.0, "arrivals": 2})
    rec._records.append({"kind": "end", "sim": 6.0, "wall": 6.0, "arrivals": 2})
    rec._rewrite()
    with pytest.raises(LiveError, match="duplicate end"):
        load_trace(path)


def test_empty_trace_has_no_replay_horizon(tmp_path):
    path = tmp_path / "t.jsonl"
    TraceRecorder(path, {}).close(sim=0.0, wall=0.0)
    with pytest.raises(LiveError, match="no arrivals"):
        trace_campaign(path)


def test_trace_campaign_lifts_config_and_horizon(tmp_path):
    path = tmp_path / "incident.jsonl"
    rec = _record(
        path,
        n=3,
        config={
            "n_sites": 4,
            "queue_slots": 1,
            "queue_limit": 3,
            "registry_shards": 2,
            "broker_port": 7100,
            "placement": "p2c",
            "autoscale": None,
            "rate": 5.0,
            "seed": 42,
        },
    )
    rec.close(sim=30.0, wall=300.0)
    spec = trace_campaign(path)
    assert spec.name == "replay-incident"
    assert spec.seed == 42
    assert spec.base["n_sites"] == 4 and spec.base["horizon"] == 30.0
    assert "rate" not in spec.base  # pacing is a live-only knob
    assert spec.n_cells == 1
    (arrival,) = spec.arrivals
    assert arrival.name == "trace:incident"
    assert arrival.params == {"kind": "trace-file", "path": str(path)}
    (policy,) = spec.policies
    assert policy.name == "p2c" and policy.params["placement"] == "p2c"
    assert trace_campaign(path, name="custom").name == "custom"
