"""Access Grid tests: venues, media, vnc sharing, VizServer sessions."""

import numpy as np
import pytest

from repro.accessgrid import AGNode, VenueServer, VncClient, VncServer
from repro.accessgrid.media import MediaProducer
from repro.accessgrid.vizserver import VizServerClient, VizServerSession
from repro.des import Environment
from repro.errors import NetworkError, VenueError
from repro.net import Firewall, Network
from repro.viz import Camera, Geometry


def ag_world(n_sites=3, with_cave=False):
    env = Environment()
    net = Network(env)
    net.add_host("venue-server")
    hosts = []
    for i in range(n_sites):
        name = f"site{i}"
        net.add_host(name)
        net.add_link("venue-server", name, latency=0.01 + 0.005 * i,
                     bandwidth=10e6 / 8)
        hosts.append(name)
    if with_cave:
        net.add_host("cave", multicast=False, firewall=Firewall.closed())
        net.add_link("venue-server", "cave", latency=0.03, bandwidth=10e6 / 8)
    server = VenueServer(net, net.host("venue-server"))
    return env, net, server, hosts


def test_venue_enter_exit_and_occupancy():
    env, net, server, hosts = ag_world(2)
    venue = server.create_venue("SC03-showfloor")
    nodes = [AGNode(net.host(h)) for h in hosts]
    info = nodes[0].enter(venue)
    nodes[1].enter(venue)
    assert info["video"] == "SC03-showfloor/video"
    assert venue.occupants() == ["site0", "site1"]
    nodes[0].leave()
    assert venue.occupants() == ["site1"]
    with pytest.raises(VenueError):
        nodes[0].leave()


def test_duplicate_venue_and_double_enter_rejected():
    env, net, server, hosts = ag_world(1)
    venue = server.create_venue("v")
    with pytest.raises(VenueError):
        server.create_venue("v")
    node = AGNode(net.host("site0"))
    node.enter(venue)
    with pytest.raises(VenueError):
        node.enter(venue)


def test_media_flows_to_all_native_multicast_sites():
    env, net, server, hosts = ag_world(3)
    venue = server.create_venue("v")
    nodes = [AGNode(net.host(h)) for h in hosts]
    for n in nodes:
        n.enter(venue)
    producer = MediaProducer(net.host("site0"), venue.video, fps=10,
                             frame_bytes=4000)
    producer.start()
    env.run(until=2.0)
    producer.stop()
    # Sender does not hear itself; the other two sites do.
    assert nodes[0].video_receiver.frames_received == 0
    for n in nodes[1:]:
        assert n.video_receiver.frames_received >= 15
        assert n.video_receiver.gaps == 0
        assert n.video_receiver.latency.mean < 0.1


def test_firewalled_cave_needs_bridge():
    env, net, server, hosts = ag_world(2, with_cave=True)
    venue = server.create_venue("v")
    cave = AGNode(net.host("cave"))
    with pytest.raises(NetworkError, match="bridge"):
        cave.enter(venue)
    # With a bridge on the venue server it works.
    cave.enter(venue, bridge_host=net.host("venue-server"))
    assert cave.bridged
    sender = AGNode(net.host("site0"))
    sender.enter(venue)
    producer = MediaProducer(net.host("site0"), venue.video, fps=10,
                             frame_bytes=2000)
    producer.start()
    env.run(until=1.5)
    producer.stop()
    assert cave.video_receiver.frames_received >= 10


def test_app_session_startup_info():
    env, net, server, hosts = ag_world(2)
    venue = server.create_venue("v")
    nodes = [AGNode(net.host(h)) for h in hosts]
    for n in nodes:
        n.enter(venue)
    session = venue.create_app_session(
        "covise", {"map": "building-climate", "controller": "site0"}
    )
    nodes[0].join_app(session.session_id)
    nodes[1].join_app(session.session_id)
    assert session.participants == ["site0", "site1"]
    assert session.startup_info["map"] == "building-climate"
    with pytest.raises(VenueError):
        venue.join_app_session("nope", "site0")
    nodes[1].leave()
    assert session.participants == ["site0"]


def test_vnc_shared_steering_panel():
    env, net, server, hosts = ag_world(2)
    vnc = VncServer(net.host("site0"), 5900, width=64, height=48)
    slider = {"g": 1.0}

    def on_input(event):
        if event.get("widget") == "g-slider":
            slider["g"] = event["value"]

    vnc.on_input = on_input
    vnc.start()
    vnc.fb.color[:16] = 200  # something on screen
    client = VncClient(net.host("site1"), "site0", 5900)
    result = {}

    def remote_user():
        yield from client.connect()
        fb = yield from client.request_update()
        result["first"] = fb.color.copy()
        ok = yield from client.send_input(
            {"widget": "g-slider", "value": 2.5}
        )
        result["input_ok"] = ok
        vnc.fb.color[16:32] = 90  # the GUI reacts
        fb = yield from client.request_update()
        result["second"] = fb.color.copy()

    env.process(remote_user())
    env.run(until=5.0)
    np.testing.assert_array_equal(result["first"][:16], 200)
    assert result["input_ok"] and slider["g"] == 2.5
    np.testing.assert_array_equal(result["second"][16:32], 90)
    assert vnc.updates_served == 2 and vnc.input_events == 1


def test_vnc_delta_updates_cheap_when_static():
    env, net, server, hosts = ag_world(2)
    vnc = VncServer(net.host("site0"), 5900, width=160, height=120)
    vnc.start()
    rng = np.random.default_rng(0)
    vnc.fb.color[:] = rng.integers(0, 256, vnc.fb.color.shape, dtype=np.uint8)
    client = VncClient(net.host("site1"), "site0", 5900)
    sizes = []

    def remote_user():
        yield from client.connect()
        yield from client.request_update()
        sizes.append(vnc.bytes_served)
        yield from client.request_update()  # nothing changed
        sizes.append(vnc.bytes_served - sizes[0])

    env.process(remote_user())
    env.run(until=5.0)
    assert sizes[1] < sizes[0] / 50  # delta of a static screen ~ free


def test_vizserver_shared_session_control_token():
    env, net, server, hosts = ag_world(3)
    session = VizServerSession(net.host("venue-server"), 7010, width=64,
                               height=48)
    session.scene.add_node(
        "cloud", Geometry("points", np.random.default_rng(1).random((200, 3)))
    )
    session.start()
    a = VizServerClient(net.host("site0"), "venue-server", 7010, "site0")
    b = VizServerClient(net.host("site1"), "venue-server", 7010, "site1")
    result = {}

    def scenario():
        yield from a.join()
        yield from b.join()
        result["a_control"] = a.has_control
        result["b_control"] = b.has_control
        # b cannot steer the camera...
        ok = yield from b.move_camera(Camera(eye=np.array([0.0, -5.0, 0.0])))
        result["b_move_denied"] = not ok
        # ...until a passes control.
        ok = yield from a.pass_control("site1")
        result["passed"] = ok
        ok = yield from b.move_camera(Camera(eye=np.array([0.0, -5.0, 0.0])))
        result["b_move_ok"] = ok
        # Stream some frames to everyone.
        for _ in range(3):
            yield from session.render_and_stream()
        yield env.timeout(0.5)
        result["a_frames"] = a.drain_frames()
        result["b_frames"] = b.drain_frames()

    env.process(scenario())
    env.run(until=10.0)
    assert result["a_control"] and not result["b_control"]
    assert result["b_move_denied"] and result["passed"] and result["b_move_ok"]
    assert result["a_frames"] == 3 and result["b_frames"] == 3
    assert session.bytes_streamed > 0


def test_vizserver_traffic_independent_of_geometry():
    """The VizServer economics: bitmap traffic does not grow with the
    dataset; streamed-geometry cost would."""
    env, net, server, hosts = ag_world(1)
    session = VizServerSession(net.host("venue-server"), 7010, width=64,
                               height=48)
    session.start()
    client = VizServerClient(net.host("site0"), "venue-server", 7010, "site0")
    rng = np.random.default_rng(2)
    bytes_per_size = {}

    def scenario():
        yield from client.join()
        for npts in (100, 10_000):
            geom = Geometry("points", rng.random((npts, 3)))
            if "cloud" in session.scene._index:
                session.scene.set_geometry("cloud", geom)
            else:
                session.scene.add_node("cloud", geom)
            before = session.bytes_streamed
            yield from session.render_and_stream()
            bytes_per_size[npts] = session.bytes_streamed - before

    env.process(scenario())
    env.run(until=10.0)
    # 100x more geometry, but frame bytes stay the same order of magnitude.
    assert bytes_per_size[10_000] < 5 * bytes_per_size[100]
