"""Steering core tests: params, control protocol, instrumented app, client."""

import numpy as np
import pytest

from repro.errors import ProtocolError, SteeringError
from repro.net import SyncPipe
from repro.sims import LatticeBoltzmann3D
from repro.steering import (
    Ack,
    GetStatus,
    ParameterDef,
    ParameterRegistry,
    SampleMsg,
    SetParam,
    StatusReport,
    SteeredApplication,
    SteeringClient,
    decode_message,
    encode_message,
    migrate_simulation,
)
from repro.wire import decode, encode


# -- parameter registry ---------------------------------------------------------


def test_parameter_def_validation():
    with pytest.raises(SteeringError):
        ParameterDef("x", kind="writable")
    with pytest.raises(SteeringError):
        ParameterDef("x", minimum=2.0, maximum=1.0)
    d = ParameterDef("x", minimum=0.0, maximum=1.0)
    d.validate(0.5)
    with pytest.raises(SteeringError):
        d.validate(2.0)
    with pytest.raises(SteeringError):
        d.validate(-0.1)


def test_registry_steered_and_monitored():
    store = {"g": 1.0}
    reg = ParameterRegistry()
    reg.register(
        ParameterDef("g"), getter=lambda: store["g"],
        setter=lambda v: store.__setitem__("g", v),
    )
    reg.register(ParameterDef("energy", kind="monitored"), getter=lambda: 42.0)
    assert reg.names() == ["energy", "g"]
    assert reg.names("steered") == ["g"]
    reg.set("g", 2.0)
    assert store["g"] == 2.0
    with pytest.raises(SteeringError):
        reg.set("energy", 1.0)  # read-only
    with pytest.raises(SteeringError):
        reg.set("missing", 1.0)
    assert reg.snapshot() == {"energy": 42.0, "g": 2.0}


def test_registry_requires_setter_for_steered():
    reg = ParameterRegistry()
    with pytest.raises(SteeringError):
        reg.register(ParameterDef("g"), getter=lambda: 0)


def test_registry_duplicate_rejected():
    reg = ParameterRegistry()
    reg.register(ParameterDef("m", kind="monitored"), getter=lambda: 0)
    with pytest.raises(SteeringError):
        reg.register(ParameterDef("m", kind="monitored"), getter=lambda: 0)


# -- control message wire form ------------------------------------------------------


@pytest.mark.parametrize(
    "msg",
    [
        SetParam(name="g", value=2.5, seq=3, sender="me"),
        Ack(seq=3, ok=True, command="SetParam", result=2.5),
        StatusReport(step=10, time=1.0, observables={"demix": 0.1},
                     parameters={"g": 2.5}),
        GetStatus(seq=1),
    ],
)
def test_message_roundtrip_through_codec(msg):
    wire = encode(encode_message(msg))  # full binary round trip
    assert decode_message(decode(wire)) == msg


def test_sample_msg_roundtrip_with_array():
    msg = SampleMsg(seq=1, step=5, data={"field": np.arange(6, dtype=np.float32)})
    out = decode_message(decode(encode(encode_message(msg))))
    np.testing.assert_array_equal(out.data["field"], msg.data["field"])


def test_decode_message_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_message({"no_kind": 1})
    with pytest.raises(ProtocolError):
        decode_message({"_kind": "Nonsense"})
    with pytest.raises(ProtocolError):
        decode_message({"_kind": "SetParam", "bogus_field": 1})
    with pytest.raises(ProtocolError):
        encode_message(object())


# -- instrumented application ------------------------------------------------------


def make_app(**kw):
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5, seed=1)
    return SteeredApplication(sim, name="lb3d", **kw)


def test_app_registers_parameters_from_sim():
    app = make_app()
    assert "g" in app.registry.names("steered")
    assert "tau" in app.registry.names("steered")
    assert "demix" in app.registry.names("monitored")


def test_set_param_roundtrip_via_client():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b, name="john")
    seq = client.set_parameter("g", 2.0)
    app.process_control()
    client.drain()
    ack = client.ack_for(seq)
    assert ack is not None and ack.ok and ack.result == 2.0
    assert app.sim.g == 2.0


def test_bad_set_param_reports_error_not_crash():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)
    seq = client.set_parameter("g", 99.0)  # outside stable range
    app.process_control()
    client.drain()
    ack = client.ack_for(seq)
    assert ack is not None and not ack.ok and "stable range" in ack.error
    assert app.sim.g == 0.5  # unchanged


def test_pause_resume_stop_lifecycle():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)

    client.pause()
    app.step_once()
    assert app.paused and app.sim.step_count == 0

    client.resume()
    app.step_once()
    assert not app.paused and app.sim.step_count == 1

    client.stop()
    assert app.step_once() is False
    assert app.sim.step_count == 1


def test_status_report_contents():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)
    app.run(3)
    client.request_status()
    app.process_control()
    client.drain()
    st = client.last_status
    assert st is not None and st.step == 3
    assert st.parameters["g"] == 0.5
    assert "demix" in st.observables


def test_samples_emitted_at_interval():
    app = make_app(sample_interval=5)
    pipe = SyncPipe()
    app.attach_sample_sink(pipe.a)
    client = SteeringClient(pipe.b)
    app.run(12)
    client.drain()
    assert [s.step for s in client.samples] == [5, 10]
    assert client.latest_sample().data["order_parameter"].shape == (6, 6, 6)


def test_checkpoint_command_stores_state():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)
    app.run(4)
    seq = client.request_checkpoint()
    app.process_control()
    client.drain()
    ack = client.ack_for(seq)
    assert ack.ok
    assert ack.result in app.checkpoints
    assert app.checkpoints[ack.result]["step_count"] == 4


def test_app_never_blocks_without_client_traffic():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    # No client ever sends anything; the app must happily run.
    assert app.run(10) == 10


def test_two_control_links_both_served():
    app = make_app()
    p1, p2 = SyncPipe(), SyncPipe()
    app.attach_control(p1.a)
    app.attach_control(p2.a)
    c1 = SteeringClient(p1.b, name="a")
    c2 = SteeringClient(p2.b, name="b")
    c1.set_parameter("g", 1.0)
    c2.set_parameter("tau", 0.9)
    app.process_control()
    assert app.sim.g == 1.0 and app.sim.tau == 0.9


def test_sample_interval_validation():
    with pytest.raises(SteeringError):
        make_app(sample_interval=0)


def test_param_def_override_applies_bounds():
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5)
    app = SteeredApplication(
        sim, param_defs=[ParameterDef("g", minimum=0.0, maximum=3.0)]
    )
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)
    seq = client.set_parameter("g", 3.5)  # within sim's stable range but
    app.process_control()                 # outside the published bound
    client.drain()
    assert not client.ack_for(seq).ok


# -- migration -----------------------------------------------------------------


def test_migration_preserves_state_and_clients():
    app = make_app()
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b)
    app.run(6)
    field_before = app.sim.order_parameter()

    new_sim = migrate_simulation(
        app, lambda: LatticeBoltzmann3D(shape=(6, 6, 6), g=0.0, seed=42)
    )
    assert app.sim is new_sim
    np.testing.assert_array_equal(app.sim.order_parameter(), field_before)
    assert app.sim.step_count == 6

    # Clients keep steering the migrated simulation without re-attaching.
    seq = client.set_parameter("g", 2.0)
    app.process_control()
    client.drain()
    assert client.ack_for(seq).ok
    assert new_sim.g == 2.0


def test_migration_incompatible_factory_rejected():
    from repro.sims import CrowdSim

    app = make_app()
    app.run(2)
    with pytest.raises(SteeringError):
        migrate_simulation(app, lambda: CrowdSim(n_agents=5))
    # Original simulation still in place.
    assert isinstance(app.sim, LatticeBoltzmann3D)
