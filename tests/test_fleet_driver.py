"""FleetDriver integration: small fleets through the full fabric."""

import pytest

from repro.errors import ReproError
from repro.fleet import FleetDriver, FleetReport, ScenarioSpec, fleet_of


def _small_fleet(n=3, **overrides):
    overrides.setdefault("duration", 2.0)
    overrides.setdefault("cadence", 0.5)
    return fleet_of(n, stagger=0.25, **overrides)


def test_fleet_runs_every_session_to_completion():
    driver = FleetDriver(_small_fleet(3), n_sites=2)
    report = driver.run()
    assert report.n_sessions == 3
    assert report.completed == 3
    assert report.failed == 0
    assert report.timeouts == 0
    # Every session issued its steering ops plus observer status polls.
    assert report.ops >= 3 * 4
    assert report.steer_p50 > 0
    assert report.makespan < driver.deadline()


def test_registry_holds_steering_and_viz_handles_per_session():
    driver = FleetDriver(_small_fleet(3), n_sites=2)
    driver.run()
    # Federation: every site front-end sees the same global entries.
    for site in driver.sites:
        entries = site.registry.find({})
        assert len(entries) == 2 * 3
    by_type = {}
    for e in driver.sites[0].registry.find({}):
        by_type.setdefault(e["metadata"]["type"], []).append(e)
    assert len(by_type["steering"]) == 3
    assert len(by_type["viz-steering"]) == 3


def test_sessions_steer_distinct_applications():
    specs = _small_fleet(2, participants=1)
    driver = FleetDriver(specs, n_sites=2)
    report = driver.run()
    assert report.completed == 2
    # Per-session telemetry exists under each spec name.
    assert set(driver.telemetry.sessions) == {s.name for s in specs}
    for tel in driver.telemetry.sessions.values():
        assert tel.ops == specs[0].n_ops
        assert tel.admitted_at is not None
        assert tel.finished_at > tel.admitted_at


def test_profile_placement_uses_matching_link():
    # A transatlantic session must see >= 2*45ms per steer round trip;
    # a campus session must be far below that.
    specs = [
        ScenarioSpec(name="slow", sim="building", profile="transatlantic",
                     duration=2.0, cadence=0.5, participants=1),
        ScenarioSpec(name="fast", sim="building", profile="campus",
                     duration=2.0, cadence=0.5, participants=1),
    ]
    driver = FleetDriver(specs, n_sites=1)
    report = driver.run()
    assert report.completed == 2
    slow = driver.telemetry.sessions["slow"].steer_latency
    fast = driver.telemetry.sessions["fast"].steer_latency
    assert slow.percentile(50) >= 0.09
    assert fast.percentile(50) <= 0.05


def test_unusual_profile_gets_dedicated_client_host():
    specs = [ScenarioSpec(name="dsl-user", profile="dsl",
                          duration=1.0, cadence=0.5, participants=1)]
    driver = FleetDriver(specs, n_sites=1)
    report = driver.run()
    assert report.completed == 1
    assert "obs-dsl-0" in driver.net.hosts


def test_driver_rejects_bad_fleets():
    with pytest.raises(ReproError):
        FleetDriver([])
    dup = [ScenarioSpec(name="same"), ScenarioSpec(name="same")]
    with pytest.raises(ReproError):
        FleetDriver(dup)


def test_report_round_trips_to_dict():
    driver = FleetDriver(_small_fleet(2, participants=1), n_sites=1)
    report = driver.run(wall_seconds=1.25)
    assert isinstance(report, FleetReport)
    d = report.to_dict()
    assert d["sessions"] == 2 and d["completed"] == 2
    assert d["wall_seconds"] == 1.25
    assert d["steer_p50_ms"] > 0
    text = report.render(per_session=True)
    assert "2/2 sessions completed" in text
    for spec_row in report.per_session:
        assert spec_row.name in text
