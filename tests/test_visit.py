"""VISIT toolkit tests: handshake, tagged transfer, timeouts, vbroker."""

import numpy as np
import pytest

from repro.des import Environment
from repro.errors import ProtocolError
from repro.net import Network
from repro.visit import (
    DataSend,
    VBroker,
    VisitClient,
    VisitServer,
    decode_visit,
    encode_visit,
)

TAG_PARTICLES = 1
TAG_PARAMS = 2


def grid(extra_hosts=()):
    env = Environment()
    net = Network(env)
    net.add_host("sim.juelich.de")
    net.add_host("viz.juelich.de")
    net.add_link("sim.juelich.de", "viz.juelich.de", latency=0.002, bandwidth=100e6 / 8)
    for h in extra_hosts:
        net.add_host(h)
        net.add_link("sim.juelich.de", h, latency=0.01, bandwidth=10e6 / 8)
    return env, net


def test_visit_message_roundtrip():
    msg = DataSend(tag=7, payload={"x": np.arange(4, dtype=np.float64)})
    out = decode_visit(encode_visit(msg, ">"))
    assert out.tag == 7 and out.seq == 0
    np.testing.assert_array_equal(out.payload["x"], np.arange(4, dtype=np.float64))
    assert "struct" in out.description


def test_visit_decode_garbage():
    from repro.wire import encode

    with pytest.raises(ProtocolError):
        decode_visit(encode({"no": "kind"}))
    with pytest.raises(ProtocolError):
        decode_visit(encode({"_kind": "Bogus"}))
    with pytest.raises(ProtocolError):
        encode_visit(object())


def test_connect_and_send_receive():
    env, net = grid()
    server = VisitServer(net.host("viz.juelich.de"), 5000, password="pw")
    server.provide(TAG_PARAMS, lambda: {"beam_charge": 2.0})
    server.start()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw")
    result = {}

    def sim():
        ok = yield from client.connect(timeout=1.0)
        result["connected"] = ok
        ok = yield from client.send(TAG_PARTICLES, np.zeros(100, dtype=np.float32))
        result["sent"] = ok
        ok, params = yield from client.request(TAG_PARAMS, timeout=1.0)
        result["params"] = (ok, params)
        client.close()

    env.process(sim())
    env.run()
    assert result["connected"] and result["sent"]
    assert result["params"] == (True, {"beam_charge": 2.0})
    assert len(server.received[TAG_PARTICLES]) == 1
    assert server.clients_served == 1


def test_wrong_password_rejected():
    env, net = grid()
    server = VisitServer(net.host("viz.juelich.de"), 5000, password="secret")
    server.start()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "wrong")
    result = {}

    def sim():
        ok = yield from client.connect(timeout=1.0)
        result["connected"] = ok

    env.process(sim())
    env.run()
    assert result["connected"] is False
    assert server.auth_failures == 1
    assert "password" in client.last_error


def test_connect_to_absent_server_fails_within_timeout():
    env, net = grid()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5999, "pw")
    result = {}

    def sim():
        ok = yield from client.connect(timeout=0.5)
        result["connected"] = (ok, env.now)

    env.process(sim())
    env.run()
    ok, t = result["connected"]
    assert not ok and t <= 0.5 + 1e-9


def test_request_timeout_on_slow_server_is_bounded():
    """The core VISIT guarantee: the op fails at the user timeout."""
    env, net = grid()
    server = VisitServer(
        net.host("viz.juelich.de"), 5000, password="pw", response_delay=10.0
    )
    server.provide(TAG_PARAMS, lambda: 1)
    server.start()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw")
    result = {}

    def sim():
        yield from client.connect(timeout=1.0)
        t0 = env.now
        ok, _ = yield from client.request(TAG_PARAMS, timeout=0.25)
        result["req"] = (ok, env.now - t0)

    env.process(sim())
    env.run(until=5.0)
    ok, elapsed = result["req"]
    assert not ok
    assert elapsed == pytest.approx(0.25, abs=1e-6)
    assert "timed out" in client.last_error


def test_dead_server_does_not_stall_simulation():
    """Kill the visualization mid-run; the simulation keeps stepping and
    every VISIT op stays bounded — the design goal of section 3.2."""
    env, net = grid()
    server = VisitServer(net.host("viz.juelich.de"), 5000, password="pw")
    server.provide(TAG_PARAMS, lambda: 0.5)
    server.start()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw")
    steps_done = []

    def sim():
        yield from client.connect(timeout=1.0)
        for step in range(20):
            if step == 5:
                server.kill()
            yield env.timeout(0.01)  # the compute step
            yield from client.send(TAG_PARTICLES, np.zeros(10))
            ok, _ = yield from client.request(TAG_PARAMS, timeout=0.05)
            steps_done.append((step, ok, env.now))

    env.process(sim())
    env.run()
    assert len(steps_done) == 20  # every step completed
    # After the kill, requests fail but cost at most the 0.05 timeout.
    post_kill = [s for s in steps_done if s[0] >= 5]
    assert all(not ok for _, ok, _ in post_kill)
    total_time = steps_done[-1][2]
    assert total_time <= 20 * (0.01 + 0.05) + 1.0


def test_stale_response_skipped_after_timeout():
    """A response arriving after its request timed out must not be
    mistaken for the answer to the next request."""
    env, net = grid()
    server = VisitServer(net.host("viz.juelich.de"), 5000, password="pw")
    server.provide(TAG_PARAMS, lambda: "fresh")
    server.start()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw")
    # First request: server is slow; second: fast.
    result = {}

    def sim():
        yield from client.connect(timeout=1.0)
        server.response_delay = 0.2
        ok1, _ = yield from client.request(TAG_PARAMS, timeout=0.05)
        server.response_delay = 0.0
        ok2, val2 = yield from client.request(TAG_PARAMS, timeout=1.0)
        result["r"] = (ok1, ok2, val2)

    env.process(sim())
    env.run()
    ok1, ok2, val2 = result["r"]
    assert not ok1 and ok2 and val2 == "fresh"
    assert client.stats["requests_ok"] == 1


def test_server_side_precision_conversion():
    """float64 arrays from the simulation arrive float32 at the renderer
    without the simulation doing any conversion."""
    env, net = grid()
    server = VisitServer(
        net.host("viz.juelich.de"), 5000, password="pw", convert_arrays_to="float32"
    )
    server.start()
    client = VisitClient(
        net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw", byteorder=">"
    )

    def sim():
        yield from client.connect(timeout=1.0)
        yield from client.send(TAG_PARTICLES, {"pos": np.linspace(0, 1, 8)})

    env.process(sim())
    env.run()
    got = server.latest(TAG_PARTICLES)
    assert got["pos"].dtype == np.float32
    np.testing.assert_allclose(got["pos"], np.linspace(0, 1, 8), rtol=1e-6)


def test_send_before_connect_is_cheap_noop():
    env, net = grid()
    client = VisitClient(net.host("sim.juelich.de"), "viz.juelich.de", 5000, "pw")
    result = {}

    def sim():
        t0 = env.now
        ok = yield from client.send(TAG_PARTICLES, np.zeros(1000))
        result["send"] = (ok, env.now - t0)

    env.process(sim())
    env.run()
    assert result["send"] == (False, 0.0)
    assert client.stats["sends_dropped"] == 1


def test_vbroker_fanout_and_master_only_steering():
    env, net = grid(extra_hosts=("viz-a", "viz-b", "viz-c", "broker"))
    servers = {}
    for name in ("viz-a", "viz-b", "viz-c"):
        s = VisitServer(net.host(name), 6000, password="pw", name=name)
        s.provide(TAG_PARAMS, lambda n=name: f"params-from-{n}")
        s.start()
        servers[name] = s
    broker = VBroker(net.host("broker"), 7000, password="pw")
    broker.start()
    client = VisitClient(net.host("sim.juelich.de"), "broker", 7000, "pw")
    result = {}

    def scenario():
        for name in ("viz-a", "viz-b", "viz-c"):
            yield from broker.add_visualization(name, name, 6000)
        yield from client.connect(timeout=1.0)
        yield from client.send(TAG_PARTICLES, np.arange(5, dtype=np.int32))
        ok, val = yield from client.request(TAG_PARAMS, timeout=2.0)
        result["first"] = (ok, val)
        broker.pass_master("viz-b")
        ok, val = yield from client.request(TAG_PARAMS, timeout=2.0)
        result["second"] = (ok, val)

    env.process(scenario())
    env.run()
    # Fan-out: all three visualizations saw the same particle data.
    for name, s in servers.items():
        assert len(s.received[TAG_PARTICLES]) == 1, name
        np.testing.assert_array_equal(
            s.received[TAG_PARTICLES][0], np.arange(5, dtype=np.int32)
        )
    # Receive-requests reach only the master.
    assert result["first"] == (True, "params-from-viz-a")
    assert result["second"] == (True, "params-from-viz-b")
    assert broker.master == "viz-b"


def test_vbroker_no_participants_rejects_requests():
    env, net = grid(extra_hosts=("broker",))
    broker = VBroker(net.host("broker"), 7000, password="pw")
    broker.start()
    client = VisitClient(net.host("sim.juelich.de"), "broker", 7000, "pw")
    result = {}

    def scenario():
        yield from client.connect(timeout=1.0)
        ok, _ = yield from client.request(TAG_PARAMS, timeout=1.0)
        result["ok"] = ok

    env.process(scenario())
    env.run()
    assert result["ok"] is False


def test_vbroker_master_failover_on_remove():
    env, net = grid(extra_hosts=("viz-a", "viz-b", "broker"))
    for name in ("viz-a", "viz-b"):
        s = VisitServer(net.host(name), 6000, password="pw", name=name)
        s.provide(TAG_PARAMS, lambda n=name: n)
        s.start()
    broker = VBroker(net.host("broker"), 7000, password="pw")
    broker.start()
    done = {}

    def scenario():
        yield from broker.add_visualization("viz-a", "viz-a", 6000)
        yield from broker.add_visualization("viz-b", "viz-b", 6000)
        assert broker.master == "viz-a"
        broker.remove_visualization("viz-a")
        done["master"] = broker.master

    env.process(scenario())
    env.run()
    assert done["master"] == "viz-b"
