"""Campaign determinism: cells are pure functions of their CellSpec.

The properties the experiment engine stands on:

* the same campaign seed produces byte-identical cell records and a
  byte-identical MatrixReport whether cells run inline or across N
  worker processes (wall-clock vitals under ``perf`` excepted);
* resume after a kill re-executes exactly the incomplete cells, and the
  resumed store equals the uninterrupted one.
"""

import json

import pytest

from repro.campaign import (
    AxisPoint,
    CampaignRunner,
    CampaignSpec,
    MatrixReport,
    ResultStore,
    run_cell,
)
from repro.campaign.cli import main as cli_main


def tiny_campaign(seed=5):
    """4 cheap cells crossing arrivals x faults on a 2-site fabric."""
    return CampaignSpec(
        name="tiny",
        seed=seed,
        base={"n_sites": 2, "queue_slots": 2, "queue_limit": 8,
              "horizon": 3.0, "until": 40.0},
        scenarios=[AxisPoint("paper", {
            "suite": "paper", "duration": 1.0, "cadence": 0.5,
            "participants": 1,
        })],
        arrivals=[
            AxisPoint("trace", {"kind": "trace",
                                "instants": [0.0, 0.4, 1.1, 2.0]}),
            AxisPoint("poisson", {"kind": "poisson", "rate": 1.5}),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("crash", {"faults": [
                {"kind": "container-crash", "at": 1.2, "site": 0,
                 "duration": 2.0},
            ]}),
        ],
        policies=[AxisPoint("ll", {"placement": "least-loaded"})],
    )


def strip_perf(records):
    """The deterministic portion of cell records, keyed by cell id."""
    return {
        rec["cell_id"]: {k: v for k, v in rec.items() if k != "perf"}
        for rec in records
    }


def dumps(obj):
    return json.dumps(obj, sort_keys=True)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One serial run of the tiny campaign, shared by the tests."""
    store = ResultStore(tmp_path_factory.mktemp("ref") / "ref.jsonl")
    runner = CampaignRunner(tiny_campaign(), store, workers=1)
    matrix = runner.run()
    return store, matrix


def test_cells_execute_and_aggregate(reference):
    store, matrix = reference
    assert len(store) == 4
    assert matrix.complete
    assert matrix.totals.cells == 4
    assert matrix.totals.sessions == sum(
        row["sessions"] for row in matrix.cells
    )
    assert matrix.totals.sessions > 0
    assert matrix.totals.completed > 0
    assert matrix.violations == 0
    # Marginals partition the grid: each fault point covers 2 cells.
    assert matrix.marginals["faults"]["baseline"].cells == 2
    assert matrix.marginals["faults"]["crash"].cells == 2
    # The crash cells actually saw their fault.
    assert matrix.marginals["faults"]["crash"].faults_applied == 2
    assert matrix.pareto()


def test_single_cell_rerun_is_byte_identical(reference):
    store, _ = reference
    cell = tiny_campaign().cells()[2]
    again = run_cell(cell)
    [original] = [r for r in store.cell_records()
                  if r["cell_id"] == cell.cell_id]
    assert dumps(strip_perf([again])) == dumps(strip_perf([original]))


def test_multiprocess_run_matches_serial_byte_for_byte(reference, tmp_path):
    ref_store, ref_matrix = reference
    store = ResultStore(tmp_path / "mp.jsonl")
    runner = CampaignRunner(tiny_campaign(), store, workers=2)
    matrix = runner.run()
    assert len(runner.executed) == 4
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())
    assert matrix.render(per_cell=True) == ref_matrix.render(per_cell=True)


def test_resume_runs_exactly_the_incomplete_cells(reference, tmp_path):
    ref_store, ref_matrix = reference
    ref_lines = ref_store.path.read_text().splitlines()
    path = tmp_path / "killed.jsonl"
    # A killed run: header + 2 completed cells + one torn record.
    path.write_text("\n".join(ref_lines[:3]) + "\n" + ref_lines[3][:25])
    store = ResultStore(path)
    assert store.dropped_lines == 1
    done = set(store.completed_ids())
    assert len(done) == 2
    runner = CampaignRunner(tiny_campaign(), store, workers=1)
    matrix = runner.run()
    # Exactly the two missing cells re-executed, nothing else.
    all_ids = {c.cell_id for c in tiny_campaign().cells()}
    assert set(runner.executed) == all_ids - done
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())
    # A second resume has nothing left to do and changes nothing.
    again = CampaignRunner(tiny_campaign(), store, workers=1)
    matrix2 = again.run()
    assert again.executed == []
    assert dumps(matrix2.to_dict()) == dumps(matrix.to_dict())


def test_resume_refuses_a_different_campaign(reference, tmp_path):
    ref_store, _ = reference
    path = tmp_path / "other.jsonl"
    path.write_text(ref_store.path.read_text())
    from repro.errors import CampaignError
    with pytest.raises(CampaignError, match="refusing to mix"):
        CampaignRunner(tiny_campaign(seed=6), ResultStore(path)).run()


def test_matrix_diff_flags_outcome_drift(reference):
    _, matrix = reference
    same = matrix.diff(matrix)
    assert same["identical"] == 4
    assert not same["changed"] and not same["only_self"]
    # Perturb one cell's outcome and diff again.
    other = MatrixReport(
        campaign=matrix.campaign, seed=matrix.seed,
        expected_cells=matrix.expected_cells,
        cells=[dict(row) for row in matrix.cells],
        totals=matrix.totals, marginals=matrix.marginals,
    )
    other.cells[0] = dict(other.cells[0], completed=0, violations=3)
    drift = matrix.diff(other)
    assert len(drift["changed"]) == 1
    assert set(drift["changed"][0]["delta"]) == {"completed", "violations"}


def test_cli_run_report_diff_round_trip(reference, tmp_path, capsys):
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(json.dumps(tiny_campaign().to_dict()))
    store = tmp_path / "cli.jsonl"
    bench = tmp_path / "BENCH_campaign_tiny.json"
    assert cli_main([
        "run", "--spec", str(spec_path), "--store", str(store),
        "--workers", "1", "--fail-on-violations", "--per-cell",
        "--bench-out", str(bench),
    ]) == 0
    out = capsys.readouterr().out
    assert "4/4 cells" in out
    doc = json.loads(bench.read_text())
    assert doc["bench"] == "campaign_tiny"
    assert doc["results"]["complete"] is True
    assert cli_main(["report", "--store", str(store), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    ref_matrix = reference[1]
    assert dumps(report) == dumps(json.loads(dumps(ref_matrix.to_dict())))
    # diff against the reference store: identical grids exit 0.
    assert cli_main([
        "diff", str(store), str(reference[0].path),
    ]) == 0
    # resume on a complete store is a no-op exit 0.
    assert cli_main(["resume", "--store", str(store)]) == 0
    # unknown preset is a clean CampaignError exit, not a traceback.
    assert cli_main(["run", "--preset", "smoke", "--store", str(store),
                     ]) == 2


def test_marginal_drift_is_zero_against_itself(reference):
    _, matrix = reference
    drift = matrix.diff_marginals(matrix)
    assert drift["exceeded"] == [] and drift["missing"] == []
    assert all(e["drift"] == 0.0 for e in drift["entries"])
    from repro.errors import CampaignError
    with pytest.raises(CampaignError, match=">= 0"):
        matrix.diff_marginals(matrix, threshold=-0.1)


def test_marginal_drift_flags_moved_and_missing_points(reference):
    store, matrix = reference
    spec = store.spec()
    # Perturb every trace-arrival cell's completion count: the arrivals
    # marginal for "trace" moves while "poisson" stays put.
    records = [json.loads(dumps(rec)) for rec in store.cell_records()]
    for rec in records:
        if "/trace/" in rec["cell_id"]:
            rec["report"]["completed"] = 0
    moved = MatrixReport.from_records(records, spec=spec)
    drift = matrix.diff_marginals(moved, threshold=0.05)
    flagged = {(e["axis"], e["point"], e["metric"]) for e in drift["exceeded"]}
    assert ("arrival", "trace", "goodput") in flagged
    assert not any(point == "poisson" for _, point, _ in flagged)
    # A loose threshold swallows the same drift.
    loose = matrix.diff_marginals(moved, threshold=1.0)
    assert not any(e["metric"] == "goodput" for e in loose["exceeded"])

    # Dropping every crash cell erases a faults marginal entirely
    # (no spec: nothing re-seeds the empty point on the other side).
    kept = [rec for rec in records if "/crash/" not in rec["cell_id"]]
    shrunk = MatrixReport.from_records(kept)
    gone = matrix.diff_marginals(shrunk)
    assert {"axis": "faults", "point": "crash", "only": "self"} in gone["missing"]
    rendered = MatrixReport.render_marginals(gone)
    assert "faults:crash only in A" in rendered


def test_cli_diff_marginal_threshold_gate(reference, tmp_path, capsys):
    store = str(reference[0].path)
    assert cli_main(["diff", store, store, "--marginal-threshold", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "marginal drift vs threshold 0.1" in out
    assert "0 exceeded, 0 missing" in out


def test_html_dashboard_renders_and_is_deterministic(reference, tmp_path,
                                                     capsys):
    from repro.campaign.dashboard import render_html

    store, matrix = reference
    page = render_html(matrix, baseline=matrix, drift_threshold=0.05)
    assert page.startswith("<!DOCTYPE html>")
    assert "<script" not in page  # fully static artifact
    assert "<svg" in page and "drift vs. baseline" in page
    for cell in matrix.cells:
        assert cell["cell_id"] in page
    assert render_html(matrix, baseline=matrix) == page  # byte-stable

    out_path = tmp_path / "dash.html"
    assert cli_main([
        "report", "--store", str(store.path), "--html", str(out_path),
        "--baseline", str(store.path),
    ]) == 0
    assert "dashboard written" in capsys.readouterr().out
    assert out_path.read_text() == page
    # --baseline without --html is a clean usage error.
    assert cli_main([
        "report", "--store", str(store.path), "--baseline", str(store.path),
    ]) == 2
