"""Supervised campaigns: crash-, hang- and poison-cell tolerance.

Self-chaos for the experiment engine itself: the fault point in
``run_cell`` (:data:`repro.campaign.runner.FAULT_ENV`) SIGKILLs
workers mid-cell, hangs cells past the supervisor's deadline, and
raises deterministically — and the campaign must still converge.  The
invariant under every fault mode: the supervisor never changes *what* a
cell computes, so every cell that completes is byte-identical to the
serial unfaulted reference, and an unfaulted supervised run reproduces
the reference grid exactly.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    AxisPoint,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
)
from repro.campaign.cli import (
    EXIT_OK,
    EXIT_QUARANTINED,
    main as cli_main,
)
from repro.campaign.runner import FAULT_ENV
from repro.obs import MetricsRegistry


def tiny_campaign(seed=5):
    """4 cheap cells crossing arrivals x faults on a 2-site fabric."""
    return CampaignSpec(
        name="tiny",
        seed=seed,
        base={"n_sites": 2, "queue_slots": 2, "queue_limit": 8,
              "horizon": 3.0, "until": 40.0},
        scenarios=[AxisPoint("paper", {
            "suite": "paper", "duration": 1.0, "cadence": 0.5,
            "participants": 1,
        })],
        arrivals=[
            AxisPoint("trace", {"kind": "trace",
                                "instants": [0.0, 0.4, 1.1, 2.0]}),
            AxisPoint("poisson", {"kind": "poisson", "rate": 1.5}),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("crash", {"faults": [
                {"kind": "container-crash", "at": 1.2, "site": 0,
                 "duration": 2.0},
            ]}),
        ],
        policies=[AxisPoint("ll", {"placement": "least-loaded"})],
    )


CELL_IDS = [c.cell_id for c in tiny_campaign().cells()]


def strip_perf(records):
    """The deterministic portion of cell records, keyed by cell id."""
    return {
        rec["cell_id"]: {k: v for k, v in rec.items() if k != "perf"}
        for rec in records
    }


def dumps(obj):
    return json.dumps(obj, sort_keys=True)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The serial, unsupervised, unfaulted run every mode must match."""
    store = ResultStore(tmp_path_factory.mktemp("ref") / "ref.jsonl")
    runner = CampaignRunner(tiny_campaign(), store, workers=1)
    matrix = runner.run()
    assert not runner.supervise
    return store, matrix


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Install a fault spec for the cells of this test's campaign.

    Spawn workers inherit the parent's environment, so setting the env
    var here reaches ``run_cell`` in every worker process.
    """

    def install(cells: dict) -> None:
        state = tmp_path / "fault-state"
        state.mkdir(exist_ok=True)
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(
            {"cells": cells, "state_dir": str(state)}
        ))
        monkeypatch.setenv(FAULT_ENV, str(path))

    return install


def test_supervised_unfaulted_matches_serial(reference, tmp_path):
    ref_store, ref_matrix = reference
    store = ResultStore(tmp_path / "sup.jsonl")
    runner = CampaignRunner(
        tiny_campaign(), store, workers=2,
        max_cell_seconds=60.0, max_cell_retries=2,
    )
    assert runner.supervise
    matrix = runner.run()
    assert runner.stats["completed"] == 4
    assert runner.stats["worker_restarts"] == 0
    assert runner.stats["quarantined"] == 0
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())
    assert matrix.render(per_cell=True) == ref_matrix.render(per_cell=True)


def test_sigkill_mid_cell_is_retried_to_the_same_grid(
    reference, tmp_path, fault_env
):
    ref_store, ref_matrix = reference
    victim = CELL_IDS[1]
    fault_env({victim: {"action": "kill", "times": 1}})
    metrics = MetricsRegistry()
    store = ResultStore(tmp_path / "kill.jsonl")
    runner = CampaignRunner(
        tiny_campaign(), store, workers=2,
        max_cell_seconds=60.0, max_cell_retries=2, metrics=metrics,
    )
    matrix = runner.run()
    # The campaign survived the murdered worker and converged to the
    # byte-identical unfaulted grid.
    assert runner.stats["worker_restarts"] == 1
    assert runner.stats["cell_retries"] == 1
    assert runner.stats["quarantined"] == 0
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())
    assert metrics.get("campaign_worker_restarts_total").value() == 1
    assert metrics.get("campaign_cell_retries_total").value() == 1
    assert metrics.get("campaign_cells_quarantined_total").value() == 0
    assert metrics.get("campaign_cells_inflight").value() == 0


def test_hung_cell_is_killed_quarantined_and_skipped_on_resume(
    reference, tmp_path, fault_env, monkeypatch
):
    ref_store, ref_matrix = reference
    victim = CELL_IDS[2]
    fault_env({victim: {"action": "hang", "times": -1, "seconds": 60.0}})
    store_path = tmp_path / "hang.jsonl"
    runner = CampaignRunner(
        tiny_campaign(), ResultStore(store_path), workers=2,
        max_cell_seconds=2.0, max_cell_retries=1, retry_backoff=0.01,
    )
    matrix = runner.run()
    # Both attempts hit the deadline; the cell is quarantined, the
    # other three completed byte-identically.
    assert runner.stats["quarantined"] == 1
    assert runner.stats["worker_restarts"] == 2
    store = ResultStore(store_path)
    assert store.quarantined_ids() == {victim}
    [q] = store.quarantine_records()
    assert q["reason"] == "timeout" and q["attempts"] == 2
    assert [f["reason"] for f in q["failures"]] == ["timeout", "timeout"]
    ref_cells = strip_perf(ref_store.cell_records())
    assert strip_perf(store.cell_records()) == {
        cid: rec for cid, rec in ref_cells.items() if cid != victim
    }
    assert not matrix.complete and matrix.holes == 1
    assert matrix.quarantined[0]["cell_id"] == victim
    assert "quarantined cell(s)" in matrix.render()
    assert matrix.to_dict()["quarantined"][0]["reason"] == "timeout"

    # Resume skips the poison cell even with the fault still armed:
    # nothing re-executes, the quarantine round-trips through the store.
    resumed = CampaignRunner(
        tiny_campaign(), ResultStore(store_path), workers=2,
        max_cell_seconds=2.0, max_cell_retries=1,
    )
    matrix2 = resumed.run()
    assert resumed.executed == []
    assert resumed.stats["worker_restarts"] == 0
    assert dumps(matrix2.to_dict()) == dumps(matrix.to_dict())

    # The dashboard names the hole.
    from repro.campaign.dashboard import render_html
    page = render_html(matrix)
    assert "grid holes" in page and "quarantined" in page


def test_poison_raise_quarantines_with_error_detail(tmp_path, fault_env):
    victim = CELL_IDS[0]
    fault_env({victim: {"action": "raise", "times": -1}})
    store = ResultStore(tmp_path / "poison.jsonl")
    runner = CampaignRunner(
        tiny_campaign(), store, workers=1, supervise=True,
        max_cell_retries=1, retry_backoff=0.01,
    )
    matrix = runner.run()
    # The worker survives a raising cell — no respawn, two attempts.
    assert runner.stats["worker_restarts"] == 0
    assert runner.stats["quarantined"] == 1
    [q] = store.quarantine_records()
    assert q["reason"] == "error" and q["attempts"] == 2
    assert "injected fault" in q["failures"][-1]["detail"]["message"]
    assert q["failures"][-1]["detail"]["error"] == "RuntimeError"
    assert matrix.holes == 1 and len(store.cell_records()) == 3


def test_transient_raise_is_retried_to_success(
    reference, tmp_path, fault_env
):
    ref_store, ref_matrix = reference
    victim = CELL_IDS[3]
    fault_env({victim: {"action": "raise", "times": 2}})
    store = ResultStore(tmp_path / "flaky.jsonl")
    runner = CampaignRunner(
        tiny_campaign(), store, workers=2,
        max_cell_retries=2, retry_backoff=0.01,
    )
    matrix = runner.run()
    assert runner.stats["cell_retries"] == 2
    assert runner.stats["quarantined"] == 0
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())


def test_programmatic_drain_flushes_and_resumes(reference, tmp_path):
    ref_store, ref_matrix = reference
    store_path = tmp_path / "drain.jsonl"
    runner = CampaignRunner(
        tiny_campaign(), ResultStore(store_path), workers=2,
    )

    def stop_after_first(record):
        runner.supervisor.request_drain()

    matrix = runner.run(progress=stop_after_first)
    done = ResultStore(store_path)
    # At least the record that triggered the drain was flushed; the
    # grid is (very likely) incomplete but the store is consistent.
    assert 1 <= len(done) <= 4
    assert done.dropped_lines == 0
    assert matrix.totals.cells == len(done)
    # Resume completes the remainder to the byte-identical grid.
    resumed = CampaignRunner(tiny_campaign(), ResultStore(store_path),
                             workers=1)
    matrix2 = resumed.run()
    assert dumps(matrix2.to_dict()) == dumps(ref_matrix.to_dict())


def test_cli_supervised_exit_codes_and_summary(
    reference, tmp_path, fault_env, capsys
):
    victim = CELL_IDS[1]
    fault_env({victim: {"action": "raise", "times": -1}})
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(json.dumps(tiny_campaign().to_dict()))
    store = tmp_path / "cli.jsonl"
    code = cli_main([
        "run", "--spec", str(spec_path), "--store", str(store),
        "--workers", "2", "--max-cell-retries", "1",
        "--fail-on-violations",
    ])
    out = capsys.readouterr()
    assert code == EXIT_QUARANTINED
    assert "QUARANTINED" in out.out
    assert "supervisor:" in out.out
    assert "quarantined cell(s)" in out.err
    # resume still refuses to call the grid healthy (the quarantine
    # persists) but re-executes nothing.
    assert cli_main([
        "resume", "--store", str(store), "--fail-on-violations",
    ]) == EXIT_QUARANTINED
    out = capsys.readouterr().out
    assert "1 quarantined (skipped)" in out
    assert "0 to run" in out
    # without the gate the exit is clean even with the hole reported.
    assert cli_main(["resume", "--store", str(store)]) == EXIT_OK


def test_sigterm_drain_in_subprocess_leaves_resumable_store(
    reference, tmp_path
):
    """End-to-end: SIGTERM a running supervised campaign; the store is
    flushed and consistent, the exit code is the drain code, and a
    resume converges to the byte-identical reference grid."""
    ref_store, ref_matrix = reference
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(json.dumps(tiny_campaign().to_dict()))
    store_path = tmp_path / "sig.jsonl"
    state = tmp_path / "fault-state"
    state.mkdir()
    faults = tmp_path / "faults.json"
    # One cell hangs (no timeout configured) so the campaign is still
    # running when the SIGTERM lands.
    faults.write_text(json.dumps({
        "cells": {CELL_IDS[0]: {"action": "hang", "times": -1,
                                "seconds": 30.0}},
        "state_dir": str(state),
    }))
    env = dict(os.environ, PYTHONPATH="src", **{FAULT_ENV: str(faults)})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "run",
         "--spec", str(spec_path), "--store", str(store_path),
         "--workers", "2"],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    # Give the campaign time to start and finish a few cells.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if store_path.exists() and len(ResultStore(store_path)) >= 1:
            break
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=30.0)
    assert proc.returncode == 130, (stdout, stderr)
    assert "store is consistent" in stderr
    # The store survived the drain: header intact, no torn lines, and
    # every flushed record byte-identical to the reference.
    store = ResultStore(store_path)
    assert store.dropped_lines == 0
    ref_cells = strip_perf(ref_store.cell_records())
    for cid, rec in strip_perf(store.cell_records()).items():
        assert rec == ref_cells[cid]
    # Resume (fault cleared) finishes the grid exactly.
    resumed = CampaignRunner(tiny_campaign(), ResultStore(store_path),
                             workers=1)
    matrix = resumed.run()
    assert dumps(matrix.to_dict()) == dumps(ref_matrix.to_dict())
