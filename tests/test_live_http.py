"""The stdlib HTTP/1.1 codec: pure head parsing, framing, hard bounds."""

import asyncio

import pytest

from repro.live import http
from repro.live.http import (
    HttpError,
    encode_request,
    encode_response,
    json_body,
    parse_request_head,
    parse_response_head,
    read_request,
    read_response,
)


def _frame(data, fn):
    """Run an async framer against a pre-fed StreamReader."""

    async def go():
        reader = asyncio.StreamReader(limit=http.MAX_HEAD_BYTES)
        reader.feed_data(data)
        reader.feed_eof()
        return await fn(reader)

    return asyncio.run(go())


def test_request_roundtrip_through_the_wire():
    body = json_body({"sim": "building", "participants": 2})
    wire = encode_request("POST", "/sessions?x=1", body, host="example")
    request = _frame(wire, read_request)
    assert request.method == "POST"
    assert request.path == "/sessions"
    assert request.query == {"x": "1"}
    assert request.headers["host"] == "example"
    assert request.json() == {"participants": 2, "sim": "building"}
    assert request.keep_alive


def test_response_roundtrip_through_the_wire():
    wire = encode_response(
        429, json_body({"error": "full"}), extra_headers=[("Retry-After", "3")]
    )
    response = _frame(wire, read_response)
    assert response.status == 429
    assert response.reason == "Too Many Requests"
    assert response.headers["retry-after"] == "3"
    assert response.json() == {"error": "full"}


def test_keep_alive_semantics_by_version():
    r = parse_request_head(b"GET / HTTP/1.1\r\n\r\n")
    assert r.keep_alive  # 1.1 default
    r = parse_request_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not r.keep_alive
    r = parse_request_head(b"GET / HTTP/1.0\r\n\r\n")
    assert not r.keep_alive  # 1.0 default
    r = parse_request_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
    assert r.keep_alive


def test_json_body_is_canonical_and_parse_is_strict():
    assert json_body({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'
    empty = parse_request_head(b"POST /s HTTP/1.1\r\n\r\n")
    assert empty.json() == {}
    bad = parse_request_head(b"POST /s HTTP/1.1\r\n\r\n")
    bad.body = b"{nope"
    with pytest.raises(HttpError) as exc:
        bad.json()
    assert exc.value.status == 400
    bad.body = b"[1,2]"
    with pytest.raises(HttpError) as exc:
        bad.json()
    assert exc.value.status == 400


@pytest.mark.parametrize(
    "head,status",
    [
        (b"BREW /pot HTTP/1.1\r\n\r\n", 405),  # unknown method
        (b"GET / HTTP/2.0\r\n\r\n", 400),  # unsupported version
        (b"GET http://x/ HTTP/1.1\r\n\r\n", 400),  # not origin-form
        (b"GET /\r\n\r\n", 400),  # malformed request line
        (b"GET / HTTP/1.1\r\nname value\r\n\r\n", 400),  # no colon
        (b"GET / HTTP/1.1\r\nh: a\r\n folded\r\n\r\n", 400),  # folding
    ],
)
def test_request_head_rejections(head, status):
    with pytest.raises(HttpError) as exc:
        parse_request_head(head)
    assert exc.value.status == status


def test_response_head_rejections():
    with pytest.raises(HttpError) as exc:
        parse_response_head(b"NOPE\r\n\r\n")
    assert exc.value.status == 502
    with pytest.raises(HttpError) as exc:
        parse_response_head(b"HTTP/1.1 abc Bad\r\n\r\n")
    assert exc.value.status == 502


@pytest.mark.parametrize(
    "headers,status",
    [
        (b"Transfer-Encoding: chunked\r\n", 501),
        (b"Content-Length: nope\r\n", 400),
        (b"Content-Length: -5\r\n", 400),
        (f"Content-Length: {http.MAX_BODY_BYTES + 1}\r\n".encode(), 413),
    ],
)
def test_body_framing_rejections(headers, status):
    wire = b"POST /s HTTP/1.1\r\n" + headers + b"\r\n"
    with pytest.raises(HttpError) as exc:
        _frame(wire, read_request)
    assert exc.value.status == status


def test_clean_eof_and_torn_messages():
    assert _frame(b"", read_request) is None
    with pytest.raises(HttpError) as exc:  # closed mid-head
        _frame(b"GET / HTTP/1.1\r\nHost:", read_request)
    assert exc.value.status == 400
    torn = b"POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
    with pytest.raises(HttpError) as exc:  # closed mid-body
        _frame(torn, read_request)
    assert exc.value.status == 400


def test_oversized_head_is_431():
    wire = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * (http.MAX_HEAD_BYTES + 10)
    with pytest.raises(HttpError) as exc:
        _frame(wire, read_request)
    assert exc.value.status == 431


def test_keep_alive_pipeline_frames_two_requests():
    wire = encode_request("GET", "/healthz") + encode_request("GET", "/statsz")

    async def go():
        reader = asyncio.StreamReader(limit=http.MAX_HEAD_BYTES)
        reader.feed_data(wire)
        reader.feed_eof()
        first = await read_request(reader)
        second = await read_request(reader)
        third = await read_request(reader)
        return first, second, third

    first, second, third = asyncio.run(go())
    assert (first.path, second.path, third) == ("/healthz", "/statsz", None)
