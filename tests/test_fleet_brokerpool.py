"""Broker pool: least-loaded placement and master-token failover."""

import pytest

from repro.des import Environment
from repro.errors import VisitError
from repro.fleet import BrokerPool
from repro.net import Network
from repro.visit import VisitServer
from repro.workloads import CAMPUS, link_with_profile

TAG_PARAMS = 2


def _world(n_broker_hosts=2, n_viz=4):
    env = Environment()
    net = Network(env)
    broker_hosts = []
    for i in range(n_broker_hosts):
        name = f"broker-{i}"
        net.add_host(name)
        broker_hosts.append(name)
    servers = {}
    for i in range(n_viz):
        name = f"viz-{i}"
        net.add_host(name)
        for b in broker_hosts:
            link_with_profile(net, b, name, CAMPUS)
        server = VisitServer(net.host(name), 6000, password="fleet", name=name)
        server.provide(TAG_PARAMS, lambda n=name: f"params:{n}")
        server.start()
        servers[name] = server
    pool = BrokerPool.build(net, broker_hosts, password="fleet")
    return env, net, pool, servers


def test_pool_requires_brokers():
    with pytest.raises(VisitError):
        BrokerPool([])


def test_least_loaded_placement_round_robins():
    env, net, pool, servers = _world(n_broker_hosts=2)
    b0 = pool.place("sess-a")
    b1 = pool.place("sess-b")
    b2 = pool.place("sess-c")
    assert b0 is not b1  # second session avoids the loaded broker
    assert b2 in (b0, b1)
    assert pool.placements()["sess-a"] != pool.placements()["sess-b"]
    # Placement is stable on repeat lookups.
    assert pool.place("sess-a") is b0
    assert pool.broker_for("sess-a") is b0
    pool.release("sess-a")
    with pytest.raises(VisitError):
        pool.broker_for("sess-a")


def test_release_rebalances_future_placements():
    env, net, pool, servers = _world(n_broker_hosts=2)
    pool.place("s1")
    pool.place("s2")
    pool.release("s1")
    # The freed broker is least-loaded again.
    assert pool.placements()["s2"] != pool.placements().get("s3") or True
    b3 = pool.place("s3")
    assert pool.placements()["s3"] != pool.placements()["s2"]
    assert b3 is pool.broker_for("s3")


def test_master_failover_moves_token_to_live_participant():
    env, net, pool, servers = _world(n_broker_hosts=1, n_viz=3)
    pool.place("sess")
    done = {}

    def scenario():
        yield from pool.add_visualization("sess", "viz-0", "viz-0", 6000)
        yield from pool.add_visualization("sess", "viz-1", "viz-1", 6000)
        yield from pool.add_visualization("sess", "viz-2", "viz-2", 6000)
        broker = pool.broker_for("sess")
        done["first_master"] = broker.master
        # The master's connection dies (participant crash / site drop).
        broker._downstream["viz-0"].conn.close()
        done["repaired_master"] = pool.ensure_master("sess")
        done["participants"] = broker.participants()
        # A healthy pool is a no-op repair.
        done["stable_master"] = pool.ensure_master("sess")

    env.process(scenario())
    env.run(until=10.0)
    assert done["first_master"] == "viz-0"  # first participant holds the token
    assert done["repaired_master"] == "viz-1"  # token moved, not stalled
    assert done["participants"] == ["viz-1", "viz-2"]
    assert done["stable_master"] == "viz-1"


def test_failover_with_no_survivors_returns_none():
    env, net, pool, servers = _world(n_broker_hosts=1, n_viz=2)
    pool.place("sess")
    done = {}

    def scenario():
        yield from pool.add_visualization("sess", "viz-0", "viz-0", 6000)
        broker = pool.broker_for("sess")
        broker._downstream["viz-0"].conn.close()
        done["master"] = pool.ensure_master("sess")

    env.process(scenario())
    env.run(until=10.0)
    assert done["master"] is None


def test_place_skips_dead_brokers():
    env, net, pool, servers = _world(n_broker_hosts=3)
    # The least-loaded (first) broker's host crashes: listener closes.
    pool.brokers[0].stop()
    assert not pool.brokers[0].alive
    assert pool.brokers[1].alive and pool.brokers[2].alive
    b = pool.place("sess-live")
    assert b is not pool.brokers[0]
    # Sessions placed before a crash keep their (now useless) placement
    # on repeat lookups rather than silently moving.
    pool._placement["sess-old"] = 0
    assert pool.place("sess-old") is pool.brokers[0]


def test_place_prunes_dead_participants_before_load_compare():
    env, net, pool, servers = _world(n_broker_hosts=2, n_viz=2)
    done = {}

    def scenario():
        pool.place("a")  # -> broker 0 (1 session)
        # Load broker 1 with two dead participants: raw participant
        # count would make it look busier than broker 0.
        yield from pool.brokers[1].add_visualization("viz-0", "viz-0", 6000)
        yield from pool.brokers[1].add_visualization("viz-1", "viz-1", 6000)
        pool.brokers[1]._downstream["viz-0"].conn.close()
        pool.brokers[1]._downstream["viz-1"].conn.close()
        done["b"] = pool.place("b")

    env.process(scenario())
    env.run(until=10.0)
    # After pruning, broker 1 has 0 sessions + 0 live participants and
    # wins over broker 0's 1 session.
    assert done["b"] is pool.brokers[1]
    assert pool.brokers[1].participants() == []


def test_place_raises_when_every_broker_is_dead():
    env, net, pool, servers = _world(n_broker_hosts=2)
    for broker in pool.brokers:
        broker.stop()
    with pytest.raises(VisitError) as exc:
        pool.place("nowhere-to-go")
    assert "all 2 vbrokers" in str(exc.value)
    # The failed placement left no stale bookkeeping behind.
    assert "nowhere-to-go" not in pool.placements()


def test_stop_drops_downstreams_and_moves_no_token():
    env, net, pool, servers = _world(n_broker_hosts=1, n_viz=2)

    def scenario():
        yield from pool.brokers[0].add_visualization("viz-0", "viz-0", 6000)
        yield from pool.brokers[0].add_visualization("viz-1", "viz-1", 6000)

    env.process(scenario())
    env.run(until=10.0)
    broker = pool.brokers[0]
    assert broker.alive and broker.master == "viz-0"
    broker.stop()
    assert not broker.alive
    assert broker.participants() == [] and broker.master is None


def test_stats_reflect_assignments():
    env, net, pool, servers = _world(n_broker_hosts=2)
    pool.place("a")
    pool.place("b")
    stats = pool.stats()
    assert sorted(s["sessions"] for s in stats) == [1, 1]
    assert {s["host"] for s in stats} == {"broker-0", "broker-1"}
