"""Unit tests for the discrete-event kernel."""

import pytest

from repro.des import Environment, Interrupt, Mailbox, Resource, Store
from repro.errors import SimulationError


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(5.0)
        seen.append(env.now)
        yield env.timeout(2.5)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0, 7.5]
    assert env.now == 7.5


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_process_waits_on_other_process():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "done"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    p = env.process(parent())
    assert env.run(until=p) == (3.0, "done")


def test_uncaught_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_waiting_process_can_catch_child_failure():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(bad())
        except ValueError:
            return "caught"
        return "missed"

    p = env.process(parent())
    assert env.run(until=p) == "caught"


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 17

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(until=10.5)
    assert env.now == 10.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(target):
        yield env.timeout(4)
        target.interrupt("wake up")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert log == [(4.0, "wake up")]


def test_anyof_returns_first_triggered():
    env = Environment()

    def proc():
        t_short = env.timeout(1, value="short")
        t_long = env.timeout(5, value="long")
        results = yield env.any_of([t_short, t_long])
        return list(results.values())

    p = env.process(proc())
    assert env.run(until=p) == ["short"]
    assert env.now >= 1.0


def test_allof_waits_for_everything():
    env = Environment()

    def proc():
        evs = [env.timeout(d, value=d) for d in (3, 1, 2)]
        results = yield env.all_of(evs)
        return (env.now, sorted(results.values()))

    p = env.process(proc())
    assert env.run(until=p) == (3.0, [1, 2, 3])


def test_empty_anyof_succeeds_immediately():
    env = Environment()

    def proc():
        results = yield env.any_of([])
        return results

    p = env.process(proc())
    assert env.run(until=p) == {}


def test_store_fifo_order():
    env = Environment()
    out = []

    def producer(store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(store):
        for _ in range(3):
            item = yield store.get()
            out.append((env.now, item))

    store = Store(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert [i for _, i in out] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    out = []

    def consumer(store):
        item = yield store.get()
        out.append((env.now, item))

    def producer(store):
        yield env.timeout(7)
        yield store.put("x")

    store = Store(env)
    env.process(consumer(store))
    env.process(producer(store))
    env.run()
    assert out == [(7.0, "x")]


def test_store_capacity_backpressure():
    env = Environment()
    times = []

    def producer(store):
        for i in range(3):
            yield store.put(i)
            times.append(env.now)

    def consumer(store):
        yield env.timeout(10)
        yield store.get()

    store = Store(env, capacity=2)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    # first two puts at t=0, third only after the consumer frees a slot
    assert times == [0.0, 0.0, 10.0]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("a")
    env.run()
    ok, item = store.try_get()
    assert ok and item == "a"


def test_mailbox_recv_with_timeout_expires():
    env = Environment()
    box = Mailbox(env)

    def proc():
        ok, item = yield from box.recv(timeout=5.0)
        return (ok, item, env.now)

    p = env.process(proc())
    assert env.run(until=p) == (False, None, 5.0)
    # The withdrawn get must not steal a later item.
    box.put("late")
    env.run()
    assert len(box) == 1


def test_mailbox_recv_gets_item_before_timeout():
    env = Environment()
    box = Mailbox(env)

    def producer():
        yield env.timeout(2)
        yield box.put("msg")

    def proc():
        ok, item = yield from box.recv(timeout=5.0)
        return (ok, item, env.now)

    env.process(producer())
    p = env.process(proc())
    assert env.run(until=p) == (True, "msg", 2.0)


def test_resource_mutual_exclusion():
    env = Environment()
    log = []

    def worker(name, res):
        req = res.request()
        yield req
        log.append((env.now, name, "acq"))
        yield env.timeout(5)
        req.release()

    res = Resource(env, capacity=1)
    env.process(worker("a", res))
    env.process(worker("b", res))
    env.run()
    assert log == [(0.0, "a", "acq"), (5.0, "b", "acq")]


def test_resource_capacity_two():
    env = Environment()
    acq_times = []

    def worker(res):
        req = res.request()
        yield req
        acq_times.append(env.now)
        yield env.timeout(3)
        req.release()

    res = Resource(env, capacity=2)
    for _ in range(4):
        env.process(worker(res))
    env.run()
    assert acq_times == [0.0, 0.0, 3.0, 3.0]


def test_run_until_event_raises_if_schedule_drains():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=ev)


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
