"""Campaign grid enumeration, seed derivation and spec round-trips."""

import pytest

from repro.campaign import AxisPoint, CampaignSpec, SPEC_VERSION, derive_seed
from repro.errors import CampaignError


def grid(**overrides):
    kwargs = dict(
        name="g",
        seed=7,
        scenarios=[AxisPoint("paper", {"suite": "paper"}),
                   AxisPoint("sweep", {"suite": "sweep"})],
        arrivals=[AxisPoint("poisson", {"kind": "poisson", "rate": 2.0}),
                  AxisPoint("flash", {"kind": "flash"})],
        faults=[AxisPoint("baseline"),
                AxisPoint("rand", {"random": {"n_faults": 2}})],
        policies=[AxisPoint("ll", {"placement": "least-loaded"})],
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def test_grid_enumeration_order_and_ids():
    spec = grid()
    cells = spec.cells()
    assert spec.n_cells == len(cells) == 2 * 2 * 2 * 1
    # itertools.product order over declared axes, indices consecutive.
    assert [c.index for c in cells] == list(range(8))
    assert cells[0].cell_id == "paper/poisson/baseline/ll"
    assert cells[-1].cell_id == "sweep/flash/rand/ll"
    ids = [c.cell_id for c in cells]
    assert len(set(ids)) == len(ids)
    assert all(c.coords["scenario"] == c.scenario.name for c in cells)


def test_seed_derivation_is_stable_and_coordinate_addressed():
    # SHA-derived: a fixed literal guards against any drift in the
    # derivation (hash() randomization, ordering changes...).
    assert derive_seed(7, "paper/poisson/baseline/ll") == \
        derive_seed(7, "paper/poisson/baseline/ll")
    assert derive_seed(7, "a") != derive_seed(8, "a")
    assert derive_seed(7, "a") != derive_seed(7, "b")
    spec = grid()
    by_id = {c.cell_id: c.seed for c in spec.cells()}
    # Seeds depend on coordinates, not grid position: growing an axis
    # leaves every pre-existing cell's seed untouched.
    bigger = grid(policies=[AxisPoint("ll", {"placement": "least-loaded"}),
                            AxisPoint("p2c", {"placement": "p2c"})])
    for cell in bigger.cells():
        if cell.cell_id in by_id:
            assert cell.seed == by_id[cell.cell_id]
    # Sub-seeds are independent streams off the cell seed.
    cell = spec.cells()[0]
    assert cell.subseed("arrival") != cell.subseed("faults")
    assert cell.subseed("arrival") == derive_seed(cell.seed, "arrival")


def test_per_axis_base_overrides_later_axes_win():
    spec = grid(
        base={"n_sites": 3, "horizon": 8.0},
        scenarios=[AxisPoint("s", {"base": {"n_sites": 4, "horizon": 5.0}})],
        faults=[AxisPoint("f", {"base": {"horizon": 9.0}})],
    )
    cell = spec.cells()[0]
    assert cell.base["n_sites"] == 4        # scenario override
    assert cell.base["horizon"] == 9.0      # faults axis wins over scenario


def test_validation_errors():
    with pytest.raises(CampaignError):
        grid(arrivals=[])                               # empty axis
    with pytest.raises(CampaignError):
        grid(faults=[AxisPoint("x"), AxisPoint("x")])   # duplicate names
    with pytest.raises(CampaignError):
        AxisPoint("a/b")                                # '/' joins ids
    with pytest.raises(CampaignError):
        AxisPoint("")
    with pytest.raises(CampaignError):
        CampaignSpec(name="", scenarios=[AxisPoint("s")],
                     arrivals=[AxisPoint("a")], faults=[AxisPoint("f")],
                     policies=[AxisPoint("p")])


def test_spec_round_trip_preserves_grid_and_seeds():
    spec = grid()
    clone = CampaignSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    assert [(c.cell_id, c.seed, c.base) for c in clone.cells()] == \
        [(c.cell_id, c.seed, c.base) for c in spec.cells()]


def test_from_dict_rejects_bad_documents():
    with pytest.raises(CampaignError):
        CampaignSpec.from_dict({"schema": "nope", "name": "x"})
    with pytest.raises(CampaignError):
        CampaignSpec.from_dict({"name": "x"})  # missing axes


def test_wire_format_is_versioned():
    doc = grid().to_dict()
    assert doc["version"] == SPEC_VERSION == 1
    # a future version is refused loudly, not misread
    doc["version"] = 99
    with pytest.raises(CampaignError, match="version 99"):
        CampaignSpec.from_dict(doc)
    # documents predating the version field read as version 1
    doc = grid().to_dict()
    del doc["version"]
    assert CampaignSpec.from_dict(doc).to_dict() == grid().to_dict()
