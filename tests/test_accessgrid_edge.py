"""Edge-case tests for the Access Grid layer: multi-client vnc, VizServer
control churn, disconnects, venue lifecycle."""

import numpy as np
import pytest

from repro.accessgrid import AGNode, VenueServer, VncClient, VncServer
from repro.accessgrid.vizserver import VizServerClient, VizServerSession
from repro.des import Environment
from repro.errors import VenueError
from repro.net import Network
from repro.viz import Camera, Geometry


def world(n=4):
    env = Environment()
    net = Network(env)
    net.add_host("hub")
    for i in range(n):
        net.add_host(f"s{i}")
        net.add_link("hub", f"s{i}", latency=0.005 * (i + 1), bandwidth=10e6 / 8)
    return env, net


def test_vnc_multiple_clients_independent_deltas():
    """Each vnc client has its own delta baseline; a client that skips
    updates still reconstructs correctly."""
    env, net = world(2)
    vnc = VncServer(net.host("hub"), 5900, width=32, height=32)
    vnc.start()
    vnc.fb.color[:8] = 100
    result = {}

    def fast_client():
        c = VncClient(net.host("s0"), "hub", 5900)
        yield from c.connect()
        for step in range(4):
            vnc.fb.color[8 + step * 4 : 12 + step * 4] = 50 + step
            fb = yield from c.request_update()
        result["fast"] = fb.color.copy()

    def slow_client():
        c = VncClient(net.host("s1"), "hub", 5900)
        yield from c.connect()
        yield env.timeout(2.0)  # only looks once, at the end
        fb = yield from c.request_update()
        result["slow"] = fb.color.copy()

    env.process(fast_client())
    env.process(slow_client())
    env.run(until=10.0)
    # Both converge to the same final desktop despite different cadences.
    np.testing.assert_array_equal(result["fast"], result["slow"])


def test_vnc_input_events_from_multiple_sites_all_arrive():
    env, net = world(3)
    vnc = VncServer(net.host("hub"), 5900, width=16, height=16)
    events = []
    vnc.on_input = events.append
    vnc.start()

    def site(i):
        c = VncClient(net.host(f"s{i}"), "hub", 5900)
        yield from c.connect()
        yield from c.send_input({"site": i})

    for i in range(3):
        env.process(site(i))
    env.run(until=5.0)
    assert sorted(e["site"] for e in events) == [0, 1, 2]
    assert vnc.input_events == 3


def test_vizserver_client_disconnect_releases_control():
    env, net = world(2)
    session = VizServerSession(net.host("hub"), 7010, width=32, height=24)
    session.scene.add_node("pts", Geometry("points", np.zeros((5, 3))))
    session.start()
    a = VizServerClient(net.host("s0"), "hub", 7010, "s0")
    b = VizServerClient(net.host("s1"), "hub", 7010, "s1")
    result = {}

    def scenario():
        yield from a.join()
        yield from b.join()
        assert session.control_holder == "s0"
        a._conn.close()  # the controlling site drops out
        yield env.timeout(1.0)
        result["holder"] = session.control_holder
        ok = yield from b.move_camera(Camera(eye=np.array([1.0, -2.0, 0.0])))
        result["b_can_steer"] = ok

    env.process(scenario())
    env.run(until=10.0)
    assert result["holder"] == "s1"
    assert result["b_can_steer"]


def test_vizserver_pass_control_to_unknown_site_denied():
    env, net = world(1)
    session = VizServerSession(net.host("hub"), 7010)
    session.start()
    a = VizServerClient(net.host("s0"), "hub", 7010, "s0")
    result = {}

    def scenario():
        yield from a.join()
        ok = yield from a.pass_control("nowhere")
        result["ok"] = ok
        # Control retained after the failed handover.
        result["holder"] = session.control_holder

    env.process(scenario())
    env.run(until=5.0)
    assert result["ok"] is False
    assert result["holder"] == "s0"


def test_venue_media_group_membership_follows_enter_leave():
    env, net = world(2)
    server = VenueServer(net, net.host("hub"))
    venue = server.create_venue("v")
    n0 = AGNode(net.host("s0"))
    n1 = AGNode(net.host("s1"))
    n0.enter(venue)
    n1.enter(venue)
    assert set(venue.video.members) == {"s0", "s1"}
    n0.leave()
    assert venue.video.members == ["s1"]
    # Re-entry works after leaving.
    n0.enter(venue)
    assert set(venue.video.members) == {"s0", "s1"}


def test_venue_server_multiple_venues_isolated():
    env, net = world(2)
    server = VenueServer(net, net.host("hub"))
    v1 = server.create_venue("physics")
    v2 = server.create_venue("engineering")
    assert server.venues() == ["engineering", "physics"]
    n = AGNode(net.host("s0"))
    n.enter(v1)
    assert v1.occupants() == ["s0"] and v2.occupants() == []
    with pytest.raises(VenueError):
        server.venue("nope")
