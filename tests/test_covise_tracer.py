"""Tracer tests: streamline integration correctness + module wiring."""

import numpy as np
import pytest

from repro.covise.datamgr import SharedDataSpace
from repro.covise.tracer import (
    LinesData,
    TracerModule,
    VectorField3D,
    trace_streamlines,
)
from repro.errors import CoviseError
from repro.sims import BuildingClimate


def uniform_flow(shape=(16, 8, 8), u=(1.0, 0.0, 0.0)):
    field = np.zeros((3,) + shape)
    for a in range(3):
        field[a] = u[a]
    return field


def test_vector_field_validation():
    with pytest.raises(CoviseError):
        VectorField3D("v", np.zeros((2, 4, 4, 4)))
    v = VectorField3D("v", uniform_flow())
    assert v.grid_shape == (16, 8, 8)
    assert v.nbytes == 3 * 16 * 8 * 8 * 8


def test_lines_data_validation_and_access():
    pts = np.zeros((5, 3))
    lines = LinesData("l", pts, np.array([0, 2, 5]))
    assert lines.n_lines == 2
    assert lines.line(0).shape == (2, 3)
    assert lines.line(1).shape == (3, 3)
    with pytest.raises(CoviseError):
        lines.line(2)
    with pytest.raises(CoviseError):
        LinesData("l", pts, np.array([1, 5]))


def test_streamline_follows_uniform_flow():
    field = uniform_flow(u=(1.0, 0.0, 0.0))
    seeds = np.array([[1.0, 4.0, 4.0]])
    points, offsets = trace_streamlines(field, seeds, step=0.5, max_steps=100)
    line = points[offsets[0]: offsets[1]]
    # Moves straight along +x until the boundary, y/z unchanged.
    assert np.allclose(line[:, 1], 4.0) and np.allclose(line[:, 2], 4.0)
    assert line[-1, 0] > 13.0
    assert np.all(np.diff(line[:, 0]) > 0)


def test_streamline_circular_flow_conserves_radius():
    """RK2 through a solid-body rotation: the radius drifts only slowly."""
    n = 24
    ax = np.arange(n, dtype=float)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    cx = cy = (n - 1) / 2.0
    field = np.zeros((3, n, n, n))
    field[0] = -(y - cy) * 0.1
    field[1] = (x - cx) * 0.1
    seeds = np.array([[cx + 6.0, cy, 1.0]])
    points, offsets = trace_streamlines(field, seeds, step=0.3, max_steps=150)
    line = points[offsets[0]: offsets[1]]
    r = np.sqrt((line[:, 0] - cx) ** 2 + (line[:, 1] - cy) ** 2)
    assert len(line) > 100
    assert abs(r[-1] - r[0]) < 0.25  # midpoint method: tiny drift


def test_streamline_stops_in_stagnant_flow():
    field = np.zeros((3, 8, 8, 8))
    points, offsets = trace_streamlines(field, np.array([[4.0, 4.0, 4.0]]))
    assert offsets[-1] == 1  # only the seed point


def test_streamline_stops_at_boundary():
    field = uniform_flow(shape=(8, 8, 8), u=(5.0, 0.0, 0.0))
    points, offsets = trace_streamlines(field, np.array([[6.0, 4.0, 4.0]]),
                                        step=1.0, max_steps=100)
    line = points[offsets[0]: offsets[1]]
    assert len(line) < 5  # exits quickly
    assert np.all(line[:, 0] <= 7.0)


def test_multiple_seeds_independent():
    field = uniform_flow(u=(1.0, 0.0, 0.0))
    seeds = np.array([[1.0, 2.0, 2.0], [1.0, 6.0, 6.0]])
    points, offsets = trace_streamlines(field, seeds, step=0.5)
    a = points[offsets[0]: offsets[1]]
    b = points[offsets[1]: offsets[2]]
    assert np.allclose(a[:, 1], 2.0)
    assert np.allclose(b[:, 1], 6.0)


def test_tracer_module_in_pipeline_with_building_flow():
    """The Car-Show use: trace the ventilation flow of the building."""
    sim = BuildingClimate(shape=(24, 16, 8))
    flow = VectorField3D("obj-flow", sim.flow_field())
    sds = SharedDataSpace("hlrs")
    tracer = TracerModule("trace")
    out = tracer.execute({"velocity": flow}, sds)
    lines = out["lines"]
    assert isinstance(lines, LinesData)
    assert lines.n_lines == 12  # the default 4x3 inlet rake
    # The ventilation jet carries seeds down the hall (+x).
    for i in range(lines.n_lines):
        line = lines.line(i)
        if len(line) > 3:
            assert line[-1, 0] > line[0, 0]


def test_tracer_module_custom_seeds_and_validation():
    sds = SharedDataSpace("h")
    tracer = TracerModule("trace")
    tracer.set_param("seeds", np.array([[1.0, 4.0, 4.0]]))
    out = tracer.execute(
        {"velocity": VectorField3D("v", uniform_flow())}, sds
    )
    assert out["lines"].n_lines == 1
    from repro.covise.dataobj import UniformScalarField

    with pytest.raises(Exception):
        tracer.execute(
            {"velocity": UniformScalarField("s", np.zeros((4, 4, 4)))}, sds
        )
