"""Placement policies: least-loaded, locality-affine, power-of-two."""

import pytest

from repro.errors import LoadError
from repro.fleet.spec import ScenarioSpec
from repro.load import (
    CapacityLedger,
    LeastLoaded,
    LocalityAffine,
    PowerOfTwoChoices,
    make_policy,
)

SPEC = ScenarioSpec(name="s", profile="campus", participants=1)


def _ledger(slots=(2, 2, 2)):
    led = CapacityLedger()
    for i, n in enumerate(slots):
        led.register_site(i, n)
    return led


def test_least_loaded_picks_most_free_slots():
    led = _ledger((2, 4, 2))
    pol = LeastLoaded()
    assert pol.choose(SPEC, led) == 1
    led.acquire(1)
    led.acquire(1)
    led.acquire(1)
    # Site 1 now has 1 free vs 2 on sites 0/2; lowest index wins ties.
    assert pol.choose(SPEC, led) == 0
    for i in (0, 0, 1, 2, 2):
        led.acquire(i)
    assert pol.choose(SPEC, led) is None  # everything full


def test_least_loaded_skips_drained_sites():
    led = _ledger((2, 2))
    led.drain(0)
    assert LeastLoaded().choose(SPEC, led) == 1


def test_locality_affine_prefers_home_until_full():
    led = _ledger((1, 1, 1))
    pol = LocalityAffine()
    home = pol.home(SPEC, led)
    assert pol.choose(SPEC, led) == home
    led.acquire(home)
    # Home full: falls back to the least-loaded other site.
    fallback = pol.choose(SPEC, led)
    assert fallback is not None and fallback != home
    # Different profiles may hash to different homes, deterministically.
    other = ScenarioSpec(name="t", profile="transatlantic", participants=1)
    assert pol.home(other, _ledger((1, 1, 1))) == pol.home(
        other, _ledger((1, 1, 1))
    )


def test_power_of_two_is_seeded_and_respects_room():
    led = _ledger((3, 3, 3))
    led.acquire(0)
    picks_a = [PowerOfTwoChoices(seed=5).choose(SPEC, _copy(led))
               for _ in range(1)]
    picks_b = [PowerOfTwoChoices(seed=5).choose(SPEC, _copy(led))
               for _ in range(1)]
    assert picks_a == picks_b  # deterministic under the seed
    pol = PowerOfTwoChoices(seed=1)
    seen = set()
    for _ in range(20):
        choice = pol.choose(SPEC, led)
        assert choice in (0, 1, 2)
        seen.add(choice)
    assert len(seen) > 1  # actually samples, not a constant
    # Single site with room: that one, no sampling needed.
    led2 = _ledger((1, 1))
    led2.acquire(0)
    assert PowerOfTwoChoices(seed=3).choose(SPEC, led2) == 1
    led2.acquire(1)
    assert PowerOfTwoChoices(seed=3).choose(SPEC, led2) is None


def _copy(led):
    out = CapacityLedger()
    for i in led.sites():
        out.register_site(i, led.slots(i))
        for _ in range(led.inflight(i)):
            out.acquire(i)
    return out


def test_power_of_two_prefers_less_loaded_of_the_pair():
    led = _ledger((4, 4))
    led.acquire(0)
    led.acquire(0)
    led.acquire(0)
    pol = PowerOfTwoChoices(seed=0)
    # Only two sites: every sample is {0, 1}; 1 is always less loaded.
    for _ in range(10):
        assert pol.choose(SPEC, led) == 1


def test_make_policy_registry():
    assert isinstance(make_policy("least-loaded"), LeastLoaded)
    assert isinstance(make_policy("locality"), LocalityAffine)
    assert isinstance(make_policy("p2c", seed=9), PowerOfTwoChoices)
    with pytest.raises(LoadError):
        make_policy("random-forest")
