"""The resumable JSONL results store: atomicity, resume, damage modes."""

import json

import pytest

from repro.campaign import AxisPoint, CampaignSpec, ResultStore
from repro.errors import CampaignError


def tiny_spec(seed=3, name="t"):
    return CampaignSpec(
        name=name, seed=seed,
        scenarios=[AxisPoint("s")], arrivals=[AxisPoint("a")],
        faults=[AxisPoint("f")], policies=[AxisPoint("p")],
    )


def cell_record(cell_id, completed=1):
    return {
        "kind": "cell", "cell_id": cell_id, "index": 0, "seed": 1,
        "coords": {"scenario": "s", "arrival": "a", "faults": "f",
                   "policy": "p"},
        "report": {"sessions": 1, "completed": completed, "failed": 0,
                   "ops": 2, "timeouts": 0, "errors": 0,
                   "steer_p90_ms": 1.0},
        "verdict": {"invariant_violations": 0, "faults_applied": 0,
                    "recovery": {"recovered": 0, "impacted": 0}},
        "mergeable": {"steer": {"stats": {"n": 0, "mean": 0.0, "m2": 0.0,
                                          "min": None, "max": None},
                                "sample": []}},
        "perf": {"wall_seconds": 0.1},
    }


def test_header_then_cells_atomic_no_tmp_left(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec())
    store.append(cell_record("s/a/f/p"))
    assert not list(tmp_path.glob("*.tmp"))
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    head = json.loads(lines[0])
    assert head["kind"] == "header" and head["campaign"] == "t"
    assert json.loads(lines[1])["cell_id"] == "s/a/f/p"
    # Reload sees the same state.
    again = ResultStore(path)
    assert again.completed_ids() == {"s/a/f/p"}
    assert again.spec().to_dict() == tiny_spec().to_dict()


def test_append_requires_header_and_refuses_duplicates(tmp_path):
    store = ResultStore(tmp_path / "c.jsonl")
    with pytest.raises(CampaignError):
        store.append(cell_record("x"))
    store.ensure_header(tiny_spec())
    store.append(cell_record("x"))
    with pytest.raises(CampaignError):
        store.append(cell_record("x"))
    with pytest.raises(CampaignError):
        store.append({"kind": "cell"})  # no cell_id


def test_torn_trailing_line_is_dropped_and_rerunnable(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec())
    store.append(cell_record("one"))
    store.append(cell_record("two"))
    # Simulate a kill mid-write by an interrupted (non-atomic) writer.
    path.write_text(path.read_text() + '{"kind": "cell", "cell_id": "thr')
    survivor = ResultStore(path)
    assert survivor.dropped_lines == 1
    assert survivor.completed_ids() == {"one", "two"}
    # The store stays writable: the torn cell simply reruns.
    survivor.append(cell_record("three"))
    assert ResultStore(path).completed_ids() == {"one", "two", "three"}


def test_corrupt_interior_line_is_refused(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec())
    store.append(cell_record("one"))
    store.append(cell_record("two"))
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:10]  # damage a *non*-trailing record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CampaignError, match="non-trailing"):
        ResultStore(path)


def test_header_mismatch_is_refused(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec(seed=3))
    with pytest.raises(CampaignError, match="refusing to mix"):
        ResultStore(path).ensure_header(tiny_spec(seed=4))
    with pytest.raises(CampaignError, match="refusing to mix"):
        ResultStore(path).ensure_header(tiny_spec(name="other"))
    # Matching spec resumes fine.
    ResultStore(path).ensure_header(tiny_spec(seed=3))


def test_headerless_file_is_refused(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps(cell_record("x")) + "\n")
    with pytest.raises(CampaignError, match="header"):
        ResultStore(path)


def quarantine_record(cell_id):
    return {
        "kind": "quarantine", "cell_id": cell_id, "index": 0, "seed": 1,
        "coords": {"scenario": "s", "arrival": "a", "faults": "f",
                   "policy": "p"},
        "reason": "timeout", "attempts": 3,
        "failures": [{"attempt": i, "reason": "timeout",
                      "detail": {"max_cell_seconds": 1.0}}
                     for i in (1, 2, 3)],
    }


def test_quarantine_records_round_trip_and_settle(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec())
    store.append(cell_record("good"))
    store.append_quarantine(quarantine_record("poison"))
    assert store.completed_ids() == {"good"}
    assert store.quarantined_ids() == {"poison"}
    assert store.settled_ids() == {"good", "poison"}
    assert len(store) == 1  # quarantines are not results
    # Round trip through disk.
    again = ResultStore(path)
    assert again.settled_ids() == {"good", "poison"}
    [q] = again.quarantine_records()
    assert q["reason"] == "timeout" and len(q["failures"]) == 3
    # A quarantined cell can never be double-settled, in either kind.
    with pytest.raises(CampaignError, match="duplicate"):
        again.append(cell_record("poison"))
    with pytest.raises(CampaignError, match="duplicate"):
        again.append_quarantine(quarantine_record("good"))
    # Kind mismatches are refused.
    with pytest.raises(CampaignError, match="kind"):
        again.append(quarantine_record("other"))
    with pytest.raises(CampaignError, match="kind"):
        again.append_quarantine(cell_record("other"))


def test_unknown_record_kind_is_refused_on_load(tmp_path):
    path = tmp_path / "c.jsonl"
    store = ResultStore(path)
    store.ensure_header(tiny_spec())
    path.write_text(
        path.read_text()
        + json.dumps({"kind": "mystery", "cell_id": "x"}) + "\n"
    )
    with pytest.raises(CampaignError, match="neither a"):
        ResultStore(path)


def test_fsync_escape_hatch_writes_identical_bytes(tmp_path):
    durable = ResultStore(tmp_path / "durable.jsonl")
    fast = ResultStore(tmp_path / "fast.jsonl", fsync=False)
    assert durable.fsync and not fast.fsync
    for store in (durable, fast):
        store.ensure_header(tiny_spec())
        store.append(cell_record("one"))
        store.append_quarantine(quarantine_record("two"))
    assert (tmp_path / "durable.jsonl").read_text() == \
        (tmp_path / "fast.jsonl").read_text()
    assert not list(tmp_path.glob("*.tmp"))
