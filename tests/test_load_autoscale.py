"""Reactive autoscaler: grow on depth, drain idle, respect bounds."""

from types import SimpleNamespace

import pytest

from repro.des import Environment
from repro.errors import LoadError
from repro.fleet import FleetTelemetry
from repro.fleet.spec import ScenarioSpec
from repro.load import (
    AdmissionController,
    CapacityLedger,
    ReactiveAutoscaler,
    SloClass,
    TraceArrivals,
)

PATIENT = SloClass("patient", priority=0, wait_slo=30.0, patience=200.0)


class FakeElasticDriver:
    """FleetDriver stand-in with add_site/add_registry_shard."""

    def __init__(self, env, n_sites=1, service_time=5.0, site_slots=1):
        self.env = env
        self.telemetry = FleetTelemetry()
        self.service_time = service_time
        self.site_slots = site_slots
        self.sites = [self._mk_site(i) for i in range(n_sites)]
        self.launched = []
        self.shards_added = 0

    def _mk_site(self, i):
        return SimpleNamespace(
            index=i, tsi=SimpleNamespace(
                queue=SimpleNamespace(capacity=self.site_slots)
            ),
        )

    def add_site(self, queue_slots=None):
        site = self._mk_site(len(self.sites))
        self.sites.append(site)
        return site

    def add_registry_shard(self):
        self.shards_added += 1

    def admit(self, spec, site=None, at=None):
        self.launched.append((self.env.now, spec.name, site))
        return self.env.process(self._serve(spec))

    def _serve(self, spec):
        yield self.env.timeout(self.service_time)
        self.telemetry.session(spec.name).mark_completed(self.env.now)


def _world(n_sites=1, service_time=5.0, queue_limit=32):
    env = Environment()
    driver = FakeElasticDriver(env, n_sites=n_sites,
                               service_time=service_time)
    ledger = CapacityLedger()
    for site in driver.sites:
        ledger.register_site(site.index, 1)
    ctl = AdmissionController(driver, ledger=ledger, queue_limit=queue_limit,
                              classifier=lambda s: PATIENT)
    return env, driver, ctl


def _burst(n, at=0.0):
    return TraceArrivals(
        [at] * n,
        suite=[ScenarioSpec(name="p", participants=1, duration=1.0,
                            cadence=0.5)],
        prefix="z",
    )


def test_scaler_grows_under_backlog_and_drains_when_idle():
    env, driver, ctl = _world(n_sites=1, service_time=5.0)
    scaler = ReactiveAutoscaler(ctl, max_sites=4, high_depth=2, low_depth=0,
                                interval=1.0, cooldown=0.0)
    ctl.feed(_burst(8))
    env.run(until=60.0)
    grow = [e for e in scaler.events if e[1] == "grow"]
    drain = [e for e in scaler.events if e[1] == "drain"]
    assert grow, "backlog should have triggered growth"
    assert len(driver.sites) <= 4
    assert ctl.telemetry.scale_ups == len(grow)
    # After the burst drains, the scaler-built sites are drained again.
    assert drain and ctl.telemetry.scale_downs == len(drain)
    added = set(scaler.added_sites)
    assert all(idx in added for _, _, idx in drain)
    # The base site (index 0) is never drained.
    assert not ctl.ledger.is_drained(0)
    # All eight sessions were eventually served.
    assert ctl.telemetry.admitted == 8
    assert driver.shards_added == len(set(i for _, _, i in grow))


def test_scaler_reopens_drained_site_before_building_new():
    env, driver, ctl = _world(n_sites=1, service_time=3.0)
    scaler = ReactiveAutoscaler(ctl, max_sites=3, high_depth=2, low_depth=0,
                                interval=1.0, cooldown=0.0)

    def traffic():
        # Wave one: force growth.
        for i in range(4):
            ctl.offer(ScenarioSpec(name=f"w1-{i}", participants=1,
                                   duration=1.0, cadence=0.5))
        yield env.timeout(30.0)  # drain back down
        for i in range(4):
            ctl.offer(ScenarioSpec(name=f"w2-{i}", participants=1,
                                   duration=1.0, cadence=0.5))

    env.process(traffic())
    env.run(until=80.0)
    grows = [e for e in scaler.events if e[1] == "grow"]
    drains = [e for e in scaler.events if e[1] == "drain"]
    assert len(grows) >= 2 and drains
    # Wave two reuses a previously drained site: the site count did not
    # keep climbing past what wave one built.
    built = {i for _, _, i in grows}
    assert len(driver.sites) == 1 + len(built - {0})


def test_scaler_respects_max_sites():
    env, driver, ctl = _world(n_sites=1, service_time=50.0)
    ReactiveAutoscaler(ctl, max_sites=2, high_depth=1, low_depth=0,
                       interval=0.5, cooldown=0.0)
    ctl.feed(_burst(12))
    env.run(until=30.0)
    assert len(driver.sites) <= 2


def test_scaler_validation():
    env, driver, ctl = _world(n_sites=2)
    with pytest.raises(LoadError):
        ReactiveAutoscaler(ctl, max_sites=1)  # below the base fabric
    with pytest.raises(LoadError):
        ReactiveAutoscaler(ctl, max_sites=4, high_depth=2, low_depth=2)
    with pytest.raises(LoadError):
        ReactiveAutoscaler(ctl, max_sites=4, interval=0.0)


def test_cooldown_throttles_actions():
    env, driver, ctl = _world(n_sites=1, service_time=50.0)
    scaler = ReactiveAutoscaler(ctl, max_sites=8, high_depth=1, low_depth=0,
                                interval=1.0, cooldown=10.0)
    ctl.feed(_burst(16))
    env.run(until=15.0)
    # 15 virtual seconds with a 10s cooldown: at most two scale actions.
    assert len(scaler.events) <= 2
