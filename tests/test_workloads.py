"""Workload/profile/cost-model tests."""

import pytest

from repro.workloads import (
    CONFERENCE_FLOOR,
    DESKTOP_BUDGET,
    LAN,
    SUPERJANET,
    TRANSATLANTIC,
    VR_BUDGET,
    FeedbackLoopModel,
    realitygrid_testbed,
    sc03_showfloor,
)


def test_profile_one_way_and_rtt():
    assert SUPERJANET.one_way(0) == pytest.approx(0.008)
    # 1 MB at 155 Mbit/s ~ 51.6 ms + 8 ms
    assert SUPERJANET.one_way(1_000_000) == pytest.approx(0.0596, rel=0.02)
    assert LAN.round_trip() < 0.001


def test_remote_loop_breaks_vr_budget_on_wan_even_without_render():
    """The section 4.2 argument, quantitatively: communication +
    (de)compression alone exceed the 10-15 fps budget on WAN links."""
    model = FeedbackLoopModel()
    # A CAVE redraws stereo pairs: 1024x768 RGB x 2 eyes ~ 4.7 MB raw.
    frame = 1024 * 768 * 3 * 2
    for profile in (SUPERJANET, TRANSATLANTIC):
        t = model.remote_loop_time(profile, frame, include_render=False)
        assert t > VR_BUDGET, profile.name
    assert model.remote_loop_time(TRANSATLANTIC, frame) > VR_BUDGET


def test_local_loop_holds_vr_budget():
    model = FeedbackLoopModel()
    assert model.local_loop_time() < VR_BUDGET


def test_remote_loop_can_hold_desktop_budget_on_lan():
    model = FeedbackLoopModel()
    frame = 320 * 240 * 3
    assert model.remote_loop_time(LAN, frame) < DESKTOP_BUDGET


def test_breakdown_sums_to_total():
    model = FeedbackLoopModel()
    b = model.remote_loop_breakdown(CONFERENCE_FLOOR, 230_400)
    assert b["total"] == pytest.approx(
        sum(v for k, v in b.items() if k != "total")
    )
    assert b["transmit"] > 0 and b["compress"] > 0


def test_realitygrid_testbed_topology():
    env, net = realitygrid_testbed()
    assert set(net.hosts) == {"ucl-onyx", "man-bezier", "floor-laptop", "anl-ag"}
    # compute site is firewalled to the gateway port only
    assert not net.host("ucl-onyx").accepts_inbound(9999)
    assert net.host("ucl-onyx").accepts_inbound(4433)
    link = net.link("ucl-onyx", "man-bezier")
    assert link.latency == pytest.approx(0.008)


def test_sc03_showfloor_with_cave():
    env, net, names = sc03_showfloor(n_sites=3, cave=True)
    assert len(names) == 4 and "hlrs-cave" in names
    cave = net.host("hlrs-cave")
    assert not cave.multicast and not cave.firewall.allow_multicast
