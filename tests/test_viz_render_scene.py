"""Renderer and scene-graph tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz import Camera, Geometry, Renderer, SceneGraph
from repro.viz.isosurface import isosurface


def test_camera_project_center():
    cam = Camera(eye=np.array([0.0, -5.0, 0.0]), target=np.zeros(3),
                 up=np.array([0.0, 0.0, 1.0]))
    xy, depth = cam.project(np.zeros((1, 3)), 100, 100)
    assert xy[0, 0] == pytest.approx(49.5, abs=1.0)
    assert xy[0, 1] == pytest.approx(49.5, abs=1.0)
    assert depth[0] == pytest.approx(5.0)


def test_camera_behind_near_plane_culled():
    cam = Camera(eye=np.array([0.0, -5.0, 0.0]), target=np.zeros(3))
    _, depth = cam.project(np.array([[0.0, -10.0, 0.0]]), 64, 64)
    assert np.isinf(depth[0])


def test_camera_state_roundtrip():
    cam = Camera()
    cam.orbit(0.7)
    state = cam.state()
    cam2 = Camera()
    cam2.apply_state(state)
    np.testing.assert_allclose(cam2.eye, cam.eye)
    assert cam2.fov_deg == cam.fov_deg


def test_camera_orbit_preserves_distance():
    cam = Camera(eye=np.array([2.0, 0.0, 1.0]), target=np.zeros(3))
    d0 = np.linalg.norm(cam.eye - cam.target)
    cam.orbit(1.1)
    assert np.linalg.norm(cam.eye - cam.target) == pytest.approx(d0)


def test_draw_points_writes_pixels():
    r = Renderer(64, 64)
    r.camera = Camera(eye=np.array([0.0, -3.0, 0.0]), target=np.zeros(3))
    n = r.draw_points(np.zeros((1, 3)), colors=np.array([[255, 0, 0]], dtype=np.uint8))
    assert n == 1
    assert (r.fb.color == np.array([255, 0, 0])).all(axis=2).any()


def test_draw_points_z_buffer_near_wins():
    r = Renderer(64, 64)
    r.camera = Camera(eye=np.array([0.0, -3.0, 0.0]), target=np.zeros(3))
    pts = np.array([[0.0, 0.0, 0.0], [0.0, -1.0, 0.0]])  # second is nearer
    cols = np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8)
    r.draw_points(pts, colors=cols)
    green_pixels = (r.fb.color == np.array([0, 255, 0])).all(axis=2).sum()
    assert green_pixels >= 1
    # at the shared pixel the near (green) point must have won
    ys, xs = np.nonzero((r.fb.color != 0).any(axis=2))
    for y, x in zip(ys, xs):
        if r.fb.depth[y, x] == pytest.approx(2.0):
            assert tuple(r.fb.color[y, x]) == (0, 255, 0)


def test_draw_triangles_fills_area():
    r = Renderer(64, 64)
    r.camera = Camera(eye=np.array([0.0, -3.0, 0.0]), target=np.zeros(3))
    verts = np.array([[-1, 0, -1], [1, 0, -1], [0, 0, 1.5]], dtype=float)
    r.draw_triangles(verts, np.array([[0, 1, 2]]))
    filled = (r.fb.color.sum(axis=2) > 0).sum()
    assert filled > 100


def test_draw_lines_shape_validation():
    r = Renderer(32, 32)
    with pytest.raises(ReproError):
        r.draw_lines(np.zeros((3, 3)))


def test_render_isosurface_end_to_end():
    n = 16
    ax = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    field = np.sqrt(x**2 + y**2 + z**2) - 0.6
    verts, faces = isosurface(field, 0.0, spacing=(2.0 / (n - 1),) * 3,
                              origin=(-1.0, -1.0, -1.0))
    r = Renderer(80, 60)
    r.camera = Camera(eye=np.array([0.0, -3.0, 0.0]), target=np.zeros(3))
    r.draw_triangles(verts, faces)
    assert (r.fb.color.sum(axis=2) > 0).mean() > 0.02


def test_geometry_validation_and_bytes():
    with pytest.raises(ReproError):
        Geometry("blobs", np.zeros((3, 3)))
    with pytest.raises(ReproError):
        Geometry("triangles", np.zeros((3, 3)))
    g = Geometry("points", np.zeros((10, 3)))
    assert g.nbytes == 240


def test_geometry_content_hash_changes_with_content():
    a = Geometry("points", np.zeros((4, 3)))
    b = Geometry("points", np.ones((4, 3)))
    assert a.content_hash() != b.content_hash()
    assert a.content_hash() == Geometry("points", np.zeros((4, 3))).content_hash()


def test_scene_graph_add_walk_remove():
    sg = SceneGraph()
    sg.add_node("fluid")
    sg.add_node("iso", parent="fluid")
    names = [n.name for n in sg.root.walk()]
    assert names == ["root", "fluid", "iso"]
    sg.remove_node("fluid")
    assert [n.name for n in sg.root.walk()] == ["root"]
    with pytest.raises(ReproError):
        sg.node("iso")


def test_scene_graph_duplicate_and_missing():
    sg = SceneGraph()
    sg.add_node("a")
    with pytest.raises(ReproError):
        sg.add_node("a")
    with pytest.raises(ReproError):
        sg.add_node("b", parent="zzz")
    with pytest.raises(ReproError):
        sg.remove_node("root")


def test_scene_graph_content_hash_site_agreement():
    def build():
        sg = SceneGraph()
        sg.add_node("iso", Geometry("points", np.arange(12, dtype=float).reshape(4, 3)))
        sg.add_node("box", Geometry("points", np.zeros((2, 3))))
        return sg

    assert build().content_hash() == build().content_hash()
    other = build()
    other.set_geometry("iso", Geometry("points", np.ones((4, 3))))
    assert other.content_hash() != build().content_hash()


def test_scene_graph_geometry_bytes_and_avatars():
    sg = SceneGraph()
    sg.add_node("mesh", Geometry("points", np.zeros((100, 3))))
    assert sg.total_geometry_bytes() == 2400
    sg.upsert_avatar("manchester", [1, 0, 0], [0, 1, 0])
    sg.upsert_avatar("manchester", [2, 0, 0], [0, 1, 0])
    assert len(sg.avatars) == 1
    np.testing.assert_array_equal(sg.avatars["manchester"].position, [2, 0, 0])
    r = Renderer(32, 32)
    r.camera = Camera(eye=np.array([2.0, -3.0, 0.0]), target=np.array([2.0, 0.0, 0.0]))
    sg.render_into(r)
    assert (r.fb.color == np.array([255, 255, 0])).all(axis=2).any()
    sg.drop_avatar("manchester")
    assert not sg.avatars
