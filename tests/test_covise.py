"""COVISE tests: data objects, SDS, CRB, pipelines, collaboration."""

import numpy as np
import pytest

from repro.des import Environment
from repro.errors import CoviseError
from repro.covise import (
    CollaborativeCovise,
    CuttingPlaneModule,
    MapEditor,
    PipelineError,
    PolygonData,
    RequestBroker,
    ScalarField2D,
    SharedDataSpace,
    UniformScalarField,
)
from repro.covise.dataobj import ImageData
from repro.net import Network


def make_field(n=12):
    ax = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return (x**2 + y**2 + z**2).astype(np.float64)


def fresh_net(hosts=("a", "b")):
    env = Environment()
    net = Network(env)
    for h in hosts:
        net.add_host(h)
    if len(hosts) >= 2:
        for h in hosts[1:]:
            net.add_link(hosts[0], h, latency=0.01, bandwidth=1e6)
    return env, net


# -- data objects / SDS / CRB -----------------------------------------------------


def test_data_object_validation():
    with pytest.raises(CoviseError):
        UniformScalarField("x", np.zeros((3, 3)))
    with pytest.raises(CoviseError):
        ScalarField2D("x", np.zeros(5))
    with pytest.raises(CoviseError):
        PolygonData("x", np.zeros((3, 2)), np.zeros((1, 3), dtype=np.intp))
    with pytest.raises(CoviseError):
        ImageData("x", np.zeros((4, 4)))
    with pytest.raises(CoviseError):
        UniformScalarField("", np.zeros((2, 2, 2)))


def test_sds_unique_names_and_lifecycle():
    sds = SharedDataSpace("hostA")
    n1 = sds.unique_name("field")
    n2 = sds.unique_name("field")
    assert n1 != n2
    obj = UniformScalarField(n1, np.zeros((4, 4, 4)))
    sds.put(obj, creator="test")
    assert sds.get(n1) is obj
    assert sds.bytes_stored == obj.nbytes
    with pytest.raises(CoviseError):
        sds.put(UniformScalarField(n1, np.zeros((2, 2, 2))))
    sds.delete(n1)
    assert sds.bytes_stored == 0
    with pytest.raises(CoviseError):
        sds.get(n1)


def test_crb_transfer_costs_time_and_converts():
    env, net = fresh_net()
    spaces = {"a": SharedDataSpace("a"), "b": SharedDataSpace("b")}
    crb = RequestBroker(net, spaces, platform_dtype={"b": "float32"})
    field = UniformScalarField("obj-1", make_field(16))  # 16^3*8 = 32768 B
    spaces["a"].put(field)
    result = {}

    def proc():
        t0 = env.now
        replica = yield from crb.transfer("obj-1", "a", "b")
        result["elapsed"] = env.now - t0
        result["replica"] = replica

    env.process(proc())
    env.run()
    # 32768 B over 1e6 B/s + 10 ms latency ~ 42.8 ms
    assert result["elapsed"] == pytest.approx(0.0428, rel=0.05)
    assert result["replica"].field.dtype == np.float32
    assert spaces["b"].exists("obj-1")
    assert crb.bytes_transferred == field.nbytes


def test_crb_same_host_transfer_is_free():
    env, net = fresh_net()
    spaces = {"a": SharedDataSpace("a")}
    crb = RequestBroker(net, spaces)
    spaces["a"].put(UniformScalarField("o", make_field(8)))
    result = {}

    def proc():
        t0 = env.now
        obj = yield from crb.transfer("o", "a", "a")
        result["elapsed"] = env.now - t0
        result["same"] = obj is spaces["a"].get("o")

    env.process(proc())
    env.run()
    assert result == {"elapsed": 0.0, "same": True}


# -- pipeline ------------------------------------------------------------------


def build_map(net, host_src="a", host_render="a"):
    editor = MapEditor(net)
    editor.add_source("read", host_src, lambda: make_field(12))
    editor.add("CuttingPlane", "cut", host_src, resolution=24)
    editor.add("IsoSurface", "iso", host_src, level=0.5)
    editor.add("Colors", "col", host_src)
    editor.add("Collect", "group", host_render)
    editor.add("Renderer", "render", host_render)
    editor.connect("read", "field", "cut", "field")
    editor.connect("read", "field", "iso", "field")
    editor.connect("cut", "plane", "col", "plane")
    editor.connect("iso", "surface", "group", "surface")
    editor.connect("col", "image", "group", "image")
    editor.connect("iso", "surface", "render", "surface")
    return editor


def test_pipeline_executes_in_topology_order():
    env, net = fresh_net()
    editor = build_map(net)
    ctl = editor.controller
    order = ctl.topology_order()
    assert order.index("read") < order.index("cut") < order.index("col")
    assert order.index("iso") < order.index("render")
    result = {}

    def proc():
        outputs = yield from ctl.execute()
        result["outputs"] = outputs

    env.process(proc())
    env.run()
    plane = ctl.output_object("cut", "plane")
    assert isinstance(plane, ScalarField2D)
    surface = ctl.output_object("iso", "surface")
    assert isinstance(surface, PolygonData) and len(surface.faces) > 0
    frame = ctl.output_object("render", "frame")
    assert frame.pixels.shape == (120, 160, 3)


def test_distributed_pipeline_ships_objects_through_crb():
    env, net = fresh_net()
    editor = build_map(net, host_src="a", host_render="b")
    ctl = editor.controller

    def proc():
        yield from ctl.execute()

    env.process(proc())
    env.run()
    assert ctl.crb.transfers >= 1
    assert ctl.crb.bytes_transferred > 0
    # The renderer host has its replica of the surface.
    assert any("iso" in n for n in ctl.spaces["b"].names())


def test_pipeline_wiring_validation():
    env, net = fresh_net()
    editor = MapEditor(net)
    editor.add_source("read", "a", lambda: make_field(8))
    editor.add("CuttingPlane", "cut", "a")
    with pytest.raises(PipelineError):
        editor.connect("read", "nope", "cut", "field")
    with pytest.raises(PipelineError):
        editor.connect("read", "field", "cut", "nope")
    editor.connect("read", "field", "cut", "field")
    with pytest.raises(PipelineError):
        editor.connect("read", "field", "cut", "field")  # port taken
    with pytest.raises(PipelineError):
        editor.add("Mystery", "m", "a")
    with pytest.raises(PipelineError):
        editor.controller.add_module(CuttingPlaneModule("cut"), "a")


def test_module_param_validation():
    m = CuttingPlaneModule("cut")
    m.set_param("resolution", 32)
    with pytest.raises(PipelineError):
        m.set_param("bogus", 1)


def test_unconnected_input_detected_at_execute():
    env, net = fresh_net()
    editor = MapEditor(net)
    editor.add("CuttingPlane", "cut", "a")  # field input never connected

    def proc():
        yield from editor.controller.execute()

    env.process(proc())
    with pytest.raises(PipelineError, match="missing input"):
        env.run()


def test_map_spec_replication_produces_identical_content():
    env, net = fresh_net(hosts=("a", "b"))
    editor = build_map(net)
    spec = editor.spec()
    replica = MapEditor.replicate(net, spec, "b", {"read": lambda: make_field(12)})
    result = {}

    def proc():
        yield from editor.controller.execute()
        yield from replica.controller.execute()
        a = editor.controller.output_object("cut", "plane")
        b = replica.controller.output_object("cut", "plane")
        result["equal"] = np.array_equal(a.values, b.values)

    env.process(proc())
    env.run()
    assert result["equal"]


def test_replicate_requires_sources():
    env, net = fresh_net()
    editor = build_map(net)
    with pytest.raises(PipelineError, match="source"):
        MapEditor.replicate(net, editor.spec(), "b", {})


# -- collaborative sessions -----------------------------------------------------


def collab_session(n_sites=3, bandwidth=1e6, latency=0.02):
    env = Environment()
    net = Network(env)
    hosts = [f"site{i}" for i in range(n_sites)]
    for h in hosts:
        net.add_host(h)
    for i in range(n_sites):
        for j in range(i + 1, n_sites):
            net.add_link(hosts[i], hosts[j], latency=latency, bandwidth=bandwidth)
    # Build the map spec on a scratch network; replication re-places every
    # module on each participating site's own host.
    _, scratch = fresh_net()
    spec = build_map(scratch).spec()
    sources = {h: {"read": lambda: make_field(12)} for h in hosts}
    session = CollaborativeCovise(
        net, spec, {h: h for h in hosts}, sources, watch=("cut", "plane")
    )
    return env, net, session


def test_all_sites_converge_to_identical_content():
    env, net, session = collab_session(3)
    result = {}

    def proc():
        yield from session.execute_all()
        report = yield from session.change_parameter(
            "cut", "point", (0.3, 0.0, 0.0), mode="parameter"
        )
        result["report"] = report

    env.process(proc())
    env.run()
    report = result["report"]
    assert report["digests_agree"] is True
    assert report["mode"] == "parameter"
    assert report["wan_bytes"] == 2 * 256  # two remote sites, tiny messages


def test_content_mode_ships_data_volume():
    env, net, session = collab_session(3)
    result = {}

    def proc():
        yield from session.execute_all()
        report = yield from session.change_parameter(
            "cut", "point", (0.3, 0.0, 0.0), mode="content"
        )
        result["report"] = report

    env.process(proc())
    env.run()
    report = result["report"]
    assert report["digests_agree"] is True
    # Content mode ships the actual plane (values + coords): 24x24 floats
    # plus coords per remote site — over 30x the parameter messages.
    assert report["wan_bytes"] > 30 * 2 * 256


def test_parameter_mode_skew_smaller_than_content_mode_on_slow_wan():
    """The section 4.3 claim: parameter sync keeps sites synchronous;
    streaming content over a slow WAN spreads them out."""
    skews = {}
    for mode in ("parameter", "content"):
        env, net, session = collab_session(3, bandwidth=2e5)  # slow WAN
        result = {}

        def proc():
            yield from session.execute_all()
            report = yield from session.change_parameter(
                "cut", "point", (0.2, 0.1, 0.0), mode=mode
            )
            result["report"] = report

        env.process(proc())
        env.run()
        skews[mode] = result["report"]["skew"]
    assert skews["content"] > 2 * skews["parameter"]


def test_collab_validation():
    env = Environment()
    net = Network(env)
    net.add_host("x")
    with pytest.raises(CoviseError):
        CollaborativeCovise(net, [], {}, {})
    with pytest.raises(CoviseError):
        CollaborativeCovise(net, [], {"x": "x"}, {"x": {}}, master="nope")
