"""ScenarioSpec validation and the fleet generators."""

import pytest

from repro.errors import SteeringError
from repro.fleet import (
    SIM_KINDS,
    ScenarioSpec,
    fleet_of,
    make_sim,
    paper_suite,
    sweep_scenarios,
)
from repro.sims.base import Simulation


def test_defaults_are_valid_and_steps_computed():
    spec = ScenarioSpec(name="one")
    assert spec.sim == "lb3d"
    # Step budget outlives the steering loop by a comfortable margin.
    assert spec.steps * spec.compute_time > spec.duration + 5.0
    assert spec.n_ops == int(spec.duration / spec.cadence)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"sim": "weather"},
        {"profile": "carrier-pigeon"},
        {"participants": 0},
        {"cadence": 0.0},
        {"duration": -1.0},
        {"steps": 0},
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(SteeringError):
        ScenarioSpec(name="bad", **kwargs)


@pytest.mark.parametrize("kind", SIM_KINDS)
def test_make_sim_builds_every_kind_with_steer_plan(kind):
    spec = ScenarioSpec(name=f"x-{kind}", sim=kind)
    sim = spec.make_sim()
    assert isinstance(sim, Simulation)
    # The steer plan targets a real steerable parameter and applies clean.
    assert spec.steer_param in sim.steerable_parameters()
    sim.set_parameter(spec.steer_param, spec.steer_value(0))
    sim.step()


def test_make_sim_unknown_kind():
    with pytest.raises(SteeringError):
        make_sim("weather")


def test_paper_suite_covers_all_sims():
    suite = paper_suite()
    assert sorted(s.sim for s in suite) == sorted(SIM_KINDS)
    assert len({s.name for s in suite}) == len(suite)


def test_sweep_is_full_cross_product():
    specs = sweep_scenarios(sims=("lb3d", "crowd"),
                            profiles=("campus", "dsl"))
    assert {(s.sim, s.profile) for s in specs} == {
        ("lb3d", "campus"), ("lb3d", "dsl"),
        ("crowd", "campus"), ("crowd", "dsl"),
    }


def test_fleet_of_names_offsets_and_cycling():
    specs = fleet_of(10, stagger=0.5)
    assert len(specs) == 10
    assert len({s.name for s in specs}) == 10
    assert [s.admission_offset for s in specs] == [i * 0.5 for i in range(10)]
    # Cycles the paper suite: all four sims appear.
    assert {s.sim for s in specs} == set(SIM_KINDS)
    with pytest.raises(SteeringError):
        fleet_of(0)


def test_fleet_of_overrides_propagate():
    specs = fleet_of(3, duration=2.0, cadence=0.5, participants=1)
    assert all(s.duration == 2.0 and s.n_ops == 4 for s in specs)


def test_fleet_of_rederives_steps_for_duration_overrides():
    # A longer duration must not inherit the prototype's shorter step
    # budget: the app would exit mid-session.
    specs = fleet_of(2, duration=60.0)
    for s in specs:
        assert s.steps * s.compute_time > s.duration + 5.0
    # An explicit steps override still wins.
    explicit = fleet_of(2, duration=60.0, steps=7)
    assert all(s.steps == 7 for s in explicit)
    # A custom suite's hand-set steps survive when nothing it depends
    # on is overridden.
    suite = [ScenarioSpec(name="proto", steps=42)]
    assert all(s.steps == 42 for s in fleet_of(2, suite=suite))
