"""OGSA layer tests: envelopes, handles, container, registry, services."""

import pytest

from repro.des import Environment
from repro.errors import OgsaError, ServiceNotFound
from repro.net import Network
from repro.ogsa import (
    GridService,
    GridServiceHandle,
    HandleResolver,
    OgsaSteeringClient,
    OgsiLiteContainer,
    RegistryService,
    ServiceConnection,
    SteeringService,
    VisualizationService,
    envelope,
    open_envelope,
    operation,
)
from repro.ogsa.handles import GridServiceReference
from repro.sims import LatticeBoltzmann3D
from repro.steering import SteeredApplication, steered_app_process
from repro.net import SyncPipe
from repro.viz import decompress_frame


# -- envelopes / handles ---------------------------------------------------------


def test_envelope_roundtrip():
    env_msg = envelope("svc", "op", {"a": 1})
    service, op, body, fault = open_envelope(env_msg)
    assert (service, op, body, fault) == ("svc", "op", {"a": 1}, "")


def test_envelope_validation():
    with pytest.raises(OgsaError):
        open_envelope({"not": "an envelope"})
    with pytest.raises(OgsaError):
        open_envelope({"ns": "repro-ogsa/1.0", "header": {}, "body": {}})


def test_gsh_parse_and_str():
    h = GridServiceHandle.parse("gsh://man.ac.uk:8000/steer-lb3d")
    assert h.authority == "man.ac.uk:8000"
    assert h.service_id == "steer-lb3d"
    assert str(h) == "gsh://man.ac.uk:8000/steer-lb3d"
    for bad in ("http://x/y", "gsh://noslash", "gsh:///x", "gsh://a/"):
        with pytest.raises(OgsaError):
            GridServiceHandle.parse(bad)


def test_resolver_bind_resolve_rebind():
    r = HandleResolver()
    h = GridServiceHandle("auth", "svc")
    with pytest.raises(ServiceNotFound):
        r.resolve(h)
    r.bind(GridServiceReference(h, "host-a", 80, ("op1",)))
    assert r.resolve(h).host == "host-a"
    r.rebind(h, "host-b", 81)  # migration!
    ref = r.resolve(h)
    assert (ref.host, ref.port) == ("host-b", 81)
    assert ref.interface == ("op1",)


# -- container + basic service ---------------------------------------------------


class EchoService(GridService):
    @operation
    def echo(self, text: str = "") -> str:
        return text.upper()

    @operation
    def boom(self) -> None:
        raise ValueError("service bug")

    def hidden(self) -> str:  # not decorated: must not be invocable
        return "secret"


def grid():
    env = Environment()
    net = Network(env)
    net.add_host("server")
    net.add_host("client")
    net.add_link("server", "client", latency=0.005, bandwidth=10e6 / 8)
    return env, net


def test_container_deploy_and_invoke():
    env, net = grid()
    container = OgsiLiteContainer(net.host("server"), 8000)
    ref = container.deploy(EchoService("echo"))
    container.start()
    assert "echo" in ref.interface
    result = {}

    def client():
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        result["echo"] = yield from conn.invoke("echo", "echo", text="hi")
        with pytest.raises(OgsaError, match="service bug"):
            yield from conn.invoke("echo", "boom")
        with pytest.raises(OgsaError, match="no operation"):
            yield from conn.invoke("echo", "hidden")
        with pytest.raises(OgsaError, match="no such service"):
            yield from conn.invoke("ghost", "echo")
        result["sde"] = yield from conn.invoke("echo", "get_service_data")

    env.process(client())
    env.run(until=5.0)
    assert result["echo"] == "HI"
    assert isinstance(result["sde"], dict)
    assert container.faults_returned == 3


def test_container_duplicate_deploy_rejected():
    env, net = grid()
    container = OgsiLiteContainer(net.host("server"), 8000)
    container.deploy(EchoService("echo"))
    with pytest.raises(OgsaError):
        container.deploy(EchoService("echo"))


def test_service_lifetime_reaped():
    env, net = grid()
    container = OgsiLiteContainer(net.host("server"), 8000, reap_interval=1.0)
    svc = EchoService("short")
    container.deploy(svc)
    container.start()

    def client():
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        # Shorten the lifetime to 2 s, then outlive it.
        yield from conn.invoke("short", "request_termination_after", lifetime=2.0)
        yield env.timeout(5.0)
        with pytest.raises(OgsaError, match="no such service"):
            yield from conn.invoke("short", "echo", text="x")

    env.process(client())
    env.run(until=10.0)
    assert "short" not in container.deployed()
    assert container.reaped == 1


def test_registry_publish_find_unpublish():
    env, net = grid()
    container = OgsiLiteContainer(net.host("server"), 8000)
    container.deploy(RegistryService())
    container.start()
    result = {}

    def client():
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        yield from conn.invoke(
            "registry", "publish",
            handle="gsh://a/steer-lb3d",
            metadata={"type": "steering", "application": "LB3D"},
        )
        yield from conn.invoke(
            "registry", "publish",
            handle="gsh://a/steer-viz",
            metadata={"type": "viz-steering", "application": "LB3D"},
        )
        result["all"] = yield from conn.invoke("registry", "find", query={})
        result["steer"] = yield from conn.invoke(
            "registry", "find", query={"type": "steering"}
        )
        yield from conn.invoke("registry", "unpublish", handle="gsh://a/steer-lb3d")
        result["after"] = yield from conn.invoke(
            "registry", "find", query={"type": "steering"}
        )

    env.process(client())
    env.run(until=5.0)
    assert len(result["all"]) == 2
    assert [e["handle"] for e in result["steer"]] == ["gsh://a/steer-lb3d"]
    assert result["after"] == []


# -- steering service end-to-end ----------------------------------------------------


def steering_grid():
    """App on 'hpc', services on 'server', user on 'client'."""
    env = Environment()
    net = Network(env)
    for name in ("hpc", "server", "client"):
        net.add_host(name)
    net.add_link("hpc", "server", latency=0.008, bandwidth=100e6 / 8)
    net.add_link("server", "client", latency=0.02, bandwidth=10e6 / 8)
    net.add_link("hpc", "client", latency=0.025, bandwidth=10e6 / 8)

    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=0.5, seed=4)
    app = SteeredApplication(sim, name="lb3d", sample_interval=2)
    control_pipe = SyncPipe()
    sample_pipe = SyncPipe()
    app.attach_control(control_pipe.a)
    app.attach_sample_sink(sample_pipe.a)

    container = OgsiLiteContainer(net.host("server"), 8000)
    steer = SteeringService("steer-lb3d", control_pipe.b, application_name="LB3D")
    viz = VisualizationService("viz-lb3d", sample_pipe.b)
    registry = RegistryService()
    container.deploy(registry)
    ref_s = container.deploy(steer)
    ref_v = container.deploy(viz)
    container.start()

    resolver = HandleResolver()
    resolver.bind(ref_s)
    resolver.bind(ref_v)

    env.process(steered_app_process(env, app, compute_time=0.02))
    return env, net, app, container, resolver, (ref_s, ref_v), registry


def test_steering_service_set_param_and_status():
    env, net, app, container, resolver, (ref_s, _), _ = steering_grid()
    result = {}

    def user():
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        value = yield from conn.invoke(
            "steer-lb3d", "set_parameter", name="g", value=2.0
        )
        result["value"] = value
        status = yield from conn.invoke("steer-lb3d", "get_status")
        result["status"] = status
        with pytest.raises(OgsaError, match="rejected"):
            yield from conn.invoke(
                "steer-lb3d", "set_parameter", name="g", value=99.0
            )

    env.process(user())
    env.run(until=10.0)
    assert result["value"] == 2.0
    assert app.sim.g == 2.0
    assert result["status"]["parameters"]["g"] == 2.0
    assert result["status"]["step"] > 0


def test_viz_service_renders_compressed_frames():
    env, net, app, container, resolver, (_, ref_v), _ = steering_grid()
    result = {}

    def user():
        yield env.timeout(1.0)  # let samples flow
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        yield from conn.invoke(
            "viz-lb3d", "set_view", eye=[0.0, -3.0, 0.0], target=[0.0, 0.0, 0.0]
        )
        yield from conn.invoke("viz-lb3d", "set_iso_level", level=0.0)
        frame_info = yield from conn.invoke("viz-lb3d", "render_frame")
        result["frame"] = frame_info

    env.process(user())
    env.run(until=5.0)
    info = result["frame"]
    assert info["step"] > 0
    fb = decompress_frame(info["frame"])
    assert (fb.width, fb.height) == (320, 240)
    # VizServer economics: compressed frame smaller than the raw bitmap.
    assert len(info["frame"]) < info["raw_bytes"]


def test_full_fig2_workflow_registry_bind_steer():
    """The complete Figure 2 path: registry -> choose -> bind -> steer."""
    env, net, app, container, resolver, (ref_s, ref_v), _ = steering_grid()
    result = {}

    def user():
        client = OgsaSteeringClient(
            net.host("client"), resolver, "server", 8000
        )
        # Publish both services (normally the orchestrator does this).
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        yield from conn.invoke(
            "registry", "publish", handle=str(ref_s.handle),
            metadata={"type": "steering", "application": "LB3D"},
        )
        yield from conn.invoke(
            "registry", "publish", handle=str(ref_v.handle),
            metadata={"type": "viz-steering", "application": "LB3D"},
        )
        found = yield from client.find_services(application="LB3D")
        result["found"] = [e["handle"] for e in found]
        steer_handle = next(
            e["handle"] for e in found if e["metadata"]["type"] == "steering"
        )
        yield from client.bind(steer_handle)
        value = yield from client.invoke(steer_handle, "set_parameter",
                                         name="g", value=3.0)
        result["steered"] = value
        client.close()

    env.process(user())
    env.run(until=10.0)
    assert len(result["found"]) == 2
    assert result["steered"] == 3.0
    assert app.sim.g == 3.0


def test_dead_app_faults_service_not_container():
    env, net, app, container, resolver, (ref_s, _), _ = steering_grid()
    app.stopped = True  # the application dies; its loop exits
    steer = container.service("steer-lb3d")
    steer.reply_timeout = 0.5
    result = {}

    def user():
        yield env.timeout(0.5)  # ensure the app loop has exited
        conn = ServiceConnection(net.host("client"), "server", 8000)
        yield from conn.open()
        try:
            yield from conn.invoke("steer-lb3d", "set_parameter",
                                   name="g", value=1.0)
        except OgsaError as exc:
            result["fault"] = str(exc)
        # The container survives and serves other services.
        result["others"] = yield from conn.invoke("registry", "find", query={})

    env.process(user())
    env.run(until=10.0)
    assert "did not reply" in result["fault"]
    assert result["others"] == []
