"""Fleet telemetry: mergeable probes and aggregate bookkeeping."""

import math

import pytest

from repro.fleet import FleetTelemetry, LatencyProbe
from repro.fleet.report import FleetReport


def test_latency_probe_records_and_estimates():
    probe = LatencyProbe(reservoir=64, seed=1)
    assert math.isnan(probe.percentile(50))
    for i in range(100):
        probe.add(i / 100.0)
    assert probe.n == 100
    assert probe.mean == pytest.approx(0.495)
    assert probe.percentile(50) == pytest.approx(0.5, abs=0.1)


def test_probe_merge_matches_union_stream():
    a, b = LatencyProbe(seed=1), LatencyProbe(seed=2)
    for i in range(50):
        a.add(0.01)
        b.add(0.10)
    a.merge(b)
    assert a.n == 100
    assert a.mean == pytest.approx(0.055)
    assert a.percentile(5) == pytest.approx(0.01)
    assert a.percentile(95) == pytest.approx(0.10)


def test_fleet_aggregates_merge_sessions_exactly():
    fleet = FleetTelemetry()
    s1 = fleet.session("one")
    s2 = fleet.session("two")
    assert fleet.session("one") is s1  # get-or-create
    for _ in range(10):
        s1.record_steer(0.020)
        s2.record_steer(0.200)
    s1.record_timeout()
    s2.record_error()
    s1.mark_completed(now=12.0)
    s2.mark_failed("gateway down", now=9.0)
    merged = fleet.merged_steer_latency()
    assert merged.n == 20
    assert merged.mean == pytest.approx(0.110)
    totals = fleet.totals()
    assert totals == {
        "sessions": 2, "completed": 1, "failed": 1,
        "ops": 20, "timeouts": 1, "errors": 1,
    }


def test_session_lifecycle_times():
    fleet = FleetTelemetry()
    tel = fleet.session("s")
    assert math.isnan(tel.session_time)
    tel.record_admission(started=1.0, now=1.4)
    tel.mark_completed(now=7.4)
    assert tel.admitted_at == 1.4
    assert tel.session_time == pytest.approx(6.0)
    assert tel.admit_latency.mean == pytest.approx(0.4)


def test_report_from_empty_fleet_renders():
    report = FleetReport.from_telemetry(FleetTelemetry(), makespan=0.0)
    assert report.n_sessions == 0
    text = report.render()
    assert "0/0 sessions" in text and "p50=-" in text
