"""Tests for vtkNetwork-style framebuffer multicasting."""

import numpy as np
import pytest

from repro.accessgrid.vtknetwork import VicViewer, VtkNetworkRenderer
from repro.des import Environment
from repro.net import MulticastGroup, Network


def world(n_viewers=2):
    env = Environment()
    net = Network(env)
    net.add_host("vizhost")
    for i in range(n_viewers):
        net.add_host(f"viewer{i}")
        net.add_link("vizhost", f"viewer{i}", latency=0.01 * (i + 1),
                     bandwidth=10e6 / 8)
    group = MulticastGroup(net, "233.1.1.1")
    return env, net, group


def test_stream_reaches_all_viewers_identically():
    env, net, group = world(3)
    vtk = VtkNetworkRenderer(net.host("vizhost"), group, width=32, height=24)
    viewers = [VicViewer(net.host(f"viewer{i}"), group) for i in range(3)]
    rng = np.random.default_rng(0)

    def producer():
        for _ in range(10):
            vtk.renderer.fb.color[:] = rng.integers(0, 256,
                                                    vtk.renderer.fb.color.shape,
                                                    dtype=np.uint8)
            vtk.publish_frame()
            yield env.timeout(0.1)

    env.process(producer())
    env.run(until=5.0)
    assert vtk.frames_published == 10
    for v in viewers:
        assert v.frames_decoded == 10
        np.testing.assert_array_equal(v.current.color, vtk._prev.color)


def test_late_joiner_waits_for_key_frame():
    env, net, group = world(2)
    vtk = VtkNetworkRenderer(net.host("vizhost"), group, width=16, height=16,
                             key_frame_every=5)
    early = VicViewer(net.host("viewer0"), group)
    late_holder = {}

    def producer():
        for i in range(12):
            vtk.renderer.fb.color[:, : i + 1] = 10 * (i + 1)
            vtk.publish_frame()
            yield env.timeout(0.1)

    def late_join():
        yield env.timeout(0.15)  # misses frame 0 (the first key frame)
        late_holder["v"] = VicViewer(net.host("viewer1"), group)

    env.process(producer())
    env.process(late_join())
    env.run(until=5.0)
    late = late_holder["v"]
    # Frames 2..4 are deltas it cannot decode; frame 5 is its first key.
    assert late.frames_skipped > 0
    assert late.frames_decoded > 0
    np.testing.assert_array_equal(late.current.color, early.current.color)


def test_key_frame_cadence_controls_bytes():
    """All-key streams cost more than delta streams on static content."""
    costs = {}
    for every in (1, 30):
        env, net, group = world(1)
        vtk = VtkNetworkRenderer(net.host("vizhost"), group, width=64,
                                 height=48, key_frame_every=every)
        VicViewer(net.host("viewer0"), group)
        rng = np.random.default_rng(1)
        vtk.renderer.fb.color[:] = rng.integers(0, 256,
                                                vtk.renderer.fb.color.shape,
                                                dtype=np.uint8)

        def producer():
            for _ in range(10):  # static content after the first frame
                vtk.publish_frame()
                yield env.timeout(0.05)

        env.process(producer())
        env.run(until=3.0)
        costs[every] = vtk.bytes_published
    assert costs[30] < costs[1] / 5


def test_patched_vic_event_backchannel():
    env, net, group = world(1)
    vtk = VtkNetworkRenderer(net.host("vizhost"), group, width=16, height=16)
    received = []
    vtk.on_remote_event = received.append
    patched = VicViewer(net.host("viewer0"), group, patched=True)

    def scenario():
        vtk.publish_frame()
        yield env.timeout(0.1)
        patched.send_event(vtk, {"kind": "rotate", "angle": 0.3})
        yield env.timeout(0.5)

    env.process(scenario())
    env.run(until=2.0)
    assert received == [{"kind": "rotate", "angle": 0.3}]


def test_standard_vic_cannot_send_events():
    """The reason the paper preferred VizServer: unpatched vic viewers
    are view-only."""
    env, net, group = world(1)
    vtk = VtkNetworkRenderer(net.host("vizhost"), group)
    standard = VicViewer(net.host("viewer0"), group, patched=False)
    with pytest.raises(PermissionError, match="VizServer"):
        standard.send_event(vtk, {"kind": "rotate"})
