"""Integration tests for the VISIT-UNICORE extension (section 3.3).

The scenario: a steered application runs on the HPC target behind a
single-port firewall; it speaks ordinary VISIT to a local proxy; remote
participants poll through the UNICORE gateway; the first polling
participant is master and answers the simulation's steering requests.
"""

import numpy as np
import pytest

from repro.des import Environment
from repro.net import Firewall, Network
from repro.unicore import (
    Certificate,
    Gateway,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.unicore.visit_ext import VisitProxyServer, VisitUnicorePlugin
from repro.visit import VisitClient

GATEWAY_PORT = 4433
PROXY_PORT = 5500
TAG_DATA = 1
TAG_STEER = 2


def build(poll_interval=0.2, extra_users=()):
    env = Environment()
    net = Network(env)
    net.add_host("laptop")
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_link("laptop", "hpc", latency=0.01, bandwidth=10e6 / 8)
    for name in extra_users:
        net.add_host(name)
        net.add_link(name, "hpc", latency=0.02, bandwidth=10e6 / 8)

    trust = TrustStore({"CA"})
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("hpc"))
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "JUELICH", tsi)
    gw.register_vsite("JUELICH", "hpc", 9000)
    gw.start()
    njs.start()

    proxy = VisitProxyServer(net.host("hpc"), PROXY_PORT, password="pw")
    proxy.start()
    tsi.visit_proxy = proxy

    def make_plugin(host_name, plugin_name):
        ident = UserIdentity(Certificate(f"CN={plugin_name}", "CA"), plugin_name)
        uc = UnicoreClient(net.host(host_name), ident, "hpc", GATEWAY_PORT)
        return uc, VisitUnicorePlugin(uc, "JUELICH", plugin_name,
                                      poll_interval=poll_interval)

    return env, net, gw, proxy, make_plugin


def test_unmodified_visit_app_steered_through_gateway():
    env, net, gw, proxy, make_plugin = build()
    uc, plugin = make_plugin("laptop", "john")
    steer_value = {"v": 1.0}
    plugin.provide(TAG_STEER, lambda: steer_value["v"])

    sim_client = VisitClient(net.host("hpc"), "hpc", PROXY_PORT, "pw", name="pepc")
    log = {"params": [], "sent": 0}

    def simulation():
        ok = yield from sim_client.connect(timeout=1.0)
        assert ok
        for step in range(8):
            yield env.timeout(0.1)  # compute
            yield from sim_client.send(TAG_DATA, {"step": step,
                                                  "x": np.arange(4, dtype=np.float32)})
            log["sent"] += 1
            ok, val = yield from sim_client.request(TAG_STEER, timeout=1.0)
            if ok:
                log["params"].append(val)

    def user():
        yield from uc.connect()
        plugin.start()
        yield env.timeout(1.5)
        steer_value["v"] = 42.0  # the user moves the steering slider
        yield env.timeout(2.0)
        plugin.stop()

    env.process(simulation())
    env.process(user())
    env.run(until=10.0)

    # Samples reached the remote participant through the single port.
    assert len(plugin.received[TAG_DATA]) == log["sent"] > 0
    # Steering answers arrived, and the slider change is visible.
    assert len(log["params"]) >= 4
    assert 1.0 in log["params"] and 42.0 in log["params"]
    # The app itself never authenticated to UNICORE; the user did.
    assert gw.sessions_opened == 1


def test_poll_latency_dominated_by_interval():
    """Sample delivery latency ~ poll_interval/2 .. poll_interval."""
    results = {}
    for interval in (0.1, 0.8):
        env, net, gw, proxy, make_plugin = build(poll_interval=interval)
        uc, plugin = make_plugin("laptop", "john")
        sim_client = VisitClient(net.host("hpc"), "hpc", PROXY_PORT, "pw")

        def simulation():
            yield from sim_client.connect(timeout=1.0)
            for step in range(30):
                yield env.timeout(0.13)
                yield from sim_client.send(TAG_DATA, step)

        def user():
            yield from uc.connect()
            plugin.start()

        env.process(simulation())
        env.process(user())
        env.run(until=6.0)
        assert plugin.delivery_latencies, f"no samples at interval {interval}"
        results[interval] = float(np.mean(plugin.delivery_latencies))
    assert results[0.8] > results[0.1] * 2
    assert results[0.1] < 0.25


def test_collaboration_master_only_steering_in_proxy():
    env, net, gw, proxy, make_plugin = build(
        poll_interval=0.2, extra_users=("site-b",)
    )
    uc_a, plugin_a = make_plugin("laptop", "alice")
    uc_b, plugin_b = make_plugin("site-b", "bob")
    plugin_a.provide(TAG_STEER, lambda: "from-alice")
    plugin_b.provide(TAG_STEER, lambda: "from-bob")

    sim_client = VisitClient(net.host("hpc"), "hpc", PROXY_PORT, "pw")
    answers = []

    def simulation():
        yield from sim_client.connect(timeout=1.0)
        for _ in range(10):
            yield env.timeout(0.3)
            yield from sim_client.send(TAG_DATA, b"frame")
            ok, val = yield from sim_client.request(TAG_STEER, timeout=1.5)
            if ok:
                answers.append(val)

    def users():
        yield from uc_a.connect()
        plugin_a.start()
        yield from uc_b.connect()
        plugin_b.start()
        yield env.timeout(2.0)
        proxy.pass_master("bob")

    env.process(simulation())
    env.process(users())
    env.run(until=8.0)

    # Everyone saw all the data (fan-out with per-participant cursors).
    assert len(plugin_a.received[TAG_DATA]) == len(plugin_b.received[TAG_DATA]) > 0
    # Steering answers switched with the master role.
    assert "from-alice" in answers and "from-bob" in answers
    assert answers.index("from-alice") < answers.index("from-bob")
    assert proxy.participants() == ["alice", "bob"]


def test_unauthenticated_poll_rejected():
    env, net, gw, proxy, make_plugin = build()
    result = {}

    def scenario():
        out = yield from proxy.handle_poll(subject="", client="x", responses=[])
        result["reply"] = out

    env.process(scenario())
    env.run()
    assert result["reply"]["ok"] is False


def test_sim_request_times_out_when_no_participants():
    """No steerer polling: the simulation's request fails at its own
    timeout, and the simulation keeps going (VISIT guarantee preserved
    through the proxy)."""
    env, net, gw, proxy, make_plugin = build()
    sim_client = VisitClient(net.host("hpc"), "hpc", PROXY_PORT, "pw")
    log = []

    def simulation():
        yield from sim_client.connect(timeout=1.0)
        for step in range(5):
            t0 = env.now
            ok, _ = yield from sim_client.request(TAG_STEER, timeout=0.2)
            log.append((step, ok, env.now - t0))
            yield env.timeout(0.05)

    env.process(simulation())
    env.run()
    assert len(log) == 5
    assert all(not ok for _, ok, _ in log)
    assert all(elapsed == pytest.approx(0.2, abs=1e-6) for _, _, elapsed in log)
