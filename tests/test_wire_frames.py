"""Frame codec tests: incremental parsing across arbitrary chunking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.wire import FrameDecoder, encode_frame


def test_single_frame_roundtrip():
    dec = FrameDecoder()
    assert dec.feed(encode_frame(3, b"payload")) == [(3, b"payload")]
    assert dec.pending_bytes == 0


def test_empty_payload():
    dec = FrameDecoder()
    assert dec.feed(encode_frame(0, b"")) == [(0, b"")]


def test_multiple_frames_one_feed():
    dec = FrameDecoder()
    blob = encode_frame(1, b"a") + encode_frame(2, b"bb") + encode_frame(3, b"ccc")
    assert dec.feed(blob) == [(1, b"a"), (2, b"bb"), (3, b"ccc")]


def test_byte_at_a_time():
    dec = FrameDecoder()
    blob = encode_frame(9, b"steering")
    frames = []
    for i in range(len(blob)):
        frames.extend(dec.feed(blob[i : i + 1]))
    assert frames == [(9, b"steering")]


def test_split_across_header_boundary():
    dec = FrameDecoder()
    blob = encode_frame(5, b"xyz")
    assert dec.feed(blob[:6]) == []
    assert dec.pending_bytes == 6
    assert dec.feed(blob[6:]) == [(5, b"xyz")]


def test_bad_stream_id():
    with pytest.raises(ProtocolError):
        encode_frame(-1, b"")
    with pytest.raises(ProtocolError):
        encode_frame(2**32, b"")


def test_oversized_length_rejected_on_decode():
    import struct

    dec = FrameDecoder()
    with pytest.raises(ProtocolError):
        dec.feed(struct.pack("<II", (1 << 30) + 1, 0))


@settings(max_examples=50, deadline=None)
@given(
    frames=st.lists(
        st.tuples(st.integers(0, 2**32 - 1), st.binary(max_size=64)), max_size=8
    ),
    chunk=st.integers(min_value=1, max_value=13),
)
def test_property_chunked_stream(frames, chunk):
    blob = b"".join(encode_frame(sid, p) for sid, p in frames)
    dec = FrameDecoder()
    out = []
    for i in range(0, len(blob), chunk):
        out.extend(dec.feed(blob[i : i + chunk]))
    assert out == frames
    assert dec.pending_bytes == 0
