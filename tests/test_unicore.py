"""UNICORE middleware tests: AJO, security, gateway, NJS, TSI, client."""

import pytest

from repro.des import Environment
from repro.errors import AuthenticationError, UnicoreError
from repro.net import Firewall, Network
from repro.unicore import (
    AbstractJobObject,
    Certificate,
    ExecuteTask,
    Gateway,
    JobStatus,
    NetworkJobSupervisor,
    StageIn,
    StageOut,
    TargetSystemInterface,
    UnicoreClient,
    USpace,
    UserIdentity,
)
from repro.unicore.security import TrustStore

GATEWAY_PORT = 4433


def build_grid(queue_slots=2):
    """User laptop + HPC centre (gateway/NJS/TSI) behind a firewall."""
    env = Environment()
    net = Network(env)
    net.add_host("laptop")
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_link("laptop", "hpc", latency=0.01, bandwidth=10e6 / 8)

    trust = TrustStore({"UK-eScience-CA"})
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("hpc"), queue_slots=queue_slots)
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "JUELICH", tsi)
    njs.register_application("SLEEPER", "sleep")
    gw.register_vsite("JUELICH", "hpc", 9000)
    gw.start()
    njs.start()

    identity = UserIdentity(
        Certificate(subject="CN=John Brooke", issuer="UK-eScience-CA"),
        xlogin="jbrooke",
    )
    client = UnicoreClient(net.host("laptop"), identity, "hpc", GATEWAY_PORT)
    return env, net, gw, njs, tsi, client


# -- AJO ------------------------------------------------------------------


def test_ajo_dag_order_respects_dependencies():
    ajo = AbstractJobObject("test", "SITE")
    ajo.add_task(StageIn("in", "input.dat", b"data"))
    ajo.add_task(ExecuteTask("run", "APP"), after=["in"])
    ajo.add_task(StageOut("out", "result.dat"), after=["run"])
    order = ajo.execution_order()
    assert order.index("in") < order.index("run") < order.index("out")


def test_ajo_rejects_duplicate_and_unknown_deps():
    ajo = AbstractJobObject("test", "SITE")
    ajo.add_task(ExecuteTask("a", "APP"))
    with pytest.raises(UnicoreError):
        ajo.add_task(ExecuteTask("a", "APP"))
    with pytest.raises(UnicoreError):
        ajo.add_task(ExecuteTask("b", "APP"), after=["zzz"])


def test_ajo_wire_roundtrip():
    ajo = AbstractJobObject("demo", "JUELICH")
    ajo.add_task(StageIn("in", "x.dat", b"\x00\x01"))
    ajo.add_task(
        ExecuteTask("run", "PEPC", arguments={"n": 100}, wall_time=5.0, steered=True),
        after=["in"],
    )
    out = AbstractJobObject.from_wire(ajo.to_wire())
    assert out.job_name == "demo" and out.vsite == "JUELICH"
    assert out.tasks["run"].application == "PEPC"
    assert out.tasks["run"].steered is True
    assert out.dependencies["run"] == {"in"}
    assert out.tasks["in"].data == b"\x00\x01"


def test_ajo_from_wire_rejects_garbage():
    with pytest.raises(UnicoreError):
        AbstractJobObject.from_wire({"job_name": "x"})


# -- security -------------------------------------------------------------


def test_trust_store_authenticates_known_issuer():
    trust = TrustStore({"CA-1"})
    cert = Certificate("CN=alice", "CA-1")
    assert trust.authenticate(cert) == "CN=alice"


def test_trust_store_rejects_unknown_and_revoked():
    trust = TrustStore({"CA-1"})
    with pytest.raises(AuthenticationError):
        trust.authenticate(Certificate("CN=mallory", "EVIL-CA"))
    with pytest.raises(AuthenticationError):
        trust.authenticate(Certificate("CN=alice", "CA-1", revoked=True))


# -- uspace ---------------------------------------------------------------


def test_uspace_basics():
    u = USpace("job-1")
    u.write("a.dat", b"123")
    assert u.read("a.dat") == b"123"
    assert u.exists("a.dat") and not u.exists("b.dat")
    assert u.listing() == ["a.dat"]
    assert u.total_bytes() == 3
    with pytest.raises(UnicoreError):
        u.read("missing")
    with pytest.raises(UnicoreError):
        u.write("../escape", b"")
    with pytest.raises(UnicoreError):
        u.write("/abs", b"")


# -- end-to-end job lifecycle ----------------------------------------------------


def test_full_job_lifecycle_stagein_execute_stageout():
    env, net, gw, njs, tsi, client = build_grid()
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("demo", "JUELICH")
        ajo.add_task(StageIn("in", "input.dat", b"payload"))
        ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=3.0), after=["in"])
        ajo.add_task(StageOut("out", "input.dat"), after=["run"])
        job_id = yield from client.consign(ajo)
        result["job_id"] = job_id
        status = yield from client.wait_for("JUELICH", job_id, poll_interval=0.5)
        result["status"] = status
        data = yield from client.retrieve("JUELICH", job_id, "input.dat")
        result["data"] = data
        result["done_at"] = env.now

    env.process(scenario())
    env.run()
    assert result["status"] is JobStatus.SUCCESSFUL
    assert result["data"] == b"payload"
    assert result["done_at"] >= 3.0  # the wall time actually elapsed
    assert gw.requests_relayed > 0


def test_firewall_blocks_direct_njs_access_but_gateway_passes():
    """The single-port property the whole design leans on."""
    env, net, gw, njs, tsi, client = build_grid()
    from repro.errors import FirewallBlocked

    outcomes = {}

    def scenario():
        try:
            yield from net.host("laptop").connect("hpc", 9000)  # direct to NJS
        except FirewallBlocked:
            outcomes["direct_blocked"] = True
        yield from client.connect()
        outcomes["via_gateway"] = client.authenticated

    env.process(scenario())
    env.run()
    assert outcomes == {"direct_blocked": True, "via_gateway": True}


def test_untrusted_certificate_rejected_at_gateway():
    env, net, gw, njs, tsi, _ = build_grid()
    mallory = UnicoreClient(
        net.host("laptop"),
        UserIdentity(Certificate("CN=mallory", "EVIL-CA"), "mallory"),
        "hpc",
        GATEWAY_PORT,
    )
    result = {}

    def scenario():
        try:
            yield from mallory.connect()
        except UnicoreError as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run()
    assert "sign-on failed" in result["error"]
    assert gw.auth_failures == 1


def test_job_with_unknown_application_rejected_at_consignment():
    env, net, gw, njs, tsi, client = build_grid()
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("bad", "JUELICH")
        ajo.add_task(ExecuteTask("run", "NO-SUCH-APP"))
        try:
            yield from client.consign(ajo)
        except UnicoreError as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run()
    assert "cannot incarnate" in result["error"]


def test_unknown_vsite_reported():
    env, net, gw, njs, tsi, client = build_grid()
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("x", "NOWHERE")
        try:
            yield from client.consign(ajo)
        except UnicoreError as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run()
    assert "unknown vsite" in result["error"]


def test_job_isolation_between_users():
    env, net, gw, njs, tsi, client = build_grid()
    other = UnicoreClient(
        net.host("laptop"),
        UserIdentity(Certificate("CN=other", "UK-eScience-CA"), "other"),
        "hpc",
        GATEWAY_PORT,
    )
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("mine", "JUELICH")
        ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=0.5))
        job_id = yield from client.consign(ajo)
        yield from other.connect()
        try:
            yield from other.status("JUELICH", job_id)
        except UnicoreError as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run()
    assert "belongs to" in result["error"]


def test_batch_queue_serializes_jobs():
    env, net, gw, njs, tsi, client = build_grid(queue_slots=1)
    result = {}

    def scenario():
        yield from client.connect()
        ids = []
        for i in range(3):
            ajo = AbstractJobObject(f"j{i}", "JUELICH")
            ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=2.0))
            ids.append((yield from client.consign(ajo)))
        for job_id in ids:
            yield from client.wait_for("JUELICH", job_id, poll_interval=0.25)
        result["all_done_at"] = env.now

    env.process(scenario())
    env.run()
    # One slot, three 2 s jobs: at least 6 s of serialized compute.
    assert result["all_done_at"] >= 6.0


def test_incarnation_produces_site_script():
    env, net, gw, njs, tsi, client = build_grid()
    task = ExecuteTask("run", "SLEEPER", wall_time=1.0)
    inc = njs.incarnate(task, owner="jbrooke")
    assert inc.handler == "sleep"
    assert "perl" in inc.script
    assert "xlogin=jbrooke" in inc.script
    with pytest.raises(Exception):
        njs.incarnate(ExecuteTask("r", "MISSING"), owner="x")


def test_failed_task_marks_job_failed():
    env, net, gw, njs, tsi, client = build_grid()

    def exploding_app(env_, host, args, uspace):
        yield env_.timeout(0.1)
        raise RuntimeError("segfault")

    tsi.register_application("boom", exploding_app)
    njs.register_application("EXPLODER", "boom")
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("bad", "JUELICH")
        ajo.add_task(ExecuteTask("run", "EXPLODER"))
        job_id = yield from client.consign(ajo)
        status = yield from client.wait_for("JUELICH", job_id, poll_interval=0.2)
        result["status"] = status
        s, tasks = yield from client.status("JUELICH", job_id)
        result["tasks"] = tasks

    env.process(scenario())
    env.run()
    assert result["status"] is JobStatus.FAILED
    assert result["tasks"]["run"] == "running"  # failed mid-run
