"""Unit tests for the PR-4 kernel hot paths and the repro.perf package."""

import json
from collections import deque

import numpy as np
import pytest

from repro.des import AnyOf, Environment, Event, Interrupt, Mailbox, Store, Timeout
from repro.des.core import Process
from repro.des.resources import ResourceRequest, StoreGet, StorePut
from repro.errors import SimulationError
from repro.perf import Profiler, load_bench, peak_rss_bytes, write_bench
from repro.perf.profiler import _component_of


# -- timeout recycling -------------------------------------------------------


def test_timeout_pool_recycles_resume_only_timeouts():
    env = Environment()

    def sleeper():
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(sleeper())
    env.run()
    # Both yielded timeouts retired through the pool (recycling happens
    # when the event's step completes, so the second yield — issued
    # mid-step — allocated fresh and both retired afterwards).
    assert len(env._timeout_pool) == 2
    recycled = env._timeout_pool[-1]
    again = env.timeout(5.0)
    assert again is recycled
    # A reused timeout is a fresh event: pending callbacks, new value.
    assert again.callbacks == []
    assert again.delay == 5.0


def test_held_timeout_is_never_recycled():
    # A timeout the generator frame still references must keep its
    # documented post-processing Event API (.value/.ok/.processed): the
    # recycler's refcount guard must refuse to reuse it.
    env = Environment()
    seen = {}

    def holder():
        t = env.timeout(1.0, value="x")
        yield t
        yield env.timeout(1.0)
        t3 = env.timeout(1.0, value="z")
        seen["same_obj"] = t3 is t
        yield t3
        seen["t_value"] = t.value
        seen["t_processed"] = t.processed

    env.process(holder())
    env.run()
    assert seen == {"same_obj": False, "t_value": "x", "t_processed": True}


def test_timeout_watched_by_condition_is_not_recycled():
    env = Environment()

    def racer():
        yield AnyOf(env, [env.timeout(1.0), env.timeout(2.0)])

    env.process(racer())
    env.run()
    # The two condition-watched timeouts must not enter the pool (a
    # waiter may still hold them); only process-resume timeouts recycle.
    assert len(env._timeout_pool) == 0


def test_timeout_with_extra_callback_is_not_recycled():
    env = Environment()
    seen = []
    ev = env.timeout(1.0, value="x")
    ev.callbacks.append(lambda e: seen.append(e.value))
    env.run()
    assert seen == ["x"]
    assert len(env._timeout_pool) == 0
    # The event object stays readable after processing.
    assert ev.ok and ev.value == "x"


def test_pool_respects_explicit_timeout_values():
    env = Environment()
    got = []

    def collect():
        got.append((yield env.timeout(1.0, value="a")))
        got.append((yield env.timeout(1.0, value="b")))
        got.append((yield env.timeout(1.0)))

    env.process(collect())
    env.run()
    assert got == ["a", "b", None]


def test_timeout_until_is_float_exact():
    env = Environment()
    env.run(until=0.07)  # a now with float residue
    # 0.07 + 0.01 * k accumulated differs from 0.17 the literal; the
    # absolute-time API must hit the requested key exactly.
    target = 0.07
    for _ in range(10):
        target = target + 0.01
    fired_at = []

    def waker():
        yield env.timeout_until(target)
        fired_at.append(env.now)

    env.process(waker())
    env.run()
    assert fired_at == [target]
    with pytest.raises(SimulationError):
        env.timeout_until(env.now - 1.0)


# -- tombstoned interrupts ---------------------------------------------------


def test_interrupt_leaves_tombstone_and_stale_timer_is_ignored():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(10.0)
            log.append("timer")
        except Interrupt:
            log.append(("interrupted", env.now))
            yield env.timeout(1.0)
            log.append(("resumed", env.now))

    def waker(p):
        yield env.timeout(3.0)
        p.interrupt("now")

    p = env.process(sleeper())
    env.process(waker(p))
    env.run()
    # The abandoned 10s timer fired at t=10 with its stale callback
    # still attached, and was dropped without resuming the process.
    assert log == [("interrupted", 3.0), ("resumed", 4.0)]
    assert p.value is None
    assert env.now == 10.0


def test_double_interrupt_delivers_both():
    env = Environment()
    hits = []

    def sleeper():
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                hits.append(intr.cause)

    def waker(p):
        yield env.timeout(1.0)
        p.interrupt("first")
        p.interrupt("second")

    p = env.process(sleeper())
    env.process(waker(p))
    env.run()
    assert hits == ["first", "second"]


def test_pending_failures_is_a_deque():
    env = Environment()
    assert isinstance(env._pending_failures, deque)


# -- slots -------------------------------------------------------------------


@pytest.mark.parametrize(
    "cls", [Event, Timeout, Process, AnyOf, Store, Mailbox, StorePut,
            StoreGet, ResourceRequest]
)
def test_kernel_classes_have_no_instance_dict(cls):
    # __slots__ everywhere on the per-event classes: instance dicts are
    # pure allocation overhead at millions of events per run.
    assert not any("__dict__" in vars(c) for c in cls.__mro__[:-1]), cls


# -- parked pumps ------------------------------------------------------------


def _pump_consumer(env, link, mode, out):
    """A pump-shaped consumer: 0.01 poll grid, 0.0 re-round on progress."""
    poll = link.poll
    while True:
        progressed = False
        while True:
            ok, msg = poll()
            if not ok:
                break
            progressed = True
            out.append((env.now, msg))
            if msg == "last":
                return
        if progressed:
            yield env.timeout(0.0)
        elif mode == "parked":
            from repro.steering.api import parked_tick

            yield from parked_tick(env, link, 0.01)
        else:
            yield env.timeout(0.01)


def _run_pump_world(mode):
    from repro.net.network import Network
    from repro.steering.api import LinkAdapter

    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.013, bandwidth=1e6)
    listener = net.host("b").listen(9)
    out = []

    def server():
        conn = yield from listener.accept()
        yield from _pump_consumer(env, LinkAdapter(conn), mode, out)

    def client():
        conn = yield from net.host("a").connect("b", 9)
        for i, gap in enumerate([0.037, 0.0003, 1.773, 0.25, 0.0101, 3.9]):
            yield env.timeout(gap)
            conn.send(f"m{i}")
        yield env.timeout(0.5)
        conn.send("last")

    env.process(server())
    env.process(client())
    env.run()
    return out, env.events_processed


def test_parked_pump_is_virtual_time_identical_to_polling():
    # The parked pump must process every message at exactly the virtual
    # time the polling pump would have — the float-accumulated 0.01 grid
    # — while consuming an order of magnitude fewer events.
    poll_out, poll_events = _run_pump_world("poll")
    park_out, park_events = _run_pump_world("parked")
    assert park_out == poll_out
    assert park_events < poll_events / 5


# -- wire-size memoization ---------------------------------------------------


def test_approx_size_envelope_cache_matches_reference():
    from repro.steering.control import Ack, SetParam, StatusReport
    from repro.wire import codec

    def reference(value):
        """The seed implementation, sans cache."""
        if value is None or isinstance(value, bool):
            return 1
        if isinstance(value, (int, float, np.integer, np.floating)):
            return 9
        if isinstance(value, str):
            return 5 + len(value.encode("utf-8"))
        if isinstance(value, (bytes, bytearray, memoryview)):
            return 5 + len(value)
        if isinstance(value, np.ndarray):
            return 16 + value.nbytes
        if isinstance(value, dict):
            return 5 + sum(
                reference(str(k)) + reference(v) for k, v in value.items()
            )
        if isinstance(value, (list, tuple, set)):
            return 5 + sum(reference(v) for v in value)
        inner = getattr(value, "__dict__", None)
        if isinstance(inner, dict):
            return 16 + reference(inner)
        return 64

    messages = [
        Ack(3, True, "SetParam", result=2.0),
        Ack(4, False, "Stop", error="nope"),
        SetParam(name="g", value=1.5),
        StatusReport(step=7, time=3.5, observables={"demix": 0.1},
                     parameters={"g": 1.5}, paused=False),
        {"service": "steer-1", "op": "invoke", "body": {"name": "g"}},
        [1, 2.5, "three", None, b"0123"],
        np.zeros((4, 4), dtype=np.float32),
    ]
    for msg in messages:
        # twice: cold (fills the envelope cache) and warm (uses it)
        assert codec.approx_size(msg) == reference(msg)
        assert codec.approx_size(msg) == reference(msg)


# -- profiler ----------------------------------------------------------------


def test_profiler_attributes_time_to_generators():
    env = Environment()

    def worker():
        for _ in range(50):
            yield env.timeout(0.5)

    env.process(worker())
    prof = Profiler()
    with prof.attach(env):
        env.run()
    rep = prof.report()
    assert rep["events"] == env.events_processed
    assert rep["events_per_sec"] > 0
    names = {row["component"] for row in rep["components"]}
    assert "worker" in names
    total_calls = sum(row["calls"] for row in rep["components"])
    assert total_calls >= 50
    assert "worker" in prof.render()
    # Detached: the unprofiled fast path is back.
    assert env._profiler is None


def test_profiler_component_naming():
    env = Environment()

    def gen():
        yield env.timeout(1.0)

    p = env.process(gen())
    assert _component_of(p._cb, None) == "gen"
    assert _component_of(lambda e: None, None).endswith("<lambda>")


def test_profiler_detach_mid_run_is_safe():
    # A process may detach the profiler during env.run() to profile only
    # a window; the remaining steps must keep running (unrecorded).
    env = Environment()
    prof = Profiler().attach(env)
    after_detach = []

    def detacher():
        yield env.timeout(1.0)
        prof.detach()
        yield env.timeout(1.0)
        after_detach.append(env.now)

    env.process(detacher())
    env.run()
    assert after_detach == [2.0]
    assert prof.events >= 1
    assert env._profiler is None


def test_profiled_run_matches_unprofiled_run():
    def world(env):
        def ticker(store):
            for i in range(20):
                yield env.timeout(0.1)
                yield store.put(i)

        def drainer(store):
            for _ in range(20):
                yield store.get()

        s = Store(env)
        env.process(ticker(s))
        env.process(drainer(s))

    plain = Environment()
    world(plain)
    plain.run()

    profiled = Environment()
    world(profiled)
    with Profiler().attach(profiled):
        profiled.run()
    assert profiled.now == plain.now
    assert profiled.events_processed == plain.events_processed


# -- unified bench emission --------------------------------------------------


def test_write_and_load_bench_roundtrip(tmp_path):
    path = write_bench(
        tmp_path / "BENCH_x.json", "x", {"k": 1}, wall_seconds=2.0,
        events=1000,
    )
    doc = load_bench(path)
    assert doc["schema"] == "repro.perf/bench-v1"
    assert doc["bench"] == "x"
    assert doc["results"] == {"k": 1}
    assert doc["perf"]["wall_seconds"] == 2.0
    assert doc["perf"]["events_per_sec"] == 500.0
    assert doc["perf"]["peak_rss_bytes"] > 0


def test_load_bench_accepts_pre_envelope_payloads(tmp_path):
    p = tmp_path / "BENCH_old.json"
    p.write_text(json.dumps({"128": {"wall_seconds": 3.0}}))
    doc = load_bench(p)
    assert doc["schema"] is None
    assert doc["results"] == {"128": {"wall_seconds": 3.0}}


def test_peak_rss_positive():
    assert peak_rss_bytes() > 0


# -- regression gate ---------------------------------------------------------


def test_gate_passes_and_fails_correctly(tmp_path, monkeypatch):
    from repro.perf import gate

    class FakeReport:
        completed = 4
        ops = 40

    monkeypatch.setattr(
        gate, "run_fleet", lambda n: (FakeReport(), 1.0, 5000)
    )
    baseline = tmp_path / "BENCH_fleet_scaling.json"
    write_bench(
        baseline, "fleet_scaling",
        {"4": {"wall_seconds": 0.9, "completed": 4, "ops": 40}},
    )
    ok, verdict = gate.check(baseline, sessions=4, threshold=0.25)
    assert ok, verdict

    # Wall regression beyond threshold fails.
    write_bench(
        baseline, "fleet_scaling",
        {"4": {"wall_seconds": 0.5, "completed": 4, "ops": 40}},
    )
    ok, verdict = gate.check(baseline, sessions=4, threshold=0.25)
    assert not ok and "regressed" in verdict

    # Workload drift fails even when faster.
    write_bench(
        baseline, "fleet_scaling",
        {"4": {"wall_seconds": 10.0, "completed": 5, "ops": 40}},
    )
    ok, verdict = gate.check(baseline, sessions=4, threshold=0.25)
    assert not ok and "drifted" in verdict

    # Missing size entry is an explicit failure, not a KeyError.
    ok, verdict = gate.check(baseline, sessions=64, threshold=0.25)
    assert not ok and "no entry" in verdict
