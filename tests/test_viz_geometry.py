"""Isosurface, cutplane, glyph and volume tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.viz import (
    TimeHistory,
    axis_slice,
    cut_plane,
    diamond_glyphs,
    isosurface,
    particle_points,
    vector_glyphs,
    volume_render,
)
from repro.viz.cutplane import trilinear_sample
from repro.viz.glyphs import domain_boxes, processor_colors
from repro.viz.isosurface import surface_area


def sphere_field(n=24, radius=0.35):
    """Distance field: negative inside a sphere centred in the unit box."""
    ax = np.linspace(0, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2) - radius


def test_isosurface_sphere_area():
    n = 32
    field = sphere_field(n)
    spacing = (1.0 / (n - 1),) * 3
    verts, faces = isosurface(field, level=0.0, spacing=spacing)
    assert len(faces) > 0
    area = surface_area(verts, faces)
    expected = 4.0 * np.pi * 0.35**2
    assert area == pytest.approx(expected, rel=0.15)


def test_isosurface_vertices_near_level():
    n = 24
    field = sphere_field(n)
    spacing = (1.0 / (n - 1),) * 3
    verts, _ = isosurface(field, level=0.0, spacing=spacing)
    r = np.linalg.norm(verts - 0.5, axis=1)
    # every vertex should sit on the sphere up to one cell size
    assert np.all(np.abs(r - 0.35) < 2.0 / n)


def test_isosurface_empty_when_level_outside_range():
    field = sphere_field(12)
    verts, faces = isosurface(field, level=10.0)
    assert len(verts) == 0 and len(faces) == 0


def test_isosurface_needs_3d():
    with pytest.raises(ReproError):
        isosurface(np.zeros((4, 4)), 0.0)


def test_isosurface_degenerate_grid():
    verts, faces = isosurface(np.zeros((1, 4, 4)), 0.5)
    assert len(verts) == 0


def test_isosurface_scales_with_resolution():
    small = isosurface(sphere_field(12), 0.0)[1]
    large = isosurface(sphere_field(32), 0.0)[1]
    assert len(large) > 3 * len(small)


def test_axis_slice_picks_plane():
    field = np.arange(27, dtype=float).reshape(3, 3, 3)
    sl = axis_slice(field, axis=0, position=1.0)
    np.testing.assert_array_equal(sl, field[2])
    sl = axis_slice(field, axis=2, position=0.0)
    np.testing.assert_array_equal(sl, field[:, :, 0])


def test_axis_slice_validation():
    field = np.zeros((3, 3, 3))
    with pytest.raises(ReproError):
        axis_slice(field, 3, 0.5)
    with pytest.raises(ReproError):
        axis_slice(field, 0, 1.5)


def test_trilinear_sample_exact_at_nodes():
    rng = np.random.default_rng(0)
    field = rng.random((4, 5, 6))
    pts = np.array([[1, 2, 3], [0, 0, 0], [3, 4, 5]], dtype=float)
    out = trilinear_sample(field, pts)
    assert out[0] == pytest.approx(field[1, 2, 3])
    assert out[1] == pytest.approx(field[0, 0, 0])
    assert out[2] == pytest.approx(field[3, 4, 5])


def test_trilinear_sample_linear_field_is_exact():
    ax = np.arange(5, dtype=float)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    field = 2 * x + 3 * y - z
    pts = np.array([[0.5, 1.25, 3.75], [2.2, 0.1, 0.9]])
    expected = 2 * pts[:, 0] + 3 * pts[:, 1] - pts[:, 2]
    np.testing.assert_allclose(trilinear_sample(field, pts), expected, atol=1e-12)


def test_cut_plane_through_linear_field():
    ax = np.arange(8, dtype=float)
    x, _, _ = np.meshgrid(ax, ax, ax, indexing="ij")
    field = x.copy()
    # plane x = 3.5: all sampled values must be ~3.5 (within clamping at edges)
    coords, values = cut_plane(field, point=np.array([3.5, 3.5, 3.5]),
                               normal=np.array([1.0, 0, 0]), resolution=16)
    inside = np.all((coords >= 0) & (coords <= 7), axis=2)
    assert np.allclose(values[inside], 3.5, atol=1e-9)


def test_cut_plane_validation():
    field = np.zeros((4, 4, 4))
    with pytest.raises(ReproError):
        cut_plane(field, np.zeros(3), np.zeros(3))
    with pytest.raises(ReproError):
        cut_plane(field, np.zeros(3), np.array([1.0, 0, 0]), resolution=1)


def test_particle_points_and_colors():
    pts = np.random.default_rng(0).random((10, 3))
    proc = np.arange(10)
    positions, colors = particle_points(pts, proc)
    assert positions.shape == (10, 3)
    assert colors.shape == (10, 3)
    # processors 0 and 8 wrap to the same palette entry
    np.testing.assert_array_equal(colors[0], colors[8])


def test_processor_colors_wrap():
    cols = processor_colors(np.array([0, 8, 16]))
    assert np.all(cols[0] == cols[1]) and np.all(cols[1] == cols[2])


def test_diamond_glyphs_counts():
    pts = np.zeros((3, 3))
    verts, faces = diamond_glyphs(pts, size=0.1)
    assert verts.shape == (18, 3)
    assert faces.shape == (24, 3)
    assert faces.max() == 17


def test_diamond_glyphs_empty():
    verts, faces = diamond_glyphs(np.zeros((0, 3)))
    assert len(verts) == 0 and len(faces) == 0


def test_vector_glyphs():
    pos = np.zeros((2, 3))
    vel = np.array([[1.0, 0, 0], [0, 2.0, 0]])
    segs = vector_glyphs(pos, vel, scale=0.5)
    np.testing.assert_array_equal(segs[0, 1], [0.5, 0, 0])
    np.testing.assert_array_equal(segs[1, 1], [0, 1.0, 0])


def test_domain_boxes():
    bounds = np.array([[[0, 0, 0], [1, 1, 1]], [[1, 0, 0], [2, 1, 1]]], dtype=float)
    segs = domain_boxes(bounds)
    assert segs.shape == (24, 2, 3)
    lengths = np.linalg.norm(segs[:, 1] - segs[:, 0], axis=1)
    np.testing.assert_allclose(lengths, 1.0)


def test_time_history_trails():
    hist = TimeHistory(depth=3)
    assert hist.trails().shape == (0, 2, 3)
    for t in range(4):
        hist.push(np.full((5, 3), float(t)))
    assert len(hist) == 3  # rolling window
    trails = hist.trails()
    assert trails.shape == (10, 2, 3)


def test_time_history_rejects_count_change():
    hist = TimeHistory()
    hist.push(np.zeros((4, 3)))
    with pytest.raises(ReproError):
        hist.push(np.zeros((5, 3)))


def test_volume_render_shape_and_signal():
    field = sphere_field(16)
    img = volume_render(-field, axis=2)  # positive inside the sphere
    assert img.shape == (16, 16, 3)
    center = img[8, 8].astype(int).sum()
    corner = img[0, 0].astype(int).sum()
    assert center != corner  # the sphere is visible


def test_volume_render_validation():
    with pytest.raises(ReproError):
        volume_render(np.zeros((4, 4)))
    with pytest.raises(ReproError):
        volume_render(np.zeros((4, 4, 4)), axis=5)


@settings(max_examples=15, deadline=None)
@given(
    radius=st.floats(0.15, 0.45),
    level=st.floats(-0.05, 0.05),
)
def test_property_isosurface_vertices_on_level_set(radius, level):
    n = 20
    field = sphere_field(n, radius)
    verts, faces = isosurface(field, level=level, spacing=(1.0 / (n - 1),) * 3)
    if len(verts) == 0:
        return
    r = np.linalg.norm(verts - 0.5, axis=1)
    assert np.all(np.abs(r - (radius + level)) < 2.5 / n)
