"""LB3D physics tests: conservation, miscibility steering, checkpointing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SteeringError
from repro.sims import LatticeBoltzmann3D


def test_mass_conserved_over_steps():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=2.0, seed=3)
    m0 = sim.total_mass()
    sim.run(30)
    assert sim.total_mass() == pytest.approx(m0, rel=1e-12)


def test_miscible_at_zero_coupling():
    sim = LatticeBoltzmann3D(shape=(10, 10, 10), g=0.0, seed=5)
    sim.run(40)
    assert sim.demix_measure() < 0.02


def test_demixes_above_critical_coupling():
    """The steered structure change of section 2.2: high g -> separation."""
    mixed = LatticeBoltzmann3D(shape=(10, 10, 10), g=1.0, seed=5)
    demixed = LatticeBoltzmann3D(shape=(10, 10, 10), g=3.0, seed=5)
    mixed.run(50)
    demixed.run(50)
    assert demixed.demix_measure() > 10 * max(mixed.demix_measure(), 1e-6)
    assert demixed.demix_measure() > 0.3


def test_steering_g_mid_run_changes_behaviour():
    sim = LatticeBoltzmann3D(shape=(10, 10, 10), g=0.0, seed=9)
    sim.run(20)
    before = sim.demix_measure()
    sim.set_parameter("g", 3.0)
    sim.run(50)
    assert sim.demix_measure() > 10 * max(before, 1e-6)


def test_order_parameter_bounded():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=3.0, seed=2)
    sim.run(40)
    phi = sim.order_parameter()
    assert np.all(phi >= -1.0 - 1e-9) and np.all(phi <= 1.0 + 1e-9)


def test_sample_contains_field():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8))
    sim.run(2)
    s = sim.sample()
    assert s["step"] == 2
    assert s["order_parameter"].shape == (8, 8, 8)
    assert s["order_parameter"].dtype == np.float32


def test_observables_keys():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=1.0)
    obs = sim.observables()
    for key in ("time", "step", "demix", "mass", "g"):
        assert key in obs


def test_checkpoint_restore_bit_exact():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=2.0, seed=4)
    sim.run(10)
    state = sim.checkpoint()
    sim.run(5)
    after_direct = sim.order_parameter()

    sim2 = LatticeBoltzmann3D(shape=(8, 8, 8), g=2.0, seed=999)  # different init
    sim2.restore(state)
    sim2.run(5)
    np.testing.assert_array_equal(sim2.order_parameter(), after_direct)
    assert sim2.step_count == 15


def test_restore_shape_mismatch_rejected():
    a = LatticeBoltzmann3D(shape=(8, 8, 8))
    b = LatticeBoltzmann3D(shape=(10, 8, 8))
    with pytest.raises(SteeringError):
        b.restore(a.checkpoint())


def test_parameter_validation():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8))
    with pytest.raises(SteeringError):
        sim.set_parameter("g", 99.0)
    with pytest.raises(SteeringError):
        sim.set_parameter("tau", 0.4)
    with pytest.raises(SteeringError):
        sim.set_parameter("viscosity", 1.0)
    with pytest.raises(SteeringError):
        LatticeBoltzmann3D(shape=(8, 8))
    with pytest.raises(SteeringError):
        LatticeBoltzmann3D(shape=(8, 8, 8), g=-1.0)


def test_steerable_parameters_view():
    sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=1.25, tau=0.9)
    assert sim.steerable_parameters() == {"g": 1.25, "tau": 0.9}


@settings(max_examples=8, deadline=None)
@given(
    g=st.floats(0.0, 3.5),
    steps=st.integers(1, 15),
    seed=st.integers(0, 100),
)
def test_property_mass_conservation(g, steps, seed):
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=g, seed=seed)
    m0 = sim.total_mass()
    sim.run(steps)
    assert sim.total_mass() == pytest.approx(m0, rel=1e-10)
