"""Integration: the section 3.3 control-state server synchronizing camera
state across sites, next to (not through) the heavyweight middleware."""

import numpy as np

from repro.des import Environment
from repro.net import SyncPipe
from repro.steering import ControlStateServer
from repro.steering.collab import StateUpdate
from repro.viz import Camera, Renderer, Geometry, SceneGraph


def test_camera_sync_across_three_sites_with_roles():
    """One controller moves the view; every site's local renderer ends up
    rendering the same camera; a viewer's attempt to steer is rejected;
    role promotion transfers control — exactly the roles of section 3.3."""
    env = Environment()
    server = ControlStateServer()
    pipes = {n: SyncPipe() for n in ("juelich", "manchester", "stuttgart")}
    server.join("juelich", pipes["juelich"].a, role="controller")
    server.join("manchester", pipes["manchester"].a, role="viewer")
    server.join("stuttgart", pipes["stuttgart"].a, role="viewer")

    # Each site has a *local* scene graph + renderer (the section 4.2
    # architecture) and applies camera state arriving from the server.
    cameras = {n: Camera() for n in pipes}
    rng = np.random.default_rng(0)
    cloud = rng.random((300, 3))

    def apply_updates(name):
        count = 0
        while True:
            ok, update = pipes[name].b.poll()
            if not ok:
                return count
            if update.key == "camera":
                state = {
                    k: np.asarray(v) if isinstance(v, list) else v
                    for k, v in update.value.items()
                }
                cameras[name].apply_state(state)
                count += 1

    # The controller orbits the view and publishes the new state.
    cameras["juelich"].orbit(0.6)
    state = {k: (v.tolist() if hasattr(v, "tolist") else v)
             for k, v in cameras["juelich"].state().items()}
    pipes["juelich"].b.send(StateUpdate("camera", state, origin="juelich"))
    server.pump()
    assert apply_updates("manchester") == 1
    assert apply_updates("stuttgart") == 1

    # All three local renderers now produce the same picture.
    frames = {}
    for name in pipes:
        r = Renderer(48, 36)
        r.camera = cameras[name]
        sg = SceneGraph()
        sg.add_node("cloud", Geometry("points", cloud))
        sg.render_into(r)
        frames[name] = r.fb.color.copy()
    np.testing.assert_array_equal(frames["juelich"], frames["manchester"])
    np.testing.assert_array_equal(frames["juelich"], frames["stuttgart"])

    # A viewer trying to move the camera is ignored.
    cameras["manchester"].orbit(1.0)
    bad_state = {k: (v.tolist() if hasattr(v, "tolist") else v)
                 for k, v in cameras["manchester"].state().items()}
    pipes["manchester"].b.send(StateUpdate("camera", bad_state,
                                           origin="manchester"))
    stats = server.pump()
    assert stats["rejected"] == 1
    assert apply_updates("stuttgart") == 0  # nothing redistributed

    # Promote Manchester; now its updates go through.
    server.set_role("manchester", "controller")
    pipes["manchester"].b.send(StateUpdate("camera", bad_state,
                                           origin="manchester"))
    stats = server.pump()
    assert stats["applied"] == 1
    assert apply_updates("juelich") == 1
    assert apply_updates("stuttgart") == 1


def test_cutting_plane_param_rides_the_same_server():
    """Visualization parameters like thresholds/planes (section 3.3
    examples) share the state server with the camera."""
    server = ControlStateServer()
    ctl, view = SyncPipe(), SyncPipe()
    server.join("ctl", ctl.a, role="controller")
    server.join("view", view.a, role="viewer")
    ctl.b.send(StateUpdate("cutplane", {"point": [8.0, 5.0, 2.0],
                                        "normal": [0.0, 0.0, 1.0]},
                           origin="ctl"))
    ctl.b.send(StateUpdate("threshold", 0.35, origin="ctl"))
    server.pump()
    got = {}
    while True:
        ok, update = view.b.poll()
        if not ok:
            break
        got[update.key] = update.value
    assert got["cutplane"]["point"] == [8.0, 5.0, 2.0]
    assert got["threshold"] == 0.35
    assert server.state["threshold"] == 0.35
