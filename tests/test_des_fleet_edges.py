"""DES-kernel edge cases the fleet engine leans on.

A fleet run multiplies every kernel corner by hundreds of sessions:
conditions built over events that have already failed, interrupts landing
on processes parked inside AnyOf/AllOf races, and ``run(until=event)``
against schedules that drain early.  These must behave — and keep their
failed-event accounting straight — or one crashed session would take the
whole world down.
"""

import pytest

from repro.des import AllOf, AnyOf, Environment, Interrupt
from repro.errors import SimulationError


class Boom(Exception):
    pass


def _failing_child(env):
    yield env.timeout(1.0)
    raise Boom("child died")


def test_anyof_over_already_failed_subevent_fails_condition():
    env = Environment()
    log = {}

    def waiter():
        child = env.process(_failing_child(env))
        try:
            yield child
        except Boom:
            log["caught_direct"] = env.now
        # The child is now processed *and* failed; a condition built over
        # it must immediately fail rather than hang or double-raise.
        try:
            yield AnyOf(env, [child, env.timeout(5.0)])
        except Boom:
            log["caught_condition"] = env.now

    env.process(waiter())
    env.run()
    assert log["caught_direct"] == 1.0
    assert log["caught_condition"] == 1.0  # immediate, not at the timeout


def test_allof_over_already_failed_subevent_fails_condition():
    env = Environment()
    log = {}

    def waiter():
        child = env.process(_failing_child(env))
        try:
            yield child
        except Boom:
            pass
        ok_timer = env.timeout(2.0)
        try:
            yield AllOf(env, [ok_timer, child])
        except Boom:
            log["caught"] = env.now

    env.process(waiter())
    env.run()
    assert log["caught"] == 1.0


def test_condition_failure_without_waiter_propagates_from_run():
    # A failed sub-event must not be silently swallowed just because it
    # was wrapped in a condition nobody ended up yielding on.
    env = Environment()

    def spawner():
        child = env.process(_failing_child(env))
        AnyOf(env, [child, env.timeout(10.0)])
        yield env.timeout(0.1)
        return "spawned"

    env.process(spawner())
    with pytest.raises(Boom):
        env.run()


def test_interrupt_of_process_parked_on_condition():
    env = Environment()
    log = {}

    def parked():
        try:
            yield AllOf(env, [env.timeout(10.0), env.timeout(20.0)])
            log["outcome"] = "completed"
        except Interrupt as intr:
            log["outcome"] = ("interrupted", intr.cause, env.now)
            # The process keeps living after the interrupt.
            yield env.timeout(1.0)
            log["resumed_at"] = env.now
        return "done"

    def interrupter(victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="rebalance")

    victim = env.process(parked())
    env.process(interrupter(victim))
    env.run()
    assert log["outcome"] == ("interrupted", "rebalance", 3.0)
    assert log["resumed_at"] == 4.0
    # The abandoned condition's timers still fire without resuming the
    # victim or corrupting the schedule (the world keeps running).
    assert victim.value == "done"
    assert env.now == 20.0


def test_interrupt_of_process_parked_on_anyof_race():
    # The VISIT timeout race: steer-vs-timeout, then the session is torn
    # down by the fleet driver mid-race.
    env = Environment()
    log = {}

    def racer():
        reply = env.event()
        try:
            yield AnyOf(env, [reply, env.timeout(30.0)])
            log["outcome"] = "raced"
        except Interrupt:
            log["outcome"] = "torn down"

    victim = env.process(racer())

    def teardown():
        yield env.timeout(0.5)
        victim.interrupt()

    env.process(teardown())
    env.run()
    assert log["outcome"] == "torn down"


def test_run_until_event_when_schedule_drains_mid_wait():
    env = Environment()
    never = env.event()  # nobody will ever trigger this

    def background():
        yield env.timeout(1.0)

    env.process(background())
    with pytest.raises(SimulationError):
        env.run(until=never)
    # The drained run still advanced to the last processed event.
    assert env.now == 1.0


def test_run_until_failed_event_raises_and_defuses():
    env = Environment()
    child = None

    def world():
        yield env.timeout(0.5)

    def spawn():
        nonlocal child
        child = env.process(_failing_child(env))
        yield env.timeout(0.1)

    env.process(world())
    env.process(spawn())
    env.run(until=0.2)
    with pytest.raises(Boom):
        env.run(until=child)
    # run() took responsibility: the failure is defused, so continuing
    # the world afterwards must not re-raise it.
    assert child.defused
    env.run()
