"""Tests for the in-process SPMD runtime."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    CommStats,
    DeadlockError,
    Gather,
    Recv,
    Reduce,
    Send,
    run_spmd,
)
from repro.parallel.comm import Alltoall


def test_single_rank_trivial():
    def prog(comm):
        return comm.rank
        yield  # pragma: no cover

    assert run_spmd(1, prog) == [0]


def test_send_recv_ring():
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield Send(dest=right, data=comm.rank)
        got = yield Recv(source=left)
        return got

    assert run_spmd(4, prog) == [3, 0, 1, 2]


def test_recv_blocks_until_send():
    def prog(comm):
        if comm.rank == 0:
            got = yield Recv(source=1, tag=5)
            return got
        # rank 1 does other work first, then sends
        yield Barrier()
        return None

    # rank0 recv + rank1 barrier: deadlock (barrier never completes)
    with pytest.raises(DeadlockError):
        run_spmd(2, prog)


def test_tag_matching():
    def prog(comm):
        if comm.rank == 0:
            yield Send(dest=1, data="a", tag=1)
            yield Send(dest=1, data="b", tag=2)
            return None
        second = yield Recv(source=0, tag=2)
        first = yield Recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, prog)[1] == ("a", "b")


def test_bcast():
    def prog(comm):
        data = yield Bcast(root=0, data="payload" if comm.rank == 0 else None)
        return data

    assert run_spmd(3, prog) == ["payload"] * 3


def test_reduce_sum_root_only():
    def prog(comm):
        result = yield Reduce(value=comm.rank + 1, root=0, op="sum")
        return result

    assert run_spmd(4, prog) == [10, None, None, None]


def test_allreduce_max():
    def prog(comm):
        result = yield Allreduce(value=comm.rank * 2, op="max")
        return result

    assert run_spmd(5, prog) == [8] * 5


def test_allreduce_numpy_arrays():
    def prog(comm):
        result = yield Allreduce(value=np.full(3, comm.rank, dtype=np.float64))
        return result

    results = run_spmd(3, prog)
    for r in results:
        np.testing.assert_array_equal(r, np.full(3, 3.0))


def test_gather_and_allgather():
    def prog(comm):
        g = yield Gather(value=comm.rank**2, root=1)
        ag = yield Allgather(value=comm.rank)
        return (g, ag)

    results = run_spmd(3, prog)
    assert results[0] == (None, [0, 1, 2])
    assert results[1] == ([0, 1, 4], [0, 1, 2])


def test_alltoall():
    def prog(comm):
        out = yield Alltoall(values=[f"{comm.rank}->{j}" for j in range(comm.size)])
        return out

    results = run_spmd(3, prog)
    assert results[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_wrong_size_rejected():
    def prog(comm):
        yield Alltoall(values=[1])

    with pytest.raises(SimulationError):
        run_spmd(3, prog)


def test_barrier_synchronizes():
    order = []

    def prog(comm):
        order.append(("before", comm.rank))
        yield Barrier()
        order.append(("after", comm.rank))
        return None

    run_spmd(3, prog)
    befores = [i for i, (phase, _) in enumerate(order) if phase == "before"]
    afters = [i for i, (phase, _) in enumerate(order) if phase == "after"]
    assert max(befores) < min(afters)


def test_collective_type_mismatch_raises():
    def prog(comm):
        if comm.rank == 0:
            yield Barrier()
        else:
            yield Allreduce(value=1)

    with pytest.raises(DeadlockError, match="mismatch"):
        run_spmd(2, prog)


def test_deadlock_detected():
    def prog(comm):
        # Everyone receives, nobody sends.
        got = yield Recv(source=(comm.rank + 1) % comm.size)
        return got

    with pytest.raises(DeadlockError, match="blocked"):
        run_spmd(3, prog)


def test_stats_accounting():
    stats = CommStats()

    def prog(comm):
        yield Send(dest=(comm.rank + 1) % comm.size, data=np.zeros(100))
        yield Recv(source=(comm.rank - 1) % comm.size)
        yield Allreduce(value=1.0)
        return None

    run_spmd(2, prog, stats=stats)
    assert stats.p2p_messages == 2
    assert stats.p2p_bytes == 2 * 800
    assert stats.collectives == 1


def test_fn_args_passed_through():
    def prog(comm, base):
        total = yield Allreduce(value=base + comm.rank)
        return total

    assert run_spmd(2, prog, 10) == [21, 21]


def test_non_generator_program_rejected():
    def prog(comm):
        return 1

    with pytest.raises(SimulationError):
        run_spmd(2, prog)
