"""Codec unit + property tests: round-trips in both byte orders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.wire import coerce_array, decode, describe, encode, encoded_size


@pytest.mark.parametrize("bo", ["<", ">"])
@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2**31 - 1,
        -(2**31),
        2**31,  # forces INT64
        -(2**63),
        3.14159,
        float("inf"),
        "",
        "hello",
        "ünïcödé ✓",
        b"",
        b"\x00\xff raw",
        [],
        [1, "two", 3.0, None],
        {"a": 1, "b": [2, {"c": "deep"}]},
    ],
)
def test_scalar_roundtrip(value, bo):
    assert decode(encode(value, bo)) == value


@pytest.mark.parametrize("bo", ["<", ">"])
@pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32, np.float64])
def test_array_roundtrip(dtype, bo):
    arr = np.arange(24, dtype=dtype).reshape(2, 3, 4)
    out = decode(encode(arr, bo))
    assert out.dtype == np.dtype(dtype)
    assert out.shape == arr.shape
    np.testing.assert_array_equal(out, arr)


def test_decoded_array_is_native_order():
    arr = np.linspace(0, 1, 10, dtype=np.float64)
    out = decode(encode(arr, ">"))
    assert out.dtype.byteorder in ("=", "<" if np.little_endian else ">")
    np.testing.assert_array_equal(out, arr)


def test_empty_and_zero_dim_arrays():
    empty = np.array([], dtype=np.float32)
    out = decode(encode(empty))
    assert out.shape == (0,) and out.dtype == np.float32
    scalar = np.array(7.5, dtype=np.float64)  # 0-d
    out = decode(encode(scalar))
    assert out.shape == () and float(out) == 7.5


def test_struct_inside_list_inside_struct():
    value = {"rows": [{"x": np.arange(3, dtype=np.int32)}, {"x": None}]}
    out = decode(encode(value))
    np.testing.assert_array_equal(out["rows"][0]["x"], np.arange(3, dtype=np.int32))
    assert out["rows"][1]["x"] is None


def test_bool_not_confused_with_int():
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1
    assert decode(encode(1)) is not True or decode(encode(1)) == 1


def test_unsupported_type_raises():
    with pytest.raises(CodecError):
        encode(object())


def test_unsupported_array_dtype_raises():
    with pytest.raises(CodecError):
        encode(np.array(["a", "b"]))


def test_non_string_struct_key_raises():
    with pytest.raises(CodecError):
        encode({1: "x"})


def test_truncated_buffer_raises():
    blob = encode({"a": np.arange(100, dtype=np.float64)})
    with pytest.raises(CodecError):
        decode(blob[: len(blob) // 2])


def test_trailing_garbage_raises():
    with pytest.raises(CodecError):
        decode(encode(42) + b"\x00")


def test_bad_byteorder_marker():
    with pytest.raises(CodecError):
        decode(b"\x07\x02\x00\x00\x00\x00")


def test_encoded_size_matches():
    value = {"field": np.zeros(128, dtype=np.float32)}
    assert encoded_size(value) == len(encode(value))


def test_describe():
    assert describe(np.zeros((2, 3), dtype=np.float32)) == "array[float32][2, 3]"
    assert describe({"b": 1, "a": 2}) == "struct{a,b}"
    assert describe([1, 2]) == "list[2]"
    assert describe(1.0) == "float"


def test_coerce_array_precision():
    arr = np.linspace(0, 1, 5, dtype=np.float64)
    out = coerce_array(arr, np.float32)
    assert out.dtype == np.float32
    ints = coerce_array(np.array([1.9, 2.1]), np.int32)
    assert ints.dtype == np.int32


def test_coerce_array_bad_target():
    with pytest.raises(CodecError):
        coerce_array(np.zeros(3), np.complex128)


# -- property tests -----------------------------------------------------------

json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(value=json_like, bo=st.sampled_from(["<", ">"]))
def test_property_roundtrip(value, bo):
    assert decode(encode(value, bo)) == value


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(st.floats(allow_nan=False, width=32), min_size=0, max_size=64),
    dtype=st.sampled_from([np.float32, np.float64]),
    bo=st.sampled_from(["<", ">"]),
)
def test_property_array_roundtrip(data, dtype, bo):
    arr = np.array(data, dtype=dtype)
    out = decode(encode(arr, bo))
    assert out.dtype == np.dtype(dtype)
    np.testing.assert_array_equal(out, arr)
