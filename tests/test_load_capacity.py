"""Capacity models and the in-flight session ledger."""

import pytest

from repro.errors import LoadError
from repro.fleet import FleetDriver
from repro.load import CapacityLedger, SiteCapacity, capacity_of


def test_site_capacity_min_of_layers():
    cap = SiteCapacity(gateway_slots=4, container_slots=8, vbroker_slots=6)
    assert cap.slots == 4
    with pytest.raises(LoadError):
        SiteCapacity(gateway_slots=0, container_slots=1, vbroker_slots=1)


def test_ledger_acquire_release_and_errors():
    led = CapacityLedger()
    led.register_site(0, 2)
    with pytest.raises(LoadError):
        led.register_site(0, 2)  # duplicate
    with pytest.raises(LoadError):
        led.acquire(99)  # unknown site
    led.acquire(0)
    led.acquire(0)
    assert led.free(0) == 0 and led.inflight(0) == 2
    with pytest.raises(LoadError):
        led.acquire(0)  # full
    led.release(0)
    assert led.free(0) == 1
    led.release(0)
    with pytest.raises(LoadError):
        led.release(0)  # below zero


def test_drain_and_reopen_semantics():
    led = CapacityLedger()
    led.register_site(0, 2)
    led.register_site(1, 2)
    led.acquire(1)
    led.drain(1)
    assert led.is_drained(1)
    assert led.free(1) == 0  # drained sites never have room
    assert led.sites_with_room() == [0]
    assert led.active_sites() == [0] and led.drained_sites() == [1]
    with pytest.raises(LoadError):
        led.acquire(1)
    # The running session still releases cleanly after the drain.
    led.release(1)
    assert led.inflight(1) == 0
    led.reopen(1)
    assert led.free(1) == 2


def test_totals_and_utilization():
    led = CapacityLedger()
    led.register_site(0, 2)
    led.register_site(1, 4)
    led.acquire(0)
    led.acquire(1)
    led.acquire(1)
    assert led.total_slots == 6
    assert led.total_inflight == 3
    assert led.utilization == pytest.approx(0.5)
    led.drain(1)
    # Drained slots leave the denominator; its sessions still count.
    assert led.total_slots == 2
    assert led.snapshot() == {0: (1, 2, False), 1: (2, 4, True)}


def test_capacity_of_reads_the_fabric():
    driver = FleetDriver(n_sites=1, queue_slots=5)
    cap = capacity_of(driver.sites[0], container_slots=3, vbroker_slots=9)
    assert cap.gateway_slots == 5
    assert cap.slots == 3  # the container is the tightest layer here
    led = CapacityLedger.for_driver(driver, container_slots=3)
    assert led.sites() == [0]
    assert led.slots(0) == 3
