"""Adaptive scenario search: determinism, resume, quarantine, export.

The properties under test mirror the grid campaign's contract, lifted
to the search loop:

* the proposal sequence is a pure function of (seed, strategy, space) —
  1 worker and N supervised workers write **byte-identical** archives;
* killing the search mid-generation loses nothing: re-running against
  the half-filled store replays the strategy, skips settled cells and
  converges to the byte-identical final archive;
* quarantined proposals score worst-case, are never re-executed and
  never re-proposed;
* an exported cliff cell is a frozen single-cell grid spec that replays
  byte-identically through the ordinary :class:`CampaignRunner`.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    AxisPoint,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    derive_seed,
)
from repro.campaign.cli import EXIT_OK, EXIT_QUARANTINED, main as cli_main
from repro.campaign.runner import FAULT_ENV
from repro.campaign.search import (
    WORST_SCORE,
    Constraint,
    EvolutionaryStrategy,
    Objective,
    RandomStrategy,
    SearchArchive,
    SearchRunner,
    SearchSpec,
    SuccessiveHalvingStrategy,
    default_archive_path,
    make_strategy,
)
from repro.campaign.space import (
    ParamRange,
    ParamSpace,
    assignment_digest,
    validate_path,
)
from repro.errors import CampaignError
from repro.obs import MetricsRegistry


def tiny_space():
    return ParamSpace(
        name="tiny-search",
        scenario=AxisPoint("paper", {
            "suite": "paper", "duration": 1.0, "cadence": 0.5,
            "participants": 1,
        }),
        arrival=AxisPoint("poisson", {"kind": "poisson", "rate": 1.0}),
        faults=AxisPoint("random", {"random": {}}),
        policy=AxisPoint("ll", {"placement": "least-loaded"}),
        ranges=[
            ParamRange("arrival.rate", 0.5, 3.0),
            ParamRange("faults.random.n_faults", 1, 3, kind="int"),
        ],
        base={"n_sites": 2, "queue_slots": 2, "queue_limit": 8,
              "horizon": 3.0, "until": 40.0},
    )


def tiny_search(seed=13):
    """2 generations x 2: 4 cheap evaluations, evolutionary strategy."""
    return SearchSpec(
        name="tiny-search",
        space=tiny_space(),
        strategy=EvolutionaryStrategy(elites=2),
        objective=Objective(metric="goodput", goal="min"),
        generations=2,
        population=2,
        seed=seed,
    )


def strip_perf(records):
    return {
        rec["cell_id"]: {k: v for k, v in rec.items() if k != "perf"}
        for rec in records
    }


def dumps(obj):
    return json.dumps(obj, sort_keys=True)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The serial, unsupervised search every other mode must match."""
    store = ResultStore(tmp_path_factory.mktemp("ref") / "ref.jsonl")
    runner = SearchRunner(tiny_search(), store, workers=1)
    archive = runner.run()
    assert not runner.supervise
    assert len(archive.evaluations) == 4
    return store, archive, runner.archive_path.read_text()


# -- the space ----------------------------------------------------------------


def test_param_paths_are_validated():
    assert validate_path("faults.random.window") == \
        ("faults", "random", "window")
    for bad in ("rate", "arrival.", "nope.rate", "faults.window",
                "faults.explicit.window", "arrival.rate.extra", ""):
        with pytest.raises(CampaignError):
            validate_path(bad)
    with pytest.raises(CampaignError):
        ParamRange("arrival.rate", 2.0, 1.0)
    with pytest.raises(CampaignError):
        ParamRange("arrival.rate", 1.0, 2.0, kind="str")
    with pytest.raises(CampaignError):
        ParamRange("arrival.rate", 0.0, 2.0, log=True)


def test_int_ranges_stay_integers_everywhere():
    r = ParamRange("faults.random.n_faults", 1, 5, kind="int")
    rng = random.Random(3)
    for _ in range(20):
        v = r.sample(rng)
        assert isinstance(v, int) and 1 <= v <= 5
        m = r.mutate(v, rng, 0.3)
        assert isinstance(m, int) and 1 <= m <= 5
    assert r.coerce(3.7) == 4
    assert r.coerce(99.0) == 5


def test_clamp_coerces_declared_and_passes_unknown_paths():
    space = tiny_space()
    out = space.clamp({
        "arrival.rate": 99.0,
        "faults.random.n_faults": 2.4,
        "base.horizon": 8.0,  # not a declared range: passes through
    })
    assert out["arrival.rate"] == 3.0
    assert out["faults.random.n_faults"] == 2
    assert out["base.horizon"] == 8.0
    with pytest.raises(CampaignError):
        space.clamp({"arrival.rate": True})
    with pytest.raises(CampaignError):
        space.clamp({"bogus.rate": 1.0})


def test_lowering_is_a_pure_function_of_the_assignment():
    space = tiny_space()
    assignment = {"arrival.rate": 2.25, "faults.random.n_faults": 2}
    digest = assignment_digest(space.clamp(assignment))
    cell = space.lower(assignment, seed=13)
    # every coordinate carries the digest suffix, so cell id and seed
    # are pure functions of the assignment
    assert cell.cell_id == (
        f"paper@{digest}/poisson@{digest}/random@{digest}/ll@{digest}"
    )
    assert cell.seed == derive_seed(13, cell.cell_id)
    assert cell.arrival.params["rate"] == 2.25
    assert cell.faults.params["random"]["n_faults"] == 2
    # the campaign name does not feed the seed: exported fragments may
    # rename freely and still replay identically
    renamed = space.lower(assignment, seed=13, name="export-1")
    assert renamed.cell_id == cell.cell_id and renamed.seed == cell.seed
    # base.* rides the policy point and reaches the cell's base config
    cell2 = space.lower({**assignment, "base.horizon": 9.0}, seed=13)
    assert cell2.base["horizon"] == 9.0
    assert cell2.cell_id != cell.cell_id and cell2.seed != cell.seed


def test_space_round_trip_and_version_gate():
    space = tiny_space()
    clone = ParamSpace.from_dict(space.to_dict())
    assert clone.to_dict() == space.to_dict()
    doc = space.to_dict()
    doc["version"] = 99
    with pytest.raises(CampaignError, match="version"):
        ParamSpace.from_dict(doc)


# -- objective + strategies ---------------------------------------------------


def test_objective_scores_and_constraints():
    obj = Objective(metric="goodput", goal="min",
                    constraints=(Constraint("sessions", lo=4.0, weight=2.0),))
    row = {"goodput": 0.5, "sessions": 1}
    assert obj.score(row) == pytest.approx(0.5 + 2.0 * 3.0)
    assert obj.score({"goodput": 0.5, "sessions": 10}) == pytest.approx(0.5)
    assert Objective(metric="goodput", goal="max").score(
        {"goodput": 0.5}) == pytest.approx(-0.5)
    assert obj.score({"goodput": float("nan"), "sessions": 9}) == WORST_SCORE
    with pytest.raises(CampaignError):
        obj.score({"sessions": 9})
    with pytest.raises(CampaignError):
        Objective(goal="sideways")
    assert Objective.from_dict(obj.to_dict()).to_dict() == obj.to_dict()


def test_strategies_are_deterministic_pure_functions():
    space = tiny_space()
    for strategy in (
        RandomStrategy(),
        EvolutionaryStrategy(elites=2),
        SuccessiveHalvingStrategy(budget_lo=3.0, budget_hi=12.0),
    ):
        a = strategy.propose(space, (), random.Random(99), 4)
        b = strategy.propose(space, (), random.Random(99), 4)
        assert a == b and len(a) == 4
        assert make_strategy(strategy.to_dict()).to_dict() == \
            strategy.to_dict()
    with pytest.raises(CampaignError):
        make_strategy({"kind": "gradient-descent"})
    with pytest.raises(CampaignError):
        make_strategy({"kind": "random", "bogus": 1})


def test_halving_stamps_budgets_and_promotes_survivors():
    from repro.campaign.search import Evaluation

    space = tiny_space()
    strategy = SuccessiveHalvingStrategy(
        budget_path="base.horizon", budget_lo=3.0, budget_hi=12.0,
        eta=2, rungs=2,
    )
    rung0 = strategy.propose(space, (), random.Random(1), 4)
    assert all(a["base.horizon"] == 3.0 for a in rung0)
    history = [
        Evaluation(generation=0, assignment=a, cell_id=f"c{i}",
                   seed=i, score=float(i))
        for i, a in enumerate(rung0)
    ]
    rung1 = strategy.propose(space, tuple(history), random.Random(2), 4)
    # top 4 // 2 survivors, re-proposed at the doubled budget
    assert len(rung1) == 2
    assert all(a["base.horizon"] == 6.0 for a in rung1)
    assert [a["arrival.rate"] for a in rung1] == \
        [rung0[0]["arrival.rate"], rung0[1]["arrival.rate"]]


def test_quarantined_assignments_are_never_reproposed():
    from repro.campaign.search import Evaluation

    # A 2-point space: with one point quarantined, every proposal must
    # land on the other one (the resample loop has nowhere else to go).
    space = ParamSpace(
        name="binary",
        scenario=AxisPoint("paper", {"suite": "paper"}),
        arrival=AxisPoint("poisson", {"kind": "poisson"}),
        faults=AxisPoint("random", {"random": {}}),
        policy=AxisPoint("ll", {"placement": "least-loaded"}),
        ranges=[ParamRange("faults.random.n_faults", 1, 2, kind="int")],
    )
    poison = {"faults.random.n_faults": 1}
    history = (Evaluation(generation=0, assignment=poison, cell_id="p",
                          seed=0, score=WORST_SCORE, quarantined=True),)
    for strategy in (RandomStrategy(), EvolutionaryStrategy(elites=1)):
        proposals = strategy.propose(space, history, random.Random(5), 8)
        assert len(proposals) == 8
        assert all(
            assignment_digest(a) != assignment_digest(poison)
            for a in proposals
        )


# -- the search loop ----------------------------------------------------------


def test_search_spec_round_trip_and_version_gate():
    spec = tiny_search()
    clone = SearchSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    doc = spec.to_dict()
    doc["version"] = 99
    with pytest.raises(CampaignError, match="version"):
        SearchSpec.from_dict(doc)
    doc = spec.to_dict()
    doc["schema"] = "repro.campaign/spec-v1"
    with pytest.raises(CampaignError, match="schema"):
        SearchSpec.from_dict(doc)


def test_supervised_parallel_search_is_byte_identical(reference, tmp_path):
    ref_store, ref_archive, ref_text = reference
    store = ResultStore(tmp_path / "par.jsonl")
    metrics = MetricsRegistry()
    runner = SearchRunner(
        tiny_search(), store, workers=2,
        max_cell_seconds=60.0, max_cell_retries=2, metrics=metrics,
    )
    assert runner.supervise
    archive = runner.run()
    # the archive file, the evaluation sequence and the exported cliffs
    # are all byte-identical to the serial run
    assert runner.archive_path.read_text() == ref_text
    assert dumps(archive.to_dict()) == dumps(ref_archive.to_dict())
    assert dumps(archive.export(top=2)) == dumps(ref_archive.export(top=2))
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    assert metrics.get("campaign_search_generations_total").value() == 2
    assert metrics.get("campaign_search_evaluations_total").value() == 4
    assert metrics.get("campaign_search_best_objective").value() == \
        archive.best(1)[0].score


def test_resume_mid_generation_replays_to_identical_archive(
    reference, tmp_path
):
    ref_store, ref_archive, ref_text = reference
    # Simulate a death after the very first cell of generation 0: a
    # fresh store pre-seeded with only that record (any prefix of the
    # settled set is a state an interrupted run can leave behind).
    first = ref_store.cell_records()[0]
    store = ResultStore(tmp_path / "half.jsonl")
    store.ensure_header(tiny_search())
    store.append(first)
    # a stale archive from the interrupted run must be overwritten
    stale = default_archive_path(store.path)
    stale.write_text("{}")
    runner = SearchRunner(tiny_search(), store, workers=1)
    archive = runner.run()
    assert first["cell_id"] not in runner.executed
    assert len(runner.executed) == 3
    assert runner.archive_path == stale
    assert runner.archive_path.read_text() == ref_text
    assert dumps(strip_perf(store.cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))
    # load() round-trips the written archive
    assert SearchArchive.load(runner.archive_path).dumps() == \
        archive.dumps() == ref_text


def test_sigkill_mid_search_resumes_to_identical_archive(
    reference, tmp_path
):
    """End-to-end: SIGKILL the search process mid-generation; the store
    is consistent and a resume converges to the byte-identical final
    archive."""
    ref_store, ref_archive, ref_text = reference
    spec = tiny_search()
    spec_path = tmp_path / "search.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    store_path = tmp_path / "kill.jsonl"
    # The second gen-0 proposal hangs (replayed here from the pure
    # strategy function), so the process is alive mid-generation when
    # the SIGKILL lands.
    rng = random.Random(derive_seed(spec.seed, "search-gen", 0))
    proposals = spec.strategy.propose(spec.space, (), rng, spec.population)
    victim = spec.cell_for(spec.space.clamp(proposals[1])).cell_id
    state = tmp_path / "fault-state"
    state.mkdir()
    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps({
        "cells": {victim: {"action": "hang", "times": -1,
                           "seconds": 60.0}},
        "state_dir": str(state),
    }))
    env = dict(os.environ, PYTHONPATH="src", **{FAULT_ENV: str(faults)})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "search", "run",
         "--spec", str(spec_path), "--store", str(store_path)],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if store_path.exists() and len(ResultStore(store_path)) >= 1:
            break
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.send_signal(signal.SIGKILL)
    proc.communicate(timeout=30.0)
    assert proc.returncode == -signal.SIGKILL
    store = ResultStore(store_path)
    assert store.dropped_lines == 0
    assert 1 <= len(store) < 4
    # Resume (fault cleared) from the store alone — the header carries
    # the search spec — and converge to the byte-identical archive.
    code = cli_main(["search", "resume", "--store", str(store_path)])
    assert code == EXIT_OK
    assert default_archive_path(store_path).read_text() == ref_text
    assert dumps(strip_perf(ResultStore(store_path).cell_records())) == \
        dumps(strip_perf(ref_store.cell_records()))


def test_poison_cell_scores_worst_case_and_is_skipped_on_resume(
    tmp_path, monkeypatch
):
    spec = tiny_search()
    rng = random.Random(derive_seed(spec.seed, "search-gen", 0))
    proposals = spec.strategy.propose(spec.space, (), rng, spec.population)
    victim = spec.cell_for(spec.space.clamp(proposals[0])).cell_id
    state = tmp_path / "fault-state"
    state.mkdir()
    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps({
        "cells": {victim: {"action": "raise", "times": -1}},
        "state_dir": str(state),
    }))
    monkeypatch.setenv(FAULT_ENV, str(faults))
    store = ResultStore(tmp_path / "poison.jsonl")
    runner = SearchRunner(
        spec, store, workers=1, supervise=True,
        max_cell_retries=1, retry_backoff=0.01,
    )
    archive = runner.run()
    assert store.quarantined_ids() == {victim}
    poisoned = [ev for ev in archive.evaluations if ev.quarantined]
    assert [ev.cell_id for ev in poisoned] == [victim]
    assert poisoned[0].score == WORST_SCORE
    # worst-case score: the poison cell never appears in best() or the
    # cliff export
    assert victim not in {ev.cell_id for ev in archive.best(10)}
    assert victim not in {
        c["cell_id"] for c in archive.export(top=10)["cells"]
    }
    # resume (fault still armed): the quarantine is settled state — the
    # poison cell is not re-executed and the archive is reproduced
    resumed = SearchRunner(tiny_search(), ResultStore(store.path),
                           workers=1, supervise=True, max_cell_retries=1)
    archive2 = resumed.run()
    assert resumed.executed == []
    assert dumps(archive2.to_dict()) == dumps(archive.to_dict())


def test_exported_cliff_replays_byte_identically_via_grid_runner(
    reference, tmp_path
):
    ref_store, ref_archive, _ = reference
    export = ref_archive.export(top=1)
    frag = export["cells"][0]
    spec = CampaignSpec.from_dict(frag["spec"])
    assert spec.n_cells == 1
    assert spec.cells()[0].cell_id == frag["cell_id"]
    assert spec.cells()[0].seed == frag["seed"]
    # the frozen fragment round-trips through its own wire format
    assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    store = ResultStore(tmp_path / "replay.jsonl")
    CampaignRunner(spec, store, workers=1).run()
    replayed = strip_perf(store.cell_records())[frag["cell_id"]]
    original = strip_perf(ref_store.cell_records())[frag["cell_id"]]
    assert replayed == original


def test_cli_search_run_export_report(reference, tmp_path, capsys):
    ref_store, ref_archive, ref_text = reference
    spec_path = tmp_path / "search.json"
    spec_path.write_text(json.dumps(tiny_search().to_dict()))
    store = tmp_path / "cli.jsonl"
    code = cli_main([
        "search", "run", "--spec", str(spec_path), "--store", str(store),
        "--workers", "2", "--max-cell-retries", "2",
        "--fail-on-violations",
    ])
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "generation 0:" in out and "top" in out
    assert default_archive_path(store).read_text() == ref_text
    # resume is a no-op replay
    assert cli_main(["search", "resume", "--store", str(store)]) == EXIT_OK
    assert "0 cells" in capsys.readouterr().out.split("ran ", 1)[1]
    # export writes the cliffs document
    cliffs = tmp_path / "cliffs.json"
    assert cli_main([
        "search", "export", "--store", str(store),
        "--top", "2", "--out", str(cliffs),
    ]) == EXIT_OK
    capsys.readouterr()
    doc = json.loads(cliffs.read_text())
    assert doc["schema"] == "repro.campaign/cliffs-v1"
    assert dumps(doc) == dumps(ref_archive.export(top=2))
    # the dashboard renders with the search panels
    html = tmp_path / "dash.html"
    assert cli_main([
        "search", "report", "--store", str(store), "--html", str(html),
    ]) == EXIT_OK
    capsys.readouterr()
    page = html.read_text()
    assert "objective vs. generation" in page
    assert "all proposals" in page and "top cells" in page
    # a grid resume pointed at a search store is redirected, not mangled
    assert cli_main(["resume", "--store", str(store)]) == 2
    assert "search resume" in capsys.readouterr().err


def test_cli_search_gates_on_quarantine(tmp_path, monkeypatch, capsys):
    spec = tiny_search()
    rng = random.Random(derive_seed(spec.seed, "search-gen", 0))
    proposals = spec.strategy.propose(spec.space, (), rng, spec.population)
    victim = spec.cell_for(spec.space.clamp(proposals[0])).cell_id
    state = tmp_path / "fault-state"
    state.mkdir()
    faults = tmp_path / "faults.json"
    faults.write_text(json.dumps({
        "cells": {victim: {"action": "raise", "times": -1}},
        "state_dir": str(state),
    }))
    monkeypatch.setenv(FAULT_ENV, str(faults))
    spec_path = tmp_path / "search.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    store = tmp_path / "gate.jsonl"
    code = cli_main([
        "search", "run", "--spec", str(spec_path), "--store", str(store),
        "--max-cell-retries", "1", "--fail-on-violations",
    ])
    err = capsys.readouterr().err
    assert code == EXIT_QUARANTINED
    assert "quarantined" in err
