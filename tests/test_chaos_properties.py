"""Property-based seeded chaos: random fault schedules x arrival traces.

The two properties the chaos layer stakes its name on:

1. **Invariants hold under arbitrary seeded chaos** — whatever the
   random fault schedule and arrival trace, the InvariantMonitor
   reports zero conservation-law violations.  Recovery is allowed to
   *lose the fight* (sessions may abandon when every site is down); it
   is never allowed to lose *track*.
2. **Same seed, same world, byte-for-byte** — a rerun with identical
   seeds produces an identical FleetReport, injector log and recovery
   summary, so every chaos scenario doubles as a regression test.

The fleet runs are full middleware stacks (UNICORE consignment, OGSA
deploy, registry publish per session), so example counts are kept small
and the fabric lean — the cheap thousands-of-cases style fuzzing lives
in the DES/property suites below this layer.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosHarness, FaultSchedule
from repro.fleet import FleetDriver
from repro.load import AdmissionController, PoissonArrivals


def _chaos_run(fault_seed: int, arrival_seed: int, n_faults: int):
    driver = FleetDriver(n_sites=2, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=8)
    world = ChaosHarness(driver, ctl)
    pairs = [
        (driver.sites[0].hpc_name, driver.sites[0].svc_name),
        (driver.sites[0].svc_name, driver.sites[1].svc_name),
    ]
    schedule = FaultSchedule.random(
        seed=fault_seed,
        horizon=10.0,
        n_faults=n_faults,
        sites=len(driver.sites),
        shards=len(driver.shards),
        hosts=tuple(s.hpc_name for s in driver.sites),
        host_pairs=tuple(pairs),
    )
    world.install(schedule)
    arrivals = PoissonArrivals(
        rate=0.8, horizon=8.0, seed=arrival_seed,
        duration=2.0, cadence=0.5, participants=1,
    )
    # Generous drain: every queued/requeued session must either admit
    # and finish or hit its patience — quiescence is part of the check.
    report = ctl.run(arrivals, until=200.0)
    verdict = world.verdict(report)
    return report, verdict, schedule


@settings(max_examples=10, deadline=None)
@given(
    fault_seed=st.integers(0, 10_000),
    arrival_seed=st.integers(0, 10_000),
    n_faults=st.integers(1, 4),
)
def test_property_random_chaos_never_breaks_invariants(
    fault_seed, arrival_seed, n_faults
):
    report, verdict, schedule = _chaos_run(fault_seed, arrival_seed, n_faults)
    assert verdict["invariant_violations"] == 0, "\n".join(
        verdict["violations"] + schedule.describe()
    )
    # Conservation at the report level too: every offer is accounted.
    q = report.queue
    assert q.offered == q.admitted + q.rejected + q.abandoned
    # Nothing stayed stuck: admitted sessions all reached a terminal
    # telemetry state.
    assert report.completed + report.failed == report.n_sessions


@settings(max_examples=5, deadline=None)
@given(
    fault_seed=st.integers(0, 10_000),
    arrival_seed=st.integers(0, 10_000),
)
def test_property_same_seed_reproduces_byte_for_byte(
    fault_seed, arrival_seed
):
    def blob():
        report, verdict, schedule = _chaos_run(fault_seed, arrival_seed, 3)
        return json.dumps(
            {
                "report": report.to_dict(),
                "verdict": verdict,
                "schedule": schedule.describe(),
            },
            sort_keys=True,
        )

    assert blob() == blob()


def test_random_schedules_differ_across_seeds():
    """The generator actually explores the taxonomy (sanity on top of
    the per-kind exclusion logic)."""
    kinds = set()
    for seed in range(12):
        schedule = FaultSchedule.random(
            seed=seed, horizon=20.0, n_faults=4, sites=2, shards=2,
            brokers=2, hosts=("h",), host_pairs=(("h", "g"),),
        )
        kinds.update(f.kind for f in schedule)
    assert len(kinds) >= 6
