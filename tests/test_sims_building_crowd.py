"""Building climatization and crowd simulation tests."""

import numpy as np
import pytest

from repro.errors import SteeringError
from repro.sims import BuildingClimate, CrowdSim


# -- building ----------------------------------------------------------------


def test_building_temperature_stays_finite_and_bounded():
    sim = BuildingClimate(shape=(16, 10, 6))
    sim.run(100)
    T = sim.temperature
    assert np.all(np.isfinite(T))
    assert T.min() > 0.0 and T.max() < 60.0


def test_cooling_vent_lowers_mean_temperature():
    sim = BuildingClimate(shape=(16, 10, 6), vent_temperature=16.0, ambient=28.0)
    t0 = sim.mean_temperature()
    sim.run(200)
    assert sim.mean_temperature() < t0


def test_steering_vent_temperature_changes_outcome():
    cold = BuildingClimate(shape=(12, 8, 6), vent_temperature=14.0)
    warm = BuildingClimate(shape=(12, 8, 6), vent_temperature=30.0)
    cold.run(150)
    warm.run(150)
    assert cold.mean_temperature() < warm.mean_temperature() - 1.0


def test_heat_load_warms_building():
    low = BuildingClimate(shape=(12, 8, 6), heat_load=0.0)
    high = BuildingClimate(shape=(12, 8, 6), heat_load=2.0)
    low.run(120)
    high.run(120)
    assert high.mean_temperature() > low.mean_temperature()


def test_comfort_fraction_in_unit_interval():
    sim = BuildingClimate(shape=(12, 8, 6))
    sim.run(50)
    assert 0.0 <= sim.comfort_fraction() <= 1.0


def test_building_parameter_validation():
    sim = BuildingClimate(shape=(12, 8, 6), dt=0.5)
    with pytest.raises(SteeringError):
        sim.set_parameter("vent_speed", -1.0)
    with pytest.raises(SteeringError):
        sim.set_parameter("vent_speed", 10.0)  # CFL violation, rolled back
    assert sim.vent_speed == 0.3
    with pytest.raises(SteeringError):
        sim.set_parameter("nope", 1)
    with pytest.raises(SteeringError):
        BuildingClimate(shape=(2, 2, 2))


def test_building_checkpoint_roundtrip():
    sim = BuildingClimate(shape=(12, 8, 6))
    sim.run(20)
    state = sim.checkpoint()
    sim.run(10)
    expected = sim.temperature.copy()
    sim2 = BuildingClimate(shape=(12, 8, 6), seed=99)
    sim2.restore(state)
    sim2.run(10)
    np.testing.assert_array_equal(sim2.temperature, expected)


def test_building_sample_and_observables():
    sim = BuildingClimate(shape=(12, 8, 6))
    sim.run(3)
    s = sim.sample()
    assert s["temperature"].shape == (12, 8, 6)
    obs = sim.observables()
    assert "mean_temperature" in obs and "comfort_fraction" in obs


# -- crowd -----------------------------------------------------------------


def test_agents_stay_on_floor():
    sim = CrowdSim(n_agents=100, seed=1)
    sim.run(60)
    w, h = sim.floor
    assert np.all(sim.positions[:, 0] >= 0) and np.all(sim.positions[:, 0] <= w)
    assert np.all(sim.positions[:, 1] >= 0) and np.all(sim.positions[:, 1] <= h)


def test_agents_gather_at_exhibits():
    sim = CrowdSim(n_agents=150, seed=2)
    sim.run(120)
    assert sim.occupancy().sum() > 0.3  # a good share near some exhibit


def test_steering_attractiveness_shifts_occupancy():
    """Section 4.7: steer visitors into certain regions of the building."""
    sim = CrowdSim(n_agents=200, seed=3, dwell_steps=5)
    sim.run(100)
    base = sim.occupancy()
    # Make exhibit 2 overwhelmingly attractive.
    sim.set_parameter("attractiveness", np.array([0.05, 0.05, 10.0]))
    sim.run(300)
    steered = sim.occupancy()
    assert steered[2] > base[2] + 0.15
    assert steered[2] > steered[0] and steered[2] > steered[1]


def test_crowd_parameter_validation():
    sim = CrowdSim(n_agents=10)
    with pytest.raises(SteeringError):
        sim.set_parameter("attractiveness", np.array([1.0, 2.0]))  # wrong shape
    with pytest.raises(SteeringError):
        sim.set_parameter("attractiveness", np.array([-1.0, 1.0, 1.0]))
    with pytest.raises(SteeringError):
        sim.set_parameter("speed", 2.0)
    with pytest.raises(SteeringError):
        CrowdSim(n_agents=0)


def test_crowd_checkpoint_restores_rng_exactly():
    sim = CrowdSim(n_agents=50, seed=5)
    sim.run(10)
    state = sim.checkpoint()
    sim.run(10)
    expected = sim.positions.copy()
    sim2 = CrowdSim(n_agents=50, seed=77)
    sim2.restore(state)
    sim2.run(10)
    np.testing.assert_array_equal(sim2.positions, expected)


def test_crowd_sample_and_observables():
    sim = CrowdSim(n_agents=30)
    sim.run(5)
    s = sim.sample()
    assert s["positions"].shape == (30, 2)
    assert s["goal"].shape == (30,)
    obs = sim.observables()
    assert "occupancy_0" in obs and "occupancy_2" in obs
