"""Orchestrator tests: one call stands up the whole Figure 1/2 fabric."""

import pytest

from repro.des import Environment
from repro.errors import SteeringError
from repro.net import Firewall, Network
from repro.ogsa import (
    HandleResolver,
    OgsaSteeringClient,
    OgsiLiteContainer,
    RegistryService,
)
from repro.sims import LatticeBoltzmann3D
from repro.steering.orchestrator import (
    RealityGridOrchestrator,
    make_outbound_app_factory,
)
from repro.unicore import (
    Certificate,
    Gateway,
    JobStatus,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore

GATEWAY_PORT = 4433


def build_world():
    env = Environment()
    net = Network(env)
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_host("svc")
    net.add_host("user")
    net.add_link("user", "hpc", latency=0.01, bandwidth=10e6 / 8)
    net.add_link("user", "svc", latency=0.005, bandwidth=10e6 / 8)
    net.add_link("svc", "hpc", latency=0.008, bandwidth=100e6 / 8)

    trust = TrustStore({"CA"})
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("hpc"))
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "SITE", tsi)
    gw.register_vsite("SITE", "hpc", 9000)
    gw.start()
    njs.start()

    factory = make_outbound_app_factory(
        lambda: LatticeBoltzmann3D(shape=(8, 8, 8), g=0.5, seed=5),
        service_host_name="svc",
        compute_time=0.05,
    )
    tsi.register_application("lb3d", factory)
    njs.register_application("LB3D", "lb3d")

    container = OgsiLiteContainer(net.host("svc"), 8000)
    container.deploy(RegistryService())
    container.start()
    resolver = HandleResolver()

    uc = UnicoreClient(
        net.host("user"), UserIdentity(Certificate("CN=u", "CA"), "u"),
        "hpc", GATEWAY_PORT,
    )
    orch = RealityGridOrchestrator(uc, container, resolver)
    return env, net, orch, resolver, uc


def test_orchestrator_launch_publish_steer():
    env, net, orch, resolver, uc = build_world()
    outcome = {}

    def scenario():
        yield from uc.connect()
        handles = yield from orch.launch("LB3D", "SITE",
                                         arguments={"steps": 400},
                                         job_name="demo")
        outcome["handles"] = handles

        # A pure OGSA user: registry -> bind -> steer; no UNICORE contact.
        client = OgsaSteeringClient(net.host("user"), resolver, "svc", 8000)
        found = yield from client.find_services(application="LB3D")
        outcome["found"] = {e["metadata"]["type"]: e["handle"] for e in found}
        steer = outcome["found"]["steering"]
        yield from client.bind(steer)
        value = yield from client.invoke(steer, "set_parameter",
                                         name="g", value=2.5)
        outcome["steered"] = value
        status = yield from client.invoke(steer, "get_status")
        outcome["status"] = status

        job = yield from orch.job_status("SITE")
        outcome["job"] = job[0]
        yield from client.invoke(steer, "stop")
        client.close()

    env.process(scenario())
    env.run(until=60.0)
    assert set(outcome["handles"]) == {"steering", "viz"}
    assert outcome["found"]["steering"] == outcome["handles"]["steering"]
    assert outcome["steered"] == 2.5
    assert outcome["status"]["parameters"]["g"] == 2.5
    assert outcome["job"] is JobStatus.RUNNING
    # Registry metadata ties services to the UNICORE job.
    assert orch.job_id is not None


def test_orchestrator_job_status_before_launch_rejected():
    env, net, orch, resolver, uc = build_world()

    def scenario():
        yield from uc.connect()
        with pytest.raises(SteeringError):
            yield from orch.job_status("SITE")

    env.process(scenario())
    env.run(until=5.0)


def test_orchestrated_job_completes_when_stopped():
    env, net, orch, resolver, uc = build_world()
    outcome = {}

    def scenario():
        yield from uc.connect()
        handles = yield from orch.launch("LB3D", "SITE",
                                         arguments={"steps": 30},
                                         job_name="short")
        # Let the bounded job run out on its own.
        status = yield from uc.wait_for("SITE", orch.job_id,
                                        poll_interval=0.5, timeout=60.0)
        outcome["status"] = status

    env.process(scenario())
    env.run(until=120.0)
    assert outcome["status"] is JobStatus.SUCCESSFUL
