"""Grab-bag edge tests for branches no other file exercises."""

import numpy as np
import pytest

from repro.des import Environment
from repro.errors import OgsaError, ReproError, VisitError
from repro.net import Network, SyncPipe
from repro.ogsa import OgsiLiteContainer, ServiceConnection, VisualizationService
from repro.steering.control import SampleMsg
from repro.visit import VisitServer
from repro.viz import Camera, Renderer


def test_visit_server_latest_without_data_raises():
    env = Environment()
    net = Network(env)
    net.add_host("v")
    server = VisitServer(net.host("v"), 6000, password="pw")
    with pytest.raises(VisitError, match="no data received"):
        server.latest(42)


def test_visit_server_on_data_callback_fires():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.001, bandwidth=1e8)
    server = VisitServer(net.host("b"), 6000, password="pw")
    seen = []
    server.on_data = lambda tag, payload: seen.append((tag, payload))
    server.start()
    from repro.visit import VisitClient

    client = VisitClient(net.host("a"), "b", 6000, "pw")

    def sim():
        yield from client.connect(timeout=1.0)
        yield from client.send(9, "hello")

    env.process(sim())
    env.run(until=2.0)
    assert seen == [(9, "hello")]


def test_network_log_records_connects():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.001, bandwidth=1e8)
    net.host("b").listen(5)

    def client():
        yield from net.host("a").connect("b", 5)

    env.process(client())
    env.run()
    recs = net.log.select(kind="connect")
    assert len(recs) == 1
    assert recs[0].detail["dst"] == "b" and recs[0].detail["port"] == 5
    assert net.connect_attempts == 1


def test_viz_service_input_validation_and_no_sample_fault():
    env = Environment()
    net = Network(env)
    net.add_host("s")
    net.add_host("u")
    net.add_link("s", "u", latency=0.001, bandwidth=1e8)
    container = OgsiLiteContainer(net.host("s"), 8000)
    pipe = SyncPipe()
    container.deploy(VisualizationService("viz", pipe.a))
    container.start()
    result = {}

    def user():
        conn = ServiceConnection(net.host("u"), "s", 8000)
        yield from conn.open()
        with pytest.raises(OgsaError, match="3-vectors"):
            yield from conn.invoke("viz", "set_view", eye=[1, 2],
                                   target=[0, 0, 0])
        with pytest.raises(OgsaError, match="no sample"):
            yield from conn.invoke("viz", "render_frame")
        result["stats"] = yield from conn.invoke("viz", "stats")

    env.process(user())
    env.run(until=5.0)
    assert result["stats"]["frames_rendered"] == 0
    assert result["stats"]["latest_step"] == -1


def test_viz_service_ignores_samples_without_field():
    env = Environment()
    net = Network(env)
    net.add_host("s")
    container = OgsiLiteContainer(net.host("s"), 8000)
    pipe = SyncPipe()
    svc = VisualizationService("viz", pipe.a, field_key="density")
    container.deploy(svc)
    container.start()
    pipe.b.send(SampleMsg(seq=1, step=3, data={"other": np.zeros(3)}))
    pipe.b.send(SampleMsg(seq=2, step=4, data={"density": np.zeros((4, 4, 4))}))
    env.run(until=1.0)
    assert svc.latest_step == 4  # the field-less sample was skipped


def test_renderer_empty_inputs_are_noops():
    r = Renderer(16, 16)
    assert r.draw_points(np.zeros((0, 3))) == 0
    r.draw_triangles(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.intp))
    r.draw_lines(np.zeros((0, 2, 3)))
    assert (r.fb.color == 0).all()


def test_renderer_rejects_unknown_geometry_kind():
    from repro.viz import Geometry

    r = Renderer(8, 8)
    g = Geometry("points", np.zeros((1, 3)))
    g.kind = "voxels"  # corrupt it
    with pytest.raises(ReproError, match="unknown geometry kind"):
        r.render_geometry(g)


def test_camera_rejects_degenerate_basis():
    cam = Camera(eye=np.zeros(3), target=np.zeros(3))
    with pytest.raises(ReproError, match="zero-length"):
        cam.basis()


def test_ogsa_container_malformed_envelope_fault():
    env = Environment()
    net = Network(env)
    net.add_host("s")
    net.add_host("u")
    net.add_link("s", "u", latency=0.001, bandwidth=1e8)
    container = OgsiLiteContainer(net.host("s"), 8000)
    container.start()
    result = {}

    def user():
        conn = yield from net.host("u").connect("s", 8000)
        conn.send({"not": "an envelope"})
        reply = yield from conn.recv(timeout=5.0)
        result["fault"] = reply["fault"]

    env.process(user())
    env.run(until=5.0)
    assert "envelope" in result["fault"]
    assert container.faults_returned == 1


def test_frame_decoder_pending_bytes_visibility():
    from repro.wire import FrameDecoder, encode_frame

    dec = FrameDecoder()
    blob = encode_frame(1, b"abcdef")
    dec.feed(blob[:5])
    assert dec.pending_bytes == 5
    dec.feed(blob[5:])
    assert dec.pending_bytes == 0


def test_store_get_waiters_dont_steal_after_process_end():
    """A drained schedule with parked getters simply ends the run."""
    env = Environment()
    from repro.des import Store

    store = Store(env)

    def consumer():
        yield store.get()  # never satisfied

    env.process(consumer())
    env.run()  # terminates: blocked processes hold no scheduled events
    assert env.now == 0.0
