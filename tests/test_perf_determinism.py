"""The optimized kernel must not change a single reported byte.

The PR-4 hot-path work (slotted events, timeout recycling, tombstoned
interrupts, parked viz pumps, stop-exiting steering pumps, bit-exact
roll kernels, cached wire sizes) is only admissible because same-seed
runs stay *byte-for-byte* identical to the seed behaviour.  The golden
files under ``tests/golden/`` were generated from the pre-optimization
tree; these tests fail on any drift — in latencies, counters, chaos
recovery verdicts or invariant results.
"""

import json
import pathlib

import pytest

from repro.des.sched import ENV_VAR, available_backends
from repro.fleet import FleetDriver, fleet_of

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _fleet_report(n: int = 8):
    specs = fleet_of(n, stagger=0.2)
    driver = FleetDriver(specs, n_sites=4)
    report = driver.run(wall_seconds=None)
    return report, driver


def test_fleet_report_matches_seed_golden():
    report, _driver = _fleet_report()
    golden = json.loads((GOLDEN / "fleet_report_8.json").read_text())
    assert report.to_dict() == golden


def test_fleet_report_serialization_is_byte_identical():
    report, _driver = _fleet_report()
    ours = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    golden = (GOLDEN / "fleet_report_8.json").read_text().rstrip("\n")
    assert ours == golden


def test_same_seed_runs_are_identical():
    a, _ = _fleet_report()
    b, _ = _fleet_report()
    assert a.to_dict() == b.to_dict()


def test_chaos_cell_matches_seed_golden():
    # The compound outage+vbroker chaos cell: report, recovery verdict
    # and invariant results all pinned against the seed tree.
    from benchmarks.bench_chaos import _run

    report, verdict, _wall = _run("outage+vbroker")
    golden = json.loads((GOLDEN / "chaos_outage_vbroker.json").read_text())
    assert report.to_dict() == golden["report"]
    assert verdict == golden["verdict"]
    assert verdict["invariant_violations"] == 0


# -- scheduler backends ------------------------------------------------------
#
# The calendar-queue scheduler (PR 8) is only admissible under the same
# rule as the PR-4 work: same-seed runs must stay byte-for-byte
# identical on *every* backend.  The goldens were generated on the heap;
# each backend must reproduce them exactly.


@pytest.mark.parametrize("backend", available_backends())
def test_fleet_golden_is_byte_identical_on_every_backend(backend, monkeypatch):
    monkeypatch.setenv(ENV_VAR, backend)
    report, _driver = _fleet_report()
    ours = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    golden = (GOLDEN / "fleet_report_8.json").read_text().rstrip("\n")
    assert ours == golden


@pytest.mark.parametrize("backend", available_backends())
def test_chaos_golden_matches_on_every_backend(backend, monkeypatch):
    from benchmarks.bench_chaos import _run

    monkeypatch.setenv(ENV_VAR, backend)
    report, verdict, _wall = _run("outage+vbroker")
    golden = json.loads((GOLDEN / "chaos_outage_vbroker.json").read_text())
    assert report.to_dict() == golden["report"]
    assert verdict == golden["verdict"]


def test_campaign_cell_identical_across_backends(monkeypatch):
    # One campaign cell (arrivals + faults + placement over the full
    # stack) rerun per backend; everything but the wall-clock `perf`
    # envelope must agree to the byte.
    from repro.campaign import AxisPoint, CampaignSpec, run_cell

    spec = CampaignSpec(
        name="xbackend",
        seed=11,
        base={"n_sites": 2, "queue_slots": 2, "queue_limit": 8,
              "horizon": 3.0, "until": 40.0},
        scenarios=[AxisPoint("paper", {
            "suite": "paper", "duration": 1.0, "cadence": 0.5,
            "participants": 1,
        })],
        arrivals=[AxisPoint("poisson", {"kind": "poisson", "rate": 1.5})],
        faults=[AxisPoint("crash", {"faults": [
            {"kind": "container-crash", "at": 1.2, "site": 0,
             "duration": 2.0},
        ]})],
        policies=[AxisPoint("ll", {"placement": "least-loaded"})],
    )
    [cell] = spec.cells()
    records = {}
    for backend in available_backends():
        monkeypatch.setenv(ENV_VAR, backend)
        rec = run_cell(cell)
        records[backend] = {k: v for k, v in rec.items() if k != "perf"}
    reference = records.pop("heap")
    for backend, rec in records.items():
        assert json.dumps(rec, sort_keys=True) == \
            json.dumps(reference, sort_keys=True), backend


def test_pumps_stop_burning_events_after_sessions_end():
    # The run deadline leaves ~45 virtual seconds of grace after the
    # last session; at 100 polls/sec/pump the seed kernel burned >9000
    # events per session on silence.  The stop-exiting steering pump and
    # the parked viz pump must keep the event count in the same order of
    # magnitude as the actual message traffic.
    report, driver = _fleet_report(1)
    assert report.completed == 1
    assert driver.env.events_processed < 4000, driver.env.events_processed
