"""Cross-stack integration tests: the showcase paths end-to-end.

These tests wire several subsystems together the way the SC'03 demos did,
asserting on cross-cutting behaviour no unit test covers.
"""

from repro.des import Environment
from repro.net import Firewall, Network
from repro.covise import MapEditor
from repro.ogsa import (
    OgsiLiteContainer,
    ServiceConnection,
    SteeringService,
)
from repro.sims import LatticeBoltzmann3D
from repro.sims.pepc import PlasmaSim, beam_on_sphere_setup
from repro.steering import (
    CollaborativeSession,
    LinkAdapter,
    SteeredApplication,
    SteeringClient,
    steered_app_process,
)
from repro.unicore import (
    AbstractJobObject,
    Certificate,
    ExecuteTask,
    Gateway,
    JobStatus,
    NetworkJobSupervisor,
    StageOut,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.visit import VisitClient, VisitServer

GATEWAY_PORT = 4433


def test_unicore_launched_simulation_steered_through_ogsa():
    """UNICORE launches the app as a batch job; while the job RUNS, an
    OGSA steering service (fed by a control link out of the job) steers
    it; the job then stages out the final state."""
    env = Environment()
    net = Network(env)
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_host("svc")
    net.add_host("user")
    net.add_link("user", "hpc", latency=0.01, bandwidth=10e6 / 8)
    net.add_link("user", "svc", latency=0.005, bandwidth=10e6 / 8)
    net.add_link("svc", "hpc", latency=0.008, bandwidth=100e6 / 8)

    trust = TrustStore({"CA"})
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("hpc"))
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "SITE", tsi)
    gw.register_vsite("SITE", "hpc", 9000)
    gw.start()
    njs.start()

    container = OgsiLiteContainer(net.host("svc"), 8000)
    container.start()
    deployed = {}

    def lb3d_app(env_, host, args, uspace):
        """The incarnated steered application: connects its control link
        OUT to the service host (firewall-friendly direction)."""
        sim = LatticeBoltzmann3D(shape=(8, 8, 8), g=0.5, seed=3)
        app = SteeredApplication(sim, name="lb3d")
        conn = yield from host.connect("svc", 7001)
        app.attach_control(LinkAdapter(conn))
        steps = yield from steered_app_process(env_, app, compute_time=0.05,
                                               max_steps=args["steps"])
        uspace.write("final.dat", f"{sim.g} {sim.demix_measure()}".encode())
        return steps

    tsi.register_application("lb3d", lb3d_app)
    njs.register_application("LB3D", "lb3d")

    listener = net.host("svc").listen(7001)

    def service_side():
        conn = yield from listener.accept()
        svc = SteeringService("steer", LinkAdapter(conn),
                              application_name="LB3D")
        container.deploy(svc)
        deployed["ok"] = True

    env.process(service_side())
    result = {}

    def user():
        client = UnicoreClient(
            net.host("user"),
            UserIdentity(Certificate("CN=u", "CA"), "u"),
            "hpc", GATEWAY_PORT,
        )
        yield from client.connect()
        ajo = AbstractJobObject("steered-lb3d", "SITE")
        ajo.add_task(ExecuteTask("run", "LB3D", arguments={"steps": 200},
                                 steered=True))
        ajo.add_task(StageOut("out", "final.dat"), after=["run"])
        job_id = yield from client.consign(ajo)

        while not deployed:
            yield env.timeout(0.1)
        svc_conn = ServiceConnection(net.host("user"), "svc", 8000)
        yield from svc_conn.open()
        yield env.timeout(1.0)
        value = yield from svc_conn.invoke("steer", "set_parameter",
                                           name="g", value=3.0)
        result["steered"] = value
        status = yield from client.wait_for("SITE", job_id,
                                            poll_interval=0.5, timeout=120.0)
        result["status"] = status
        result["outcome"] = (yield from client.retrieve("SITE", job_id,
                                                        "final.dat")).decode()

    env.process(user())
    env.run(until=120.0)
    assert result["steered"] == 3.0
    assert result["status"] is JobStatus.SUCCESSFUL
    g_final, demix_final = result["outcome"].split()
    assert float(g_final) == 3.0
    assert float(demix_final) > 0.3  # the steer took physical effect


def test_visit_sample_feeds_covise_pipeline():
    """PEPC ships its sample over VISIT; the visualization side feeds the
    field into a COVISE map whose renderer produces actual pixels."""
    env = Environment()
    net = Network(env)
    net.add_host("sim-host")
    net.add_host("viz-host")
    net.add_link("sim-host", "viz-host", latency=0.002, bandwidth=100e6 / 8)

    from repro.sims.pepc.meshdiag import DiagnosticMesh

    sim = PlasmaSim(setup=beam_on_sphere_setup(n_plasma=96, n_beam=16, seed=4),
                    theta=0.6)
    mesh = DiagnosticMesh(lo=(-4, -2, -2), hi=(2, 2, 2), shape=(10, 10, 10))

    server = VisitServer(net.host("viz-host"), 6000, password="pw")
    server.start()
    client = VisitClient(net.host("sim-host"), "viz-host", 6000, "pw")

    def simulation():
        yield from client.connect(timeout=1.0)
        for _ in range(4):
            yield env.timeout(0.1)
            sim.step()
            yield from client.send(1, {"rho": mesh.charge_density(sim)})

    env.process(simulation())
    env.run(until=5.0)

    # The visualization host builds a COVISE map over the received field.
    latest = server.latest(1)["rho"]
    editor = MapEditor(net)
    editor.add_source("read", "viz-host", lambda: latest)
    editor.add("IsoSurface", "iso", "viz-host", level=float(latest.mean()))
    editor.add("Renderer", "render", "viz-host")
    editor.connect("read", "field", "iso", "field")
    editor.connect("iso", "surface", "render", "surface")

    def run_map():
        yield from editor.controller.execute()

    env.process(run_map())
    env.run(until=10.0)
    frame = editor.controller.output_object("render", "frame")
    assert frame.pixels.shape == (120, 160, 3)
    assert (frame.pixels.sum(axis=2) > 0).any()  # the plasma is visible


def test_collaborative_session_over_real_network_links():
    """The steering-core CollaborativeSession with participants on
    separate hosts: fan-out consistency + master handover survive real
    link latency."""
    env = Environment()
    net = Network(env)
    for h in ("hpc", "hub", "site-a", "site-b"):
        net.add_host(h)
    net.add_link("hpc", "hub", latency=0.005, bandwidth=100e6 / 8)
    net.add_link("hub", "site-a", latency=0.02, bandwidth=10e6 / 8)
    net.add_link("hub", "site-b", latency=0.04, bandwidth=10e6 / 8)

    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5, seed=2)
    app = SteeredApplication(sim, name="lb3d", sample_interval=2)
    wired = {}

    def wire():
        lst = net.host("hub").listen(7001)

        def accept():
            conn = yield from lst.accept()
            wired["app_side"] = LinkAdapter(conn)

        env.process(accept())
        conn = yield from net.host("hpc").connect("hub", 7001)
        app.attach_control(LinkAdapter(conn))
        app.attach_sample_sink(LinkAdapter(conn))

    env.process(wire())

    clients = {}
    session_holder = {}

    def hub():
        while "app_side" not in wired:
            yield env.timeout(0.01)
        session = CollaborativeSession(wired["app_side"])
        session_holder["s"] = session
        listeners = {name: net.host("hub").listen(port)
                     for name, port in (("site-a", 7100), ("site-b", 7101))}
        for name, lst in listeners.items():
            conn = yield from lst.accept()
            session.join(name, LinkAdapter(conn))
        while True:
            session.pump()
            yield env.timeout(0.01)

    def participant(name, port):
        conn = yield from net.host(name).connect("hub", port)
        clients[name] = SteeringClient(LinkAdapter(conn), name=name)

    env.process(hub())
    env.process(participant("site-a", 7100))
    env.process(participant("site-b", 7101))
    env.process(steered_app_process(env, app, compute_time=0.05))
    outcome = {}

    def scenario():
        while len(clients) < 2:
            yield env.timeout(0.05)
        yield env.timeout(2.0)
        # The observer tries to steer: rejected.
        seq_b = clients["site-b"].set_parameter("g", 0.1)
        # The master steers: applied.
        seq_a = clients["site-a"].set_parameter("g", 2.0)
        yield env.timeout(1.0)
        clients["site-a"].drain()
        clients["site-b"].drain()
        outcome["a_ack"] = clients["site-a"].ack_for(seq_a)
        outcome["b_ack"] = clients["site-b"].ack_for(seq_b)
        # Master handover, then the former observer steers successfully.
        session_holder["s"].pass_master("site-a", "site-b")
        seq_b2 = clients["site-b"].set_parameter("g", 3.0)
        yield env.timeout(1.0)
        clients["site-b"].drain()
        outcome["b_ack2"] = clients["site-b"].ack_for(seq_b2)
        clients["site-a"].drain()
        outcome["samples"] = (
            [s.seq for s in clients["site-a"].samples],
            [s.seq for s in clients["site-b"].samples],
        )

    env.process(scenario())
    env.run(until=10.0)
    assert outcome["a_ack"].ok
    assert not outcome["b_ack"].ok and "observer" in outcome["b_ack"].error
    assert outcome["b_ack2"].ok
    assert app.sim.g == 3.0
    a_seqs, b_seqs = outcome["samples"]
    # Both sites saw the same sample stream (possibly offset by latency).
    common = min(len(a_seqs), len(b_seqs))
    assert common > 5
    assert a_seqs[:common] == b_seqs[:common]
