"""repro.obs: causal spans, Prometheus metrics, self-protection.

Four contracts pinned here:

* **causality** — with tracing on, every steer op's span parents back
  (transitively) to its session's admit span, and the whole span stream
  is byte-identical across two same-seed runs;
* **exposition** — ``MetricsRegistry.render`` conforms to the
  Prometheus text format (HELP/TYPE pairs, cumulative ``le`` buckets,
  escaped labels, trailing newline);
* **protection** — the circuit breaker walks
  closed -> open -> half-open -> {closed, open} on the sim clock under a
  seeded fault schedule; tenant quotas shed the noisy tenant only;
* **zero-cost default** — the golden fleet report stays byte-identical
  to the seed tree even with tracing and metrics ON (obs hooks must
  never touch RNG or scheduling).
"""

import json
import pathlib
import re

import pytest

from repro.des import Environment
from repro.errors import CircuitOpen, ObsError
from repro.fleet import FleetDriver, fleet_of
from repro.load import AdmissionController, PoissonArrivals
from repro.obs import (
    BackpressureSignal,
    CircuitBreaker,
    MetricsRegistry,
    Observability,
    TenantQuotas,
    Tracer,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _obs_fleet(tracing=True, quota=None, seed=7, rate=0.4):
    obs = Observability(tracing=tracing, metrics=True, breakers=True,
                        quota=quota)
    driver = FleetDriver(n_sites=2, queue_slots=3, obs=obs)
    ctl = AdmissionController(driver, queue_limit=8)
    arrivals = PoissonArrivals(rate=rate, horizon=10.0, seed=seed,
                               duration=2.0, cadence=0.5)
    report = ctl.run(arrivals)
    return obs, ctl, report


# -- causal spans ------------------------------------------------------------


def test_every_steer_op_parents_back_to_its_admit_span():
    obs, _ctl, report = _obs_fleet()
    tracer = obs.tracer
    assert report.completed > 0
    ops = tracer.find("steer-op")
    assert ops, "the fleet steered nothing"
    admit_ids = {s.span_id for s in tracer.find("admit")}
    for op in ops:
        chain = tracer.ancestry(op)
        assert any(s.span_id in admit_ids for s in chain), (
            f"steer-op {op.span_id} has no admit ancestor"
        )
        # ... and the chain tops out at the session root.
        assert chain[-1].name == "session"
        assert chain[-1].session == op.session


def test_span_tree_shape_and_outcomes():
    obs, ctl, report = _obs_fleet()
    tracer = obs.tracer
    counts = tracer.counts()["by_name"]
    n = report.completed + report.failed
    assert counts["session"] == counts["admit"] == counts["connect"] == n
    # Each session root closed with its outcome.
    for root in tracer.find("session"):
        assert root.end is not None
        assert root.attrs["outcome"] in ("complete", "fail", "cancel")
    for admit in tracer.find("admit"):
        assert admit.attrs["outcome"] == "admitted"
    # Viz frames land as instant events on the session roots.
    frames = sum(len(root.events) for root in tracer.find("session"))
    assert frames > 0
    assert all(
        name == "viz-frame"
        for root in tracer.find("session")
        for name, _, _ in root.events
    )


def test_same_seed_traced_runs_emit_identical_jsonl(tmp_path):
    paths = []
    for i in range(2):
        obs, _ctl, _report = _obs_fleet()
        path = tmp_path / f"trace-{i}.jsonl"
        obs.write_trace(path)
        paths.append(path)
    a, b = (p.read_bytes() for p in paths)
    assert a == b
    # ... and it is valid Chrome-trace JSONL with metadata + spans.
    events = [json.loads(line) for line in a.splitlines()]
    phases = {e["ph"] for e in events}
    assert phases >= {"M", "X", "i"}
    assert all(e["ph"] != "X" or e["dur"] >= 0 for e in events)


def test_tracer_requires_a_bound_environment():
    tracer = Tracer()
    with pytest.raises(ObsError, match="no environment bound"):
        tracer.begin("orphan")
    tracer.bind(Environment())
    with pytest.raises(ObsError, match="another environment"):
        tracer.bind(Environment())


# -- golden pins with obs ON -------------------------------------------------


def test_fleet_report_stays_golden_with_obs_enabled():
    # The strongest determinism claim: obs hooks touch no RNG and no
    # scheduling, so even a *traced* run reproduces the seed report
    # byte for byte.
    obs = Observability(tracing=True, metrics=True, breakers=True)
    specs = fleet_of(8, stagger=0.2)
    driver = FleetDriver(specs, n_sites=4, obs=obs)
    report = driver.run(wall_seconds=None)
    golden = json.loads((GOLDEN / "fleet_report_8.json").read_text())
    assert report.to_dict() == golden
    assert obs.tracer.counts()["sessions"] == 8


def test_batch_fleets_get_synthetic_admit_spans():
    obs = Observability(tracing=True)
    driver = FleetDriver(fleet_of(2, stagger=0.2), n_sites=2, obs=obs)
    driver.run(wall_seconds=None)
    admits = obs.tracer.find("admit")
    assert len(admits) == 2
    assert all(a.attrs.get("mode") == "batch" for a in admits)
    assert all(a.end == a.start for a in admits)


# -- Prometheus exposition ---------------------------------------------------

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _parse_exposition(text: str) -> dict:
    """Minimal conformance parse: family -> {type, help, samples}."""
    assert text.endswith("\n")
    families: dict = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert _NAME.match(name), name
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name in families, f"TYPE before HELP for {name}"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
        else:
            assert current is not None, f"sample before any family: {line}"
            sample, _, value = line.rpartition(" ")
            float(value)  # must parse
            families[current]["samples"].append((sample, float(value)))
    return families


def test_registry_renders_conformant_exposition():
    obs, ctl, report = _obs_fleet(quota=4)
    families = _parse_exposition(obs.metrics.render())
    # The acceptance surface: admission, pacing-independent fleet
    # series, and the circuit breakers are all present.
    for required in (
        "repro_admission_offered_total",
        "repro_admission_wait_seconds",
        "repro_steer_latency_seconds",
        "repro_steer_ops_total",
        "repro_sessions_total",
        "repro_circuit_state",
        "repro_quota_inflight",
    ):
        assert required in families, required
        assert families[required]["type"] is not None
    # Offered counter agrees with the queue telemetry.
    queue = ctl.telemetry
    offered = dict(families["repro_admission_offered_total"]["samples"])
    assert offered["repro_admission_offered_total"] == queue.offered
    # Histogram buckets are cumulative and end at +Inf == _count.
    hist = families["repro_admission_wait_seconds"]
    assert hist["type"] == "histogram"
    buckets = [v for s, v in hist["samples"] if "_bucket{" in s]
    assert buckets == sorted(buckets)
    inf = [v for s, v in hist["samples"] if 'le="+Inf"' in s]
    count = [v for s, v in hist["samples"] if s.endswith("_count")]
    assert inf == count == [queue.admitted]


def test_label_escaping_and_bad_names_rejected():
    reg = MetricsRegistry()
    counter = reg.counter("repro_test_total", "x", labels=("tenant",))
    counter.inc(tenant='we"ird\\ten\nant')
    line = [l for l in reg.render().splitlines() if "{" in l][0]
    assert '\\"' in line and "\\\\" in line and "\\n" in line
    with pytest.raises(ObsError):
        reg.counter("0bad", "x")
    with pytest.raises(ObsError):
        reg.counter("repro_test_total", "x", labels=("other",))  # reshape


# -- protection --------------------------------------------------------------


def test_breaker_walks_the_state_machine_on_the_sim_clock():
    env = Environment()
    breaker = CircuitBreaker("dep", env, failure_threshold=3,
                             recovery_time=5.0, half_open_max=1)
    seen = []
    breaker.observers.append(lambda b, old, new: seen.append((env.now, old, new)))

    # A seeded fault schedule: the dependency is dark during [1, 6),
    # then flaps once at its first probe, then heals for good.
    def world():
        for t in (1.0, 2.0, 3.0):  # three consecutive failures -> OPEN
            yield env.timeout(t - env.now)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        yield env.timeout(1.0)  # t=4: inside the window, calls shed
        assert not breaker.allow()
        with pytest.raises(CircuitOpen):
            breaker.guard("probe")
        yield env.timeout(4.5)  # t=8.5 >= 3+5: half-open probe admitted
        assert breaker.allow()
        breaker.record_failure()  # probe fails -> re-OPEN
        assert breaker.state == "open"
        yield env.timeout(6.0)  # t=14.5: next probe succeeds -> CLOSED
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    env.process(world())
    env.run()
    assert [(old, new) for _, old, new in seen] == [
        ("closed", "open"),
        ("open", "half-open"),
        ("half-open", "open"),
        ("open", "half-open"),
        ("half-open", "closed"),
    ]
    assert seen == breaker.transitions  # observer saw the audit trail
    assert breaker.snapshot()["transitions"] == [list(t) for t in breaker.transitions]
    # t=4 shed the raw allow() plus the guarded call.
    assert breaker.shorted == 2


def test_shadow_breaker_observes_without_shedding():
    env = Environment()
    breaker = CircuitBreaker("dep", env, failure_threshold=1,
                             recovery_time=5.0, enforcing=False)
    breaker.record_failure()
    assert breaker.state == "open"
    breaker.guard("anything")  # must NOT raise in shadow mode


def test_quota_sheds_only_the_noisy_tenant():
    obs, ctl, report = _obs_fleet(quota=2, rate=1.2)
    queue = ctl.telemetry
    assert queue.rejected > 0
    snap = obs.quotas.snapshot()
    assert snap["max_inflight"] == 2
    assert sum(snap["rejections"].values()) > 0
    # Conservation law still holds with quota rejects in the mix.
    assert queue.offered == (
        queue.admitted + queue.rejected + queue.abandoned + ctl.queue_depth
    )
    # Rejected offers got a traced verdict.
    rejects = obs.tracer.find("reject")
    assert len(rejects) == queue.rejected
    assert {s.attrs["reason"] for s in rejects} <= {"quota", "queue-full"}


def test_quota_acquire_is_idempotent_and_released():
    class Spec:
        def __init__(self, name, sim):
            self.name, self.sim = name, sim

    quotas = TenantQuotas(1)
    a0, a1 = Spec("a-0", "lb3d"), Spec("a-1", "lb3d")
    assert quotas.try_acquire(a0)
    assert quotas.try_acquire(a0)  # requeue of the same session: free
    assert not quotas.try_acquire(a1)  # tenant cap reached
    assert quotas.try_acquire(Spec("b-0", "crowd"))  # other tenant fine
    quotas.release(a0.name)
    quotas.release(a0.name)  # idempotent
    assert quotas.try_acquire(a1)
    assert quotas.inflight() == {"crowd": 1, "lb3d": 1}


def test_backpressure_blends_queue_and_pacing_lag():
    class FakeCtl:
        queue_depth, queue_limit = 3, 12

    class FakeRunner:
        behind = 0.8

    sig = BackpressureSignal(FakeCtl(), runner=FakeRunner(), behind_limit=1.0)
    assert sig.pressure() == pytest.approx(0.8)  # lag dominates
    FakeRunner.behind = 0.0
    sig2 = BackpressureSignal(FakeCtl(), runner=FakeRunner(), behind_limit=1.0)
    assert sig2.pressure() == pytest.approx(3 / 12)
    assert 0.0 <= sig2.snapshot()["pressure"] <= 1.0


def test_autoscaler_grows_on_pressure_alone():
    from repro.load import ReactiveAutoscaler

    obs = Observability(metrics=False)
    driver = FleetDriver(n_sites=1, queue_slots=2, obs=obs)
    ctl = AdmissionController(driver, queue_limit=12)

    class Pressure:
        value = 1.0

        def pressure(self):
            return self.value

    scaler = ReactiveAutoscaler(
        ctl, max_sites=2, high_depth=100, cooldown=0.0,
        pressure=Pressure(), pressure_high=0.75,
    )
    driver.env.run(until=1.5)  # one scaler tick, empty queue, full pressure
    assert [kind for _, kind, _ in scaler.events] == ["grow"]


# -- snapshots ---------------------------------------------------------------


def test_snapshot_is_json_able_and_complete():
    obs, _ctl, _report = _obs_fleet(quota=4)
    snap = obs.snapshot()
    json.dumps(snap)  # must serialize
    assert set(snap) == {"metrics", "trace", "breakers", "quotas"}
    assert set(snap["breakers"]) == {"broker", "registry"}
    assert snap["trace"]["sessions"] > 0
    assert snap["metrics"]["repro_admission_offered_total"]


def test_profiler_component_names_are_stable():
    import functools

    from repro.perf.profiler import _component_of

    def cb(event):
        pass

    class Pump:
        def __call__(self, event):
            pass

    name = _component_of(functools.partial(cb, 1), None)
    assert name.startswith("partial(") and name.endswith(".cb)")
    assert _component_of(
        functools.partial(functools.partial(cb, 1), 2), None
    ) == name
    # Callable instances attribute by type, never by repr (address).
    assert _component_of(Pump(), None) == _component_of(Pump(), None)
    assert "0x" not in _component_of(Pump(), None)
