"""UNICORE failure-path tests: dead tiers, malformed traffic, timeouts."""

import pytest

from repro.des import Environment
from repro.errors import TimeoutExpired, UnicoreError
from repro.net import Firewall, Network
from repro.unicore import (
    AbstractJobObject,
    Certificate,
    ExecuteTask,
    Gateway,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore

GATEWAY_PORT = 4433


def world(register_vsite=True, njs_up=True):
    env = Environment()
    net = Network(env)
    net.add_host("laptop")
    net.add_host("hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_link("laptop", "hpc", latency=0.01, bandwidth=10e6 / 8)
    gw = Gateway(net.host("hpc"), GATEWAY_PORT, trust=TrustStore({"CA"}),
                 relay_timeout=2.0)
    tsi = TargetSystemInterface(net.host("hpc"))
    njs = NetworkJobSupervisor(net.host("hpc"), 9000, "SITE", tsi)
    njs.register_application("SLEEPER", "sleep")
    if register_vsite:
        gw.register_vsite("SITE", "hpc", 9000)
    gw.start()
    if njs_up:
        njs.start()
    client = UnicoreClient(
        net.host("laptop"), UserIdentity(Certificate("CN=u", "CA"), "u"),
        "hpc", GATEWAY_PORT,
    )
    return env, net, gw, njs, tsi, client


def test_gateway_reports_dead_njs():
    """The vsite is registered but its NJS never started listening: the
    gateway reports it unreachable instead of hanging."""
    env, net, gw, njs, tsi, client = world(njs_up=False)
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("j", "SITE")
        ajo.add_task(ExecuteTask("run", "SLEEPER"))
        try:
            yield from client.consign(ajo)
        except UnicoreError as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run(until=30.0)
    assert "unreachable" in result["error"]


def test_gateway_rejects_pre_auth_traffic():
    env, net, gw, njs, tsi, client = world()
    result = {}

    def scenario():
        conn = yield from net.host("laptop").connect("hpc", GATEWAY_PORT)
        conn.send({"op": "consign", "vsite": "SITE"})  # no auth first
        reply = yield from conn.recv(timeout=5.0)
        result["reply"] = reply

    env.process(scenario())
    env.run(until=10.0)
    assert result["reply"]["ok"] is False
    assert "auth" in result["reply"]["error"]


def test_gateway_rejects_malformed_request_after_auth():
    env, net, gw, njs, tsi, client = world()
    result = {}

    def scenario():
        yield from client.connect()
        reply = yield from client.request({"op": "status"})  # no vsite
        result["reply"] = reply

    env.process(scenario())
    env.run(until=10.0)
    assert result["reply"]["ok"] is False
    assert "malformed" in result["reply"]["error"]


def test_client_request_before_connect_raises():
    env, net, gw, njs, tsi, client = world()

    def scenario():
        with pytest.raises(UnicoreError, match="not connected"):
            yield from client.request({"op": "status", "vsite": "SITE"})
        return True
        yield  # pragma: no cover

    p = env.process(scenario())
    assert env.run(until=p) is True


def test_wait_for_times_out_on_long_job():
    env, net, gw, njs, tsi, client = world()
    result = {}

    def scenario():
        yield from client.connect()
        ajo = AbstractJobObject("long", "SITE")
        ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=100.0))
        job_id = yield from client.consign(ajo)
        try:
            yield from client.wait_for("SITE", job_id, poll_interval=0.5,
                                       timeout=3.0)
        except TimeoutExpired as exc:
            result["error"] = str(exc)

    env.process(scenario())
    env.run(until=30.0)
    assert "still running" in result["error"]


def test_session_reconnect_after_close():
    env, net, gw, njs, tsi, client = world()
    result = {}

    def scenario():
        yield from client.connect()
        client.close()
        assert not client.authenticated
        yield from client.connect()
        ajo = AbstractJobObject("j", "SITE")
        ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=0.5))
        job_id = yield from client.consign(ajo)
        result["job_id"] = job_id

    env.process(scenario())
    env.run(until=30.0)
    assert result["job_id"].startswith("SITE-job-")
    assert gw.sessions_opened == 2


def test_unknown_job_and_file_errors():
    env, net, gw, njs, tsi, client = world()
    result = {}

    def scenario():
        yield from client.connect()
        try:
            yield from client.status("SITE", "SITE-job-999")
        except UnicoreError as exc:
            result["status_err"] = str(exc)
        ajo = AbstractJobObject("j", "SITE")
        ajo.add_task(ExecuteTask("run", "SLEEPER", wall_time=0.2))
        job_id = yield from client.consign(ajo)
        yield from client.wait_for("SITE", job_id, poll_interval=0.2)
        try:
            yield from client.retrieve("SITE", job_id, "nothing.dat")
        except UnicoreError as exc:
            result["retrieve_err"] = str(exc)

    env.process(scenario())
    env.run(until=30.0)
    assert "unknown job" in result["status_err"]
    assert "no outcome file" in result["retrieve_err"]
