"""Tests for the DES app runner (virtual-time steered main loop)."""

import pytest

from repro.des import Environment
from repro.net import SyncPipe
from repro.sims import LatticeBoltzmann3D
from repro.steering import (
    SteeredApplication,
    SteeringClient,
    steered_app_process,
)


def make(env, sample_interval=1):
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5, seed=8)
    app = SteeredApplication(sim, name="lb3d", sample_interval=sample_interval)
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    return app, SteeringClient(pipe.b)


def test_runner_charges_virtual_time_per_step():
    env = Environment()
    app, _ = make(env)
    proc = env.process(steered_app_process(env, app, compute_time=0.5,
                                           max_steps=10))
    steps = env.run(until=proc)
    assert steps == 10
    assert env.now == pytest.approx(5.0)
    assert app.sim.step_count == 10


def test_runner_callable_cost_model():
    env = Environment()
    app, _ = make(env)
    costs = []

    def cost(sim):
        c = 0.1 + 0.01 * sim.step_count
        costs.append(c)
        return c

    proc = env.process(steered_app_process(env, app, compute_time=cost,
                                           max_steps=5))
    env.run(until=proc)
    assert env.now == pytest.approx(sum(costs))


def test_runner_pause_resume_under_virtual_time():
    env = Environment()
    app, client = make(env)
    env.process(steered_app_process(env, app, compute_time=0.1))

    def steerer():
        yield env.timeout(0.55)
        client.pause()
        yield env.timeout(2.0)
        paused_steps = app.sim.step_count
        client.resume()
        yield env.timeout(1.0)
        client.stop()
        return paused_steps

    p = env.process(steerer())
    env.run(until=20.0)
    paused_steps = p.value
    # While paused (2.0s) the step count froze...
    assert paused_steps <= 7
    # ...but after resume it advanced again until the stop.
    assert app.sim.step_count > paused_steps
    assert app.stopped


def test_runner_stop_ends_loop_promptly():
    env = Environment()
    app, client = make(env)
    proc = env.process(steered_app_process(env, app, compute_time=0.1))

    def steerer():
        yield env.timeout(0.35)
        client.stop()

    env.process(steerer())
    steps = env.run(until=proc)
    assert app.stopped
    assert steps <= 5


def test_runner_emits_samples_at_interval():
    env = Environment()
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), seed=1)
    app = SteeredApplication(sim, name="lb3d", sample_interval=3)
    sink = SyncPipe()
    app.attach_sample_sink(sink.a)
    watcher = SteeringClient(sink.b)
    proc = env.process(steered_app_process(env, app, compute_time=0.05,
                                           max_steps=10))
    env.run(until=proc)
    watcher.drain()
    assert [s.step for s in watcher.samples] == [3, 6, 9]
