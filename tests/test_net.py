"""Simulated-network tests: latency/bandwidth model, firewalls, multicast."""

import pytest

from repro.des import Environment
from repro.errors import (
    ChannelClosed,
    ConnectionRefused,
    FirewallBlocked,
    HostUnreachable,
    NetworkError,
    TimeoutExpired,
)
from repro.net import Firewall, MulticastGroup, Network, SyncPipe, UnicastBridge


def make_net(env, latency=0.010, bandwidth=1e6):
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=latency, bandwidth=bandwidth)
    return net


def test_connect_and_message_latency():
    env = Environment()
    net = make_net(env)
    times = {}

    def server():
        lst = net.host("b").listen(4000)
        conn = yield from lst.accept()
        msg = yield from conn.recv()
        times["recv"] = (env.now, msg)

    def client():
        conn = yield from net.host("a").connect("b", 4000)
        times["connected"] = env.now
        conn.send(b"x" * 1000)

    env.process(server())
    env.process(client())
    env.run()
    # handshake = one RTT (2 * latency) + 2 control serializations
    assert times["connected"] == pytest.approx(0.020, rel=0.02)
    # message: 1000 B / 1e6 B/s = 1 ms serialize + 10 ms latency after connect
    t_recv, msg = times["recv"]
    assert msg == b"x" * 1000
    assert t_recv == pytest.approx(times["connected"] + 0.011, rel=0.02)


def test_bandwidth_serialization_queues_transfers():
    env = Environment()
    net = make_net(env, latency=0.0, bandwidth=1000.0)  # 1000 B/s
    arrivals = []

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        for _ in range(3):
            yield from conn.recv()
            arrivals.append(env.now)

    def client():
        conn = yield from net.host("a").connect("b", 1)
        for _ in range(3):
            conn.send(b"y" * 1000)  # 1 s serialization each

    env.process(server())
    env.process(client())
    env.run()
    # Transfers serialize: deliveries ~1 s apart.
    assert arrivals[1] - arrivals[0] == pytest.approx(1.0, rel=0.01)
    assert arrivals[2] - arrivals[1] == pytest.approx(1.0, rel=0.01)


def test_connection_refused_when_not_listening():
    env = Environment()
    net = make_net(env)
    result = {}

    def client():
        try:
            yield from net.host("a").connect("b", 9999)
        except ConnectionRefused:
            result["refused_at"] = env.now

    env.process(client())
    env.run()
    assert result["refused_at"] == pytest.approx(0.020, rel=0.02)


def test_firewall_blocks_non_gateway_port():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("hpc", firewall=Firewall.single_port(4433))
    outcomes = {}

    def setup():
        net.host("hpc").listen(4433)
        net.host("hpc").listen(5555)
        if False:
            yield

    def client():
        conn = yield from net.host("a").connect("hpc", 4433)
        outcomes["gateway"] = conn is not None
        try:
            yield from net.host("a").connect("hpc", 5555)
        except FirewallBlocked:
            outcomes["blocked"] = True

    net.host("hpc").listen(4433)
    net.host("hpc").listen(5555)
    env.process(client())
    env.run()
    assert outcomes == {"gateway": True, "blocked": True}


def test_nat_host_cannot_accept_but_can_connect():
    env = Environment()
    net = Network(env)
    net.add_host("pub")
    net.add_host("natbox", nat=True)
    net.host("natbox").listen(80)
    net.host("pub").listen(80)
    outcomes = {}

    def client():
        try:
            yield from net.host("pub").connect("natbox", 80)
        except FirewallBlocked:
            outcomes["inbound_blocked"] = True
        conn = yield from net.host("natbox").connect("pub", 80)
        outcomes["outbound_ok"] = conn is not None

    env.process(client())
    env.run()
    assert outcomes == {"inbound_blocked": True, "outbound_ok": True}


def test_unknown_host_unreachable():
    env = Environment()
    net = make_net(env)

    def client():
        yield from net.host("a").connect("nowhere", 1)

    env.process(client())
    with pytest.raises(HostUnreachable):
        env.run()


def test_recv_timeout():
    env = Environment()
    net = make_net(env)
    result = {}

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        try:
            yield from conn.recv(timeout=0.5)
        except TimeoutExpired:
            result["timed_out_at"] = env.now

    def client():
        yield from net.host("a").connect("b", 1)

    env.process(server())
    env.process(client())
    env.run()
    assert result["timed_out_at"] == pytest.approx(0.020 + 0.5, rel=0.05)


def test_close_propagates_to_peer():
    env = Environment()
    net = make_net(env)
    result = {}

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        try:
            yield from conn.recv()
        except ChannelClosed:
            result["closed"] = True

    def client():
        conn = yield from net.host("a").connect("b", 1)
        conn.close()
        with pytest.raises(ChannelClosed):
            conn.send(b"after close")

    env.process(server())
    env.process(client())
    env.run()
    assert result.get("closed")


def test_try_recv_nonblocking():
    env = Environment()
    net = make_net(env)
    result = {}

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        ok, _ = conn.try_recv()
        result["early"] = ok
        yield env.timeout(1.0)
        ok, msg = conn.try_recv()
        result["late"] = (ok, msg)

    def client():
        conn = yield from net.host("a").connect("b", 1)
        conn.send(b"m")

    env.process(server())
    env.process(client())
    env.run()
    assert result["early"] is False
    assert result["late"] == (True, b"m")


def test_traffic_accounting():
    env = Environment()
    net = make_net(env)

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        yield from conn.recv()

    def client():
        conn = yield from net.host("a").connect("b", 1)
        conn.send(b"z" * 5000)

    env.process(server())
    env.process(client())
    env.run()
    assert net.bytes_between("a", "b") >= 5000
    assert net.total_bytes() >= 5000


def test_duplicate_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("x")
    with pytest.raises(NetworkError):
        net.add_host("x")


def test_duplicate_listen_rejected():
    env = Environment()
    net = make_net(env)
    net.host("a").listen(7)
    with pytest.raises(NetworkError):
        net.host("a").listen(7)


def test_multicast_fanout_single_send():
    env = Environment()
    net = Network(env)
    for name in ("src", "r1", "r2", "r3"):
        net.add_host(name)
        if name != "src":
            net.add_link("src", name, latency=0.005 * (1 + "r1 r2 r3".split().index(name)), bandwidth=1e7)
    group = MulticastGroup(net, "233.0.0.1")
    boxes = {n: group.join(net.host(n)) for n in ("r1", "r2", "r3")}
    group.join(net.host("src"))
    arrivals = {}

    def receiver(name):
        payload = yield boxes[name].get()
        arrivals[name] = (env.now, payload)

    for n in boxes:
        env.process(receiver(n))

    def sender():
        yield env.timeout(0.001)
        group.send(net.host("src"), b"frame", size=1000)

    env.process(sender())
    env.run()
    assert set(arrivals) == {"r1", "r2", "r3"}
    # Arrival order follows per-receiver latency.
    assert arrivals["r1"][0] < arrivals["r2"][0] < arrivals["r3"][0]
    assert group.packets_sent == 1


def test_multicast_requires_native_support():
    env = Environment()
    net = Network(env)
    net.add_host("nomcast", multicast=False)
    group = MulticastGroup(net, "233.0.0.2")
    with pytest.raises(NetworkError):
        group.join(net.host("nomcast"))


def test_unicast_bridge_relays_to_firewalled_site():
    env = Environment()
    net = Network(env)
    net.add_host("src")
    net.add_host("bridge")
    net.add_host("cave", multicast=False, firewall=Firewall.closed())
    group = MulticastGroup(net, "233.0.0.3")
    group.join(net.host("src"))
    bridge = UnicastBridge(group, net.host("bridge"))
    cave_box = bridge.attach(net.host("cave"))
    got = {}

    def receiver():
        payload = yield cave_box.get()
        got["payload"] = (env.now, payload)

    def sender():
        yield env.timeout(0.01)
        group.send(net.host("src"), b"video", size=2000)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got["payload"][1] == b"video"
    assert bridge.relayed_packets == 1


def test_bridge_send_from_unicast_site():
    env = Environment()
    net = Network(env)
    net.add_host("src")
    net.add_host("bridge")
    net.add_host("cave", multicast=False)
    group = MulticastGroup(net, "g")
    src_box = group.join(net.host("src"))
    bridge = UnicastBridge(group, net.host("bridge"))
    bridge.attach(net.host("cave"))
    got = {}

    def receiver():
        payload = yield src_box.get()
        got["payload"] = payload

    def sender():
        yield env.timeout(0.01)
        bridge.send_from(net.host("cave"), b"cave-view", size=500)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got["payload"] == b"cave-view"


def test_sync_pipe():
    pipe = SyncPipe()
    a, b = pipe.ends()
    a.send(b"ping")
    assert b.poll() == (True, b"ping")
    assert b.poll() == (False, None)
    b.send(b"pong")
    assert a.recv() == b"pong"
    with pytest.raises(LookupError):
        a.recv()
    b.close()
    with pytest.raises(ConnectionError):
        a.send(b"x")
