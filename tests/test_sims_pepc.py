"""PEPC tests: octree invariants, tree-vs-direct accuracy, scaling, steering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, SteeringError
from repro.sims.pepc import (
    PlasmaSim,
    assign_domains,
    beam_on_sphere_setup,
    build_octree,
    direct_field,
    interaction_energy,
    kinetic_energy,
    tree_field,
    tree_stats,
)


def random_cloud(n, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    q = rng.choice([-1.0, 1.0], size=n)
    return pos, q


# -- octree -------------------------------------------------------------------


def test_octree_every_particle_in_exactly_one_leaf():
    pos, q = random_cloud(500)
    tree = build_octree(pos, q, leaf_size=8)
    seen = np.zeros(len(pos), dtype=int)
    for node in tree.walk():
        if node.is_leaf:
            seen[node.indices] += 1
    assert np.all(seen == 1)


def test_octree_node_charge_consistency():
    pos, q = random_cloud(300, seed=2)
    tree = build_octree(pos, q, leaf_size=8)
    for node in tree.walk():
        if not node.is_leaf:
            child_q = sum(c.charge for c in node.children)
            assert node.charge == pytest.approx(child_q, abs=1e-9)
            assert node.count == sum(c.count for c in node.children)


def test_octree_leaf_size_respected():
    pos, q = random_cloud(400, seed=3)
    tree = build_octree(pos, q, leaf_size=10)
    for node in tree.walk():
        if node.is_leaf:
            assert node.count <= 10 or node.depth >= 40


def test_octree_com_inside_node_region():
    pos, q = random_cloud(200, seed=4)
    tree = build_octree(pos, q)
    for node in tree.walk():
        assert np.all(node.com >= node.center - node.half - 1e-9)
        assert np.all(node.com <= node.center + node.half + 1e-9)


def test_octree_validation():
    with pytest.raises(SimulationError):
        build_octree(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(SimulationError):
        build_octree(np.zeros((5, 2)), np.zeros(5))
    with pytest.raises(SimulationError):
        build_octree(np.zeros((5, 3)), np.zeros(4))


def test_octree_identical_positions_terminates():
    pos = np.zeros((50, 3))
    q = np.ones(50)
    tree = build_octree(pos, q, leaf_size=4)
    assert tree.node_count >= 1  # depth cap stops the recursion


def test_tree_stats():
    pos, q = random_cloud(300, seed=5)
    stats = tree_stats(build_octree(pos, q, leaf_size=8))
    assert stats["leaves"] > 0 and stats["nodes"] >= stats["leaves"]
    assert 0 < stats["mean_leaf_occupancy"] <= 8


# -- forces -------------------------------------------------------------------


def test_tree_matches_direct_at_small_theta():
    pos, q = random_cloud(512, seed=7)
    tree = build_octree(pos, q)
    Et, pt, _ = tree_field(tree, theta=0.25)
    Ed, pd = direct_field(pos, q)
    rel = np.linalg.norm(Et - Ed, axis=1) / np.maximum(np.linalg.norm(Ed, axis=1), 1e-9)
    assert np.median(rel) < 0.02
    assert interaction_energy(pt, q) == pytest.approx(
        interaction_energy(pd, q), rel=0.02
    )


def test_tree_theta_zero_limit_equals_direct():
    """theta -> 0 means nothing is ever accepted: pure direct summation."""
    pos, q = random_cloud(128, seed=8)
    tree = build_octree(pos, q, leaf_size=4)
    Et, pt, stats = tree_field(tree, theta=1e-9)
    Ed, pd = direct_field(pos, q)
    np.testing.assert_allclose(Et, Ed, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(pt, pd, rtol=1e-9)
    assert stats["monopole_interactions"] == 0


def test_tree_interactions_subquadratic():
    """The O(N log N) claim (FIG3): interactions per particle must grow
    far slower than N."""
    counts = {}
    for n in (512, 4096):
        pos, q = random_cloud(n, seed=9)
        tree = build_octree(pos, q)
        _, _, stats = tree_field(tree, theta=0.7)
        counts[n] = stats["monopole_interactions"] + stats["direct_interactions"]
    # 8x more particles -> direct would cost 64x; require < 20x.
    assert counts[4096] < 20 * counts[512]


def test_direct_field_symmetry_two_charges():
    pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
    q = np.array([1.0, 1.0])
    E, phi = direct_field(pos, q, eps=1e-6)
    np.testing.assert_allclose(E[0], -E[1], atol=1e-12)
    assert E[1][0] == pytest.approx(1.0, rel=1e-4)  # repulsion along +x
    assert phi[0] == pytest.approx(1.0, rel=1e-4)


def test_direct_field_validation():
    with pytest.raises(SimulationError):
        direct_field(np.zeros((2, 3)), np.zeros(2), eps=0.0)
    with pytest.raises(SimulationError):
        tree_field(build_octree(*random_cloud(10)), theta=2.5)


def test_direct_field_external_targets():
    pos, q = random_cloud(64, seed=10)
    targets = np.array([[2.0, 2.0, 2.0]])
    E, phi = direct_field(pos, q, targets=targets)
    assert E.shape == (1, 3) and phi.shape == (1,)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(8, 128), seed=st.integers(0, 50), leaf=st.integers(1, 32))
def test_property_octree_partition(n, seed, leaf):
    pos, q = random_cloud(n, seed=seed)
    tree = build_octree(pos, q, leaf_size=leaf)
    seen = np.zeros(n, dtype=int)
    total_q = 0.0
    for node in tree.walk():
        if node.is_leaf:
            seen[node.indices] += 1
            total_q += node.charge
    assert np.all(seen == 1)
    assert total_q == pytest.approx(q.sum(), abs=1e-9)
    assert tree.root.count == n


# -- domains ------------------------------------------------------------------


def test_assign_domains_balance():
    pos, _ = random_cloud(1000, seed=11)
    proc, boxes = assign_domains(pos, 8)
    counts = np.bincount(proc, minlength=8)
    assert counts.max() - counts.min() <= 1
    assert boxes.shape == (8, 2, 3)
    for r in range(8):
        mine = pos[proc == r]
        assert np.all(mine >= boxes[r, 0] - 1e-12)
        assert np.all(mine <= boxes[r, 1] + 1e-12)


def test_assign_domains_validation():
    with pytest.raises(SimulationError):
        assign_domains(np.zeros((5, 2)), 2)
    with pytest.raises(SimulationError):
        assign_domains(np.zeros((5, 3)), 0)


# -- integrator / steering ------------------------------------------------------


def make_sim(**kw):
    setup = beam_on_sphere_setup(n_plasma=96, n_beam=16, seed=1)
    defaults = dict(setup=setup, dt=0.01, theta=0.6, nranks=4)
    defaults.update(kw)
    return PlasmaSim(**defaults)


def test_beam_setup_shapes_and_neutrality():
    s = beam_on_sphere_setup(n_plasma=100, n_beam=20)
    assert s["positions"].shape == (120, 3)
    assert s["is_beam"].sum() == 20
    plasma_q = s["charges"][~s["is_beam"]]
    assert plasma_q.sum() == 0.0  # neutral target
    assert np.all(s["charges"][s["is_beam"]] == -1.0)


def test_beam_moves_toward_target():
    sim = make_sim()
    x0 = sim.positions[sim.is_beam, 0].mean()
    sim.run(20)
    assert sim.positions[sim.is_beam, 0].mean() > x0


def test_energy_sane_without_drivers():
    sim = make_sim()
    sim.run(10)
    ke = kinetic_energy(sim.velocities, sim.masses)
    assert np.isfinite(ke) and ke > 0


def test_steer_beam_direction_preserves_speed():
    sim = make_sim()
    speeds_before = np.linalg.norm(sim.velocities[sim.is_beam], axis=1)
    sim.set_parameter("beam_direction", [0.0, 1.0, 0.0])
    speeds_after = np.linalg.norm(sim.velocities[sim.is_beam], axis=1)
    np.testing.assert_allclose(speeds_after, speeds_before, rtol=1e-12)
    vel = sim.velocities[sim.is_beam]
    assert np.all(np.abs(vel[:, 0]) < 1e-9)  # now moving along +y


def test_steer_beam_charge_scale():
    sim = make_sim()
    sim.set_parameter("beam_charge_scale", 2.5)
    q = sim.charges
    assert np.all(q[sim.is_beam] == -2.5)
    assert np.all(q[~sim.is_beam] == sim.base_charges[~sim.is_beam])


def test_damping_cools_plasma():
    """Section 3.4's assist toward a 'cold, ordered state': with damping
    the plasma ends far colder than the free-running system (which heats
    itself by virialization from the random initial condition)."""
    from repro.sims.pepc.diagnostics import temperature_proxy

    damped = make_sim()
    damped.set_parameter("damping", 5.0)
    free = make_sim()
    damped.run(40)
    free.run(40)
    t_damped = temperature_proxy(damped.velocities, damped.masses)
    t_free = temperature_proxy(free.velocities, free.masses)
    assert t_damped < 0.5 * t_free


def test_laser_heats_plasma():
    from repro.sims.pepc.diagnostics import temperature_proxy

    quiet = make_sim()
    driven = make_sim()
    driven.set_parameter("laser_intensity", 20.0)
    quiet.run(30)
    driven.run(30)
    assert temperature_proxy(driven.velocities, driven.masses) > 1.5 * temperature_proxy(
        quiet.velocities, quiet.masses
    )


def test_parameter_validation():
    sim = make_sim()
    with pytest.raises(SteeringError):
        sim.set_parameter("beam_direction", [0, 0, 0])
    with pytest.raises(SteeringError):
        sim.set_parameter("damping", -1)
    with pytest.raises(SteeringError):
        sim.set_parameter("unknown", 1)


def test_sample_is_the_full_pepc_dataspace():
    sim = make_sim(nranks=4)
    sim.run(2)
    s = sim.sample()
    n = len(sim.positions)
    assert s["coordinates"].shape == (n, 3)
    assert s["velocities"].shape == (n, 3)
    assert s["charge"].shape == (n,)
    assert s["processor"].shape == (n,)
    assert s["label"].shape == (n,)
    assert s["domain_boxes"].shape == (4, 2, 3)
    assert s["processor"].max() < 4


def test_checkpoint_restore_resumes_identically():
    sim = make_sim()
    sim.run(5)
    state = sim.checkpoint()
    sim.run(5)
    expected = sim.positions.copy()

    sim2 = make_sim()
    sim2.restore(state)
    sim2.run(5)
    np.testing.assert_allclose(sim2.positions, expected, atol=1e-12)


def test_direct_mode_flag():
    sim = make_sim(use_tree=False)
    sim.run(1)
    assert "direct_interactions" in sim.last_force_stats
    assert "monopole_interactions" not in sim.last_force_stats
