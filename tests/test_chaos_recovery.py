"""Fault-matrix regressions: recovery policies over a live open-loop fleet.

The satellite coverage the chaos PR promises:

* BrokerPool failover when the master vbroker dies mid-session;
* registry-shard loss + rebuild: steer commands still land, handles
  re-resolve;
* ``load.admission`` requeue/abandonment under an injected site outage
  (beyond the static overload of the open-loop tests);
* ``ogsa.migration`` when the target site dies mid-migration;
* the acceptance scenario: site outage + master-vbroker crash at 2x
  load — zero invariant violations, >= 90% of impacted sessions
  recovered via migrate/retry, byte-for-byte identical reruns.
"""

import json

import pytest

from repro.chaos import (
    ChaosHarness,
    ContainerCrash,
    FaultSchedule,
    RecoveryPolicy,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
    retry_name,
    root_name,
)
from repro.errors import ChaosError, OgsaError
from repro.fleet import BrokerPool, FleetDriver
from repro.fleet.spec import ScenarioSpec
from repro.load import AdmissionController, PoissonArrivals, TraceArrivals


def _proto(**kw):
    kw.setdefault("duration", 2.0)
    kw.setdefault("cadence", 0.5)
    kw.setdefault("participants", 1)
    kw.setdefault("name", "proto")
    return ScenarioSpec(**kw)


def _world(n_sites=3, queue_slots=2, queue_limit=16, pool=False, policy=None):
    driver = FleetDriver(n_sites=n_sites, queue_slots=queue_slots)
    broker_pool = (
        BrokerPool.build(
            driver.net, [s.svc_name for s in driver.sites], port=7100
        )
        if pool else None
    )
    ctl = AdmissionController(driver, queue_limit=queue_limit)
    world = ChaosHarness(driver, ctl, pool=broker_pool, policy=policy)
    return driver, ctl, world


# -- retry: site outage through the admission controller ---------------------


def test_site_outage_requeues_and_sessions_recover_elsewhere():
    driver, ctl, world = _world()
    world.install(FaultSchedule([SiteOutage(at=3.0, site=0, duration=15.0)]))
    report = ctl.run(
        TraceArrivals([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], suite=[_proto()],
                      prefix="so"),
        until=80.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    assert rec["impacted"] >= 1
    assert rec["recovered_via"]["retry"] == rec["impacted"]
    assert rec["abandoned"] == 0
    # The requeues rode the bound-exempt recovery path and landed on
    # live sites, not the dead one.
    assert report.queue.requeued == rec["impacted"]
    for name, site in driver.site_of.items():
        if "~r" in name:
            assert site != 0
            assert driver.telemetry.sessions[name].completed
    # The cancelled originals are recorded as failed, not lost.
    cancelled = [t for t in driver.telemetry.sessions.values()
                 if t.failure and "site-outage" in t.failure]
    assert len(cancelled) == rec["impacted"]


def test_abandon_policy_gives_up_instead_of_requeueing():
    policy = RecoveryPolicy(site_outage="abandon")
    driver, ctl, world = _world(policy=policy)
    world.install(FaultSchedule([SiteOutage(at=1.5, site=0, duration=15.0)]))
    report = ctl.run(
        TraceArrivals([0.0, 0.3, 0.6], suite=[_proto()], prefix="ab"),
        until=60.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    assert rec["abandoned"] == rec["impacted"] >= 1
    assert rec["recovered"] == 0
    assert report.queue.requeued == 0


def test_retry_budget_caps_cascading_outages():
    # Both sites die back to back: the retry of the retry exceeds the
    # budget (max_retries=1) and the session is abandoned, not looped.
    policy = RecoveryPolicy(max_retries=1)
    driver, ctl, world = _world(n_sites=2, policy=policy)
    world.install(FaultSchedule([
        SiteOutage(at=2.0, site=0, duration=40.0),
        SiteOutage(at=6.0, site=1, duration=40.0),
    ]))
    report = ctl.run(
        TraceArrivals([0.0], suite=[_proto(duration=8.0)], prefix="rb"),
        until=120.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    assert rec["abandoned"] >= 1
    names = set(driver.telemetry.sessions)
    assert retry_name("rb00000-lb3d", 1) in names
    assert retry_name("rb00000-lb3d", 2) not in names


def test_recovery_policy_validation():
    with pytest.raises(ChaosError):
        RecoveryPolicy(site_outage="migrate")  # nothing left to migrate
    with pytest.raises(ChaosError):
        RecoveryPolicy(container_crash="teleport")
    with pytest.raises(ChaosError):
        RecoveryPolicy(max_retries=-1)
    assert root_name(retry_name("s", 2)) == "s"


# -- migrate: container crash, clients re-resolve ----------------------------


def test_container_crash_migrates_services_and_steering_resumes():
    driver, ctl, world = _world()
    world.install(FaultSchedule([ContainerCrash(at=3.0, site=0)]))
    report = ctl.run(
        TraceArrivals([0.0, 0.2, 0.4], suite=[_proto(duration=4.0)],
                      prefix="mg"),
        until=80.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    assert rec["recovered_via"]["migrate"] >= 1
    assert rec["recovery_rate"] >= 0.9
    # The migrated sessions completed *without* relaunching: same name,
    # no retry suffix, telemetry completed.
    migrated = [s for _, _, action, s in world.recovery.events
                if action == "migrate"]
    for name in migrated:
        assert driver.telemetry.sessions[name].completed
    # Their services now live in another site's container and the
    # resolver agrees (handles re-resolve to the new host).
    from repro.ogsa.handles import GridServiceHandle

    source = driver.sites[0].container
    for name in migrated:
        assert f"steer-{name}" not in source.deployed()
        ref = driver.resolver.resolve(
            GridServiceHandle(source.authority, f"steer-{name}")
        )
        assert ref.host != driver.sites[0].svc_name


def test_degrade_policy_sheds_ops_but_completes():
    policy = RecoveryPolicy(slow_node="degrade")
    driver, ctl, world = _world(policy=policy)
    world.install(FaultSchedule([
        SlowNode(at=2.0, site=0, factor=10.0, duration=5.0),
    ]))
    report = ctl.run(
        TraceArrivals([0.0], suite=[_proto(duration=6.0)], prefix="dg"),
        until=60.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    assert rec["degraded"] == 1
    tel = driver.telemetry.sessions["dg00000-lb3d"]
    assert tel.completed
    # Ops were shed: fewer than the spec's full plan.
    assert tel.ops < _proto(duration=6.0).n_ops


# -- fabric-level: vbroker failover and shard loss ---------------------------


def test_master_vbroker_crash_fails_sessions_over_to_live_brokers():
    driver, ctl, world = _world(pool=True)
    pool = world.injector.pool
    world.install(FaultSchedule([VBrokerCrash(at=2.0, broker=0)]))
    report = ctl.run(
        TraceArrivals([0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
                      suite=[_proto(duration=4.0)], prefix="vb"),
        until=80.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    assert verdict["recovery"]["broker_failovers"] >= 1
    assert pool.failovers >= 1
    # Every re-placed session sits on a live broker now.
    for session, idx in pool.placements().items():
        assert pool.brokers[idx].alive
    # Steering was never disturbed (the OGSA path is broker-independent;
    # the failover protects the collaborative fan-out).
    assert report.completed == report.queue.admitted


def test_shard_loss_rebuild_republishes_and_handles_reresolve():
    driver, ctl, world = _world()
    schedule = FaultSchedule([RegistryShardLoss(at=2.5, shard=0)])
    world.install(schedule)
    report = ctl.run(
        TraceArrivals([0.0, 0.2, 0.4, 0.6], suite=[_proto(duration=4.0)],
                      prefix="sh"),
        until=80.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    assert verdict["recovery"]["registry_rebuilds"] == 1
    # Steer commands kept landing: sessions completed with zero errors
    # (finds already done) and the rebuilt registry resolves every live
    # session's steering handle through every front-end.
    assert report.completed == report.queue.admitted
    rebuilt = [s for _, _, action, s in world.recovery.events
               if action == "rebuild"]
    assert rebuilt


def test_rebuild_registry_restores_find_after_total_loss():
    driver, ctl, world = _world(n_sites=2)
    done = driver.admit(_proto(name="keeper", duration=2.0))
    driver.env.run(until=30.0)
    assert done.ok
    reg = driver.sites[0].registry
    assert len(reg.find({"application": "keeper"})) == 2
    # Lose every shard, then rebuild from the containers.
    for shard in driver.shards:
        shard._entries.clear()
        shard._index.clear()
        shard._unindexed.clear()
    assert reg.find({}) == []
    restored = world.recovery.rebuild_registry()
    assert restored == 2
    entries = reg.find({"application": "keeper"})
    assert {e["metadata"]["type"] for e in entries} == {
        "steering", "viz-steering"
    }


def test_cancel_of_a_migrated_session_clears_pending_state():
    """Regression: a second fault cancelling an already-migrated session
    must drop the stale pending-migrate expectation (the canceller's
    retry owns the follow-up), not leak it for the rest of the run."""
    driver, ctl, world = _world(n_sites=3)
    world.install(FaultSchedule([
        ContainerCrash(at=1.5, site=0),            # migrate away
        SiteOutage(at=2.5, site=0, duration=20.0),  # then kill the site
    ]))
    report = ctl.run(
        TraceArrivals([0.0, 0.2], suite=[_proto(duration=6.0)],
                      prefix="cx"),
        until=120.0,
    )
    verdict = world.verdict(report)
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    assert world.recovery._pending_migrate == {}
    assert world.recovery._pending_retry == {}
    # Nothing stuck: every session reached a terminal state.
    assert report.completed + report.failed == report.n_sessions


def test_rebuild_after_migration_keeps_canonical_handles():
    """Regression: a migrated service's GSH keeps its *source* authority;
    the rebuild must republish that handle, not mint a new one under the
    hosting container's authority (which the resolver has never seen)."""
    from repro.ogsa.migration import migrate_service

    driver, ctl, world = _world(n_sites=2)
    done = driver.admit(_proto(name="mover", duration=2.0, ), site=0)
    driver.env.run(until=30.0)
    assert done.ok
    migrate_service(
        "steer-mover", driver.sites[0].container,
        driver.sites[1].container, driver.resolver,
    )
    reg = driver.sites[0].registry
    canonical = next(
        e["handle"] for e in reg.find({"application": "mover"})
        if e["metadata"]["type"] == "steering"
    )
    job_id = reg.lookup(canonical)["job"]
    for shard in driver.shards:  # total loss
        shard._entries.clear()
        shard._index.clear()
        shard._unindexed.clear()
    world.recovery.rebuild_registry()
    entries = reg.find({"application": "mover"})
    handles = {e["handle"] for e in entries}
    assert canonical in handles
    assert len(entries) == 2  # steering + viz, no duplicate identities
    # Survived metadata is reconstructed minimally; but every published
    # handle must resolve — the law the monitor also audits.
    from repro.ogsa.handles import GridServiceHandle

    for handle in handles:
        ref = driver.resolver.resolve(GridServiceHandle.parse(handle))
        assert ref.host in driver.net.hosts
    world.monitor.sweep()
    assert world.monitor.ok, world.monitor.render()
    assert job_id  # the pre-loss entry carried the orchestrator's job id


# -- ogsa.migration: target dies mid-migration -------------------------------


def test_migrate_into_dead_container_refused_and_source_keeps_service():
    from repro.des import Environment
    from repro.net import Network, SyncPipe
    from repro.ogsa import HandleResolver, OgsiLiteContainer, SteeringService
    from repro.ogsa.migration import migrate_service

    env = Environment()
    net = Network(env)
    net.add_host("old")
    net.add_host("new")
    old = OgsiLiteContainer(net.host("old"), 8000, authority="auth")
    new = OgsiLiteContainer(net.host("new"), 8000, authority="auth")
    old.start()
    new.start()
    svc = SteeringService("steer", SyncPipe().b)
    old.deploy(svc)
    # The target site dies between choosing it and moving the service.
    new.stop()
    assert new.dead
    with pytest.raises(OgsaError, match="down"):
        migrate_service("steer", old, new, HandleResolver())
    assert old.deployed() == ["steer"]  # nothing lost
    assert new.deployed() == []
    # After the target heals, the same migration goes through.
    new.restart()
    resolver = HandleResolver()
    from repro.ogsa.handles import GridServiceHandle, GridServiceReference

    resolver.bind(GridServiceReference(
        GridServiceHandle("auth", "steer"), "old", 8000, ()))
    migrate_service("steer", old, new, resolver)
    assert new.deployed() == ["steer"] and old.deployed() == []


# -- the acceptance scenario -------------------------------------------------


def _acceptance_run():
    driver, ctl, world = _world(n_sites=3, queue_slots=2, queue_limit=12,
                                pool=True)
    world.install(FaultSchedule([
        SiteOutage(at=5.0, site=0, duration=20.0),
        VBrokerCrash(at=6.0, broker=0),
    ]))
    # ~2x the fabric's service rate (6 slots / ~3.5 s per session).
    arrivals = PoissonArrivals(rate=3.4, horizon=12.0, seed=11,
                               duration=2.0, cadence=0.5, participants=1)
    report = ctl.run(arrivals, until=160.0)
    verdict = world.verdict(report)
    return report, verdict, world


def test_acceptance_outage_plus_vbroker_crash_at_2x_load():
    report, verdict, world = _acceptance_run()
    # Zero invariant violations under compound faults at overload.
    assert verdict["invariant_violations"] == 0, world.monitor.render()
    rec = verdict["recovery"]
    # A site holds at most queue_slots sessions; the outage strands them
    # all and the broker crash reshuffles the survivors.
    assert rec["impacted"] >= 2
    # >= 90% of impacted sessions recovered via migrate/retry.
    recovered = rec["recovered_via"]["retry"] + rec["recovered_via"]["migrate"]
    assert recovered / rec["impacted"] >= 0.9, rec
    assert rec["abandoned"] <= rec["impacted"] * 0.1
    # The admission controller still sheds *fresh* load explicitly.
    assert report.queue.rejected > 0
    assert report.queue.depth_max <= 12


def test_acceptance_rerun_is_byte_for_byte_identical():
    rep_a, ver_a, _ = _acceptance_run()
    rep_b, ver_b, _ = _acceptance_run()
    blob_a = json.dumps(
        {"report": rep_a.to_dict(), "verdict": ver_a}, sort_keys=True
    )
    blob_b = json.dumps(
        {"report": rep_b.to_dict(), "verdict": ver_b}, sort_keys=True
    )
    assert blob_a == blob_b
