"""Arrival processes: determinism, rates, shapes, spec minting."""

import pytest

from repro.errors import LoadError
from repro.fleet.spec import ScenarioSpec
from repro.load import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    RecordedArrivals,
    TraceArrivals,
)


def test_poisson_is_deterministic_under_seed():
    a = list(PoissonArrivals(rate=1.0, horizon=50.0, seed=3))
    b = list(PoissonArrivals(rate=1.0, horizon=50.0, seed=3))
    assert [t for t, _ in a] == [t for t, _ in b]
    assert [s.name for _, s in a] == [s.name for _, s in b]
    c = list(PoissonArrivals(rate=1.0, horizon=50.0, seed=4))
    assert [t for t, _ in a] != [t for t, _ in c]


def test_poisson_rate_roughly_matches_lambda():
    proc = PoissonArrivals(rate=2.0, horizon=500.0, seed=11)
    # 1000 expected arrivals; 3-sigma band is ~±95.
    assert 900 <= proc.count() <= 1100
    assert proc.offered_rate() == pytest.approx(2.0, rel=0.1)


def test_poisson_times_sorted_and_inside_horizon():
    times = [t for t, _ in PoissonArrivals(rate=3.0, horizon=20.0, seed=5)]
    assert times == sorted(times)
    assert all(0.0 < t < 20.0 for t in times)


def test_spec_minting_unique_names_and_zero_offset():
    arrivals = list(PoissonArrivals(rate=1.0, horizon=30.0, seed=2,
                                    duration=2.0, cadence=0.5))
    names = [s.name for _, s in arrivals]
    assert len(set(names)) == len(names)
    for _, spec in arrivals:
        assert spec.admission_offset == 0.0
        assert spec.duration == 2.0
        # Step budget re-derived from the overridden duration.
        assert spec.steps >= int(2.0 / spec.compute_time)


def test_custom_suite_cycles():
    suite = [ScenarioSpec(name="proto", sim="building", participants=1)]
    arrivals = list(PoissonArrivals(rate=1.0, horizon=10.0, seed=1,
                                    suite=suite, prefix="x"))
    assert arrivals, "expected at least one arrival in 10s at rate 1"
    assert all(s.sim == "building" for _, s in arrivals)
    assert arrivals[0][1].name.startswith("x00000-")


def test_diurnal_peak_carries_more_than_trough():
    proc = DiurnalArrivals(base_rate=0.2, amplitude=4.0, period=200.0,
                           horizon=200.0, seed=9)
    times = [t for t, _ in proc]
    # rate_at peaks at t=period/2; compare middle half vs outer halves.
    mid = sum(1 for t in times if 50.0 <= t < 150.0)
    outer = len(times) - mid
    assert mid > 2 * outer
    assert proc.rate_at(100.0) == pytest.approx(4.2)
    assert proc.rate_at(0.0) == pytest.approx(0.2)


def test_flash_crowd_burst_window_dominates():
    proc = FlashCrowdArrivals(base_rate=0.5, burst_rate=10.0, burst_at=20.0,
                              burst_duration=5.0, horizon=60.0, seed=13)
    times = [t for t, _ in proc]
    burst = sum(1 for t in times if 20.0 <= t < 25.0)
    before = sum(1 for t in times if t < 20.0)
    # ~50 expected in the 5s burst vs ~10 in the 20s before it.
    assert burst > before
    assert proc.rate_at(21.0) == 10.0 and proc.rate_at(30.0) == 0.5


def test_trace_replay_and_validation():
    trace = TraceArrivals([0.0, 1.5, 1.5, 4.0])
    got = list(trace)
    assert [t for t, _ in got] == [0.0, 1.5, 1.5, 4.0]
    assert len({s.name for _, s in got}) == 4
    with pytest.raises(LoadError):
        TraceArrivals([])
    with pytest.raises(LoadError):
        TraceArrivals([2.0, 1.0])
    with pytest.raises(LoadError):
        TraceArrivals([-1.0])
    # Explicit horizon truncates the tail.
    assert [t for t, _ in TraceArrivals([0.0, 5.0], horizon=3.0)] == [0.0]


def test_trace_errors_pinpoint_index_and_value():
    with pytest.raises(LoadError, match=r"\[1\] = 'two' is not a number"):
        TraceArrivals([1.0, "two", 3.0])
    with pytest.raises(LoadError, match=r"\[0\] = None is not a number"):
        TraceArrivals([None])
    with pytest.raises(LoadError, match=r"\[2\] = nan must be finite"):
        TraceArrivals([0.0, 1.0, float("nan")])
    with pytest.raises(LoadError, match=r"\[1\] = inf must be finite"):
        TraceArrivals([0.0, float("inf")])
    with pytest.raises(LoadError, match=r"\[0\] = -0\.5 must be non-negative"):
        TraceArrivals([-0.5, 1.0])
    with pytest.raises(
        LoadError, match=r"\[2\] = 1\.0 goes back in time \(instant \[1\] = 2\.0\)"
    ):
        TraceArrivals([0.0, 2.0, 1.0])
    # Integer-ish inputs are coerced, not rejected.
    assert list(TraceArrivals([0, 1, 2]).times()) == [0.0, 1.0, 2.0]


def _spec(name):
    return ScenarioSpec(name=name, sim="building", participants=1)


def test_recorded_arrivals_replay_exact_pairs():
    entries = [(0.5, _spec("a")), (1.5, _spec("b")), (1.5, _spec("c"))]
    proc = RecordedArrivals(entries)
    got = list(proc)
    assert got == entries
    assert list(proc.times()) == [0.5, 1.5, 1.5]
    assert proc.horizon == pytest.approx(1.5, abs=1e-6)
    # An explicit horizon truncates, exactly like TraceArrivals.
    assert [s.name for _, s in RecordedArrivals(entries, horizon=1.0)] == ["a"]


def test_recorded_arrivals_validation():
    with pytest.raises(LoadError, match="recorded arrival"):
        RecordedArrivals([])
    with pytest.raises(LoadError, match=r"recorded arrival instant \[1\] = 0\.5 goes back"):
        RecordedArrivals([(1.0, _spec("a")), (0.5, _spec("b"))])
    with pytest.raises(LoadError, match=r"\[1\] carries dict, not a ScenarioSpec"):
        RecordedArrivals([(0.0, _spec("a")), (1.0, {"name": "b"})])
    with pytest.raises(LoadError, match="repeat session name 'a'"):
        RecordedArrivals([(0.0, _spec("a")), (1.0, _spec("a"))])


def test_bad_configurations_raise():
    with pytest.raises(LoadError):
        PoissonArrivals(rate=0.0, horizon=10.0)
    with pytest.raises(LoadError):
        PoissonArrivals(rate=1.0, horizon=0.0)
    with pytest.raises(LoadError):
        DiurnalArrivals(base_rate=0.0, amplitude=0.0, period=10.0,
                        horizon=10.0)
    with pytest.raises(LoadError):
        FlashCrowdArrivals(base_rate=1.0, burst_rate=0.5, burst_at=0.0,
                           burst_duration=1.0, horizon=10.0)


def test_iteration_is_repeatable():
    proc = PoissonArrivals(rate=1.0, horizon=20.0, seed=8)
    assert [t for t, _ in proc] == [t for t, _ in proc]
    assert proc.count() == len(list(proc.times()))
