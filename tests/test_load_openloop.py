"""Open-loop integration: arrivals through the real FleetDriver fabric."""

import pytest

from repro.errors import ReproError
from repro.fleet import FleetDriver
from repro.fleet.spec import ScenarioSpec
from repro.load import (
    AdmissionController,
    PoissonArrivals,
    ReactiveAutoscaler,
    TraceArrivals,
    scorecard,
)


def _spec(name, **kw):
    kw.setdefault("duration", 2.0)
    kw.setdefault("cadence", 0.5)
    kw.setdefault("participants", 1)
    return ScenarioSpec(name=name, **kw)


def test_open_loop_small_poisson_run_completes():
    driver = FleetDriver(n_sites=2, queue_slots=3)
    ctl = AdmissionController(driver, queue_limit=8)
    arrivals = PoissonArrivals(rate=0.4, horizon=10.0, seed=7,
                               duration=2.0, cadence=0.5)
    report = ctl.run(arrivals)
    q = report.queue
    assert q is not None
    assert q.offered == arrivals.count() > 0
    assert q.rejected == 0 and q.abandoned == 0
    assert report.completed == q.admitted == q.offered
    assert report.failed == 0
    # Plenty of capacity: everyone met the admission SLO.
    assert q.slo_met == q.admitted
    card = scorecard(ctl, horizon=arrivals.horizon)
    assert card.completed_in_slo == report.completed
    assert card.goodput > 0
    # The load slice round-trips through to_dict for the bench JSON.
    assert report.to_dict()["load"]["admitted"] == q.admitted


def test_driver_admit_is_the_dynamic_entry_point():
    driver = FleetDriver(n_sites=1, queue_slots=4)
    done = driver.admit(_spec("dyn-0"))
    later = driver.admit(_spec("dyn-1"), at=3.0)
    driver.env.run(until=40.0)
    assert done.ok and later.ok
    assert driver.telemetry.sessions["dyn-0"].completed
    tel = driver.telemetry.sessions["dyn-1"]
    assert tel.completed and tel.admitted_at >= 3.0
    report = driver.report()
    assert report.completed == 2
    # Dynamic admissions appear in the per-session rows with their sims.
    assert {r.name for r in report.per_session} == {"dyn-0", "dyn-1"}
    assert all(r.sim == "lb3d" for r in report.per_session)


def test_driver_admit_rejects_duplicate_names():
    driver = FleetDriver(n_sites=1, queue_slots=4)
    driver.admit(_spec("dup"))
    with pytest.raises(ReproError):
        driver.admit(_spec("dup"))


def test_open_loop_driver_requires_explicit_horizon():
    driver = FleetDriver(n_sites=1)
    with pytest.raises(ReproError):
        driver.run()  # no specs, no until: nothing to derive a deadline from
    with pytest.raises(ReproError):
        driver.deadline()


def test_add_site_grows_the_fabric_mid_run():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    assert len(driver.sites) == 1
    site = driver.add_site()
    assert site.index == 1 and len(driver.sites) == 2
    # The new site shares the shard set: a session admitted there is
    # findable through the original site's registry front-end.
    done = driver.admit(_spec("grown"), site=site)
    driver.env.run(until=40.0)
    assert done.ok
    entries = driver.sites[0].registry.find({"application": "grown"})
    assert len(entries) == 2  # steering + viz handles


def test_add_registry_shard_rebalances_and_stays_consistent():
    driver = FleetDriver(n_sites=2, registry_shards=2)
    reg0, reg1 = driver.sites[0].registry, driver.sites[1].registry
    handles = [f"gsh://svc-{i}:8000/steer-{i}" for i in range(40)]
    for i, h in enumerate(handles):
        reg0.publish(h, {"application": f"app-{i % 5}", "type": "steering"})
    before = reg1.find({})
    assert len(before) == 40

    shard = driver.add_registry_shard()
    assert len(driver.shards) == 3
    # Every front-end sees the new shard and the same entries.
    for reg in (reg0, reg1):
        assert len(reg.shards) == 3
        assert reg.find({}) == before
        for h in handles:
            assert reg.lookup(h)["type"] == "steering"
    # Entries actually moved onto the new shard (crc32 spread).
    assert len(shard._entries) > 0
    assert sum(len(s._entries) for s in driver.shards) == 40
    # Sites built after the growth inherit the full shard set.
    site = driver.add_site()
    assert len(site.registry.shards) == 3
    assert site.registry.find({}) == before


def test_autoscaled_open_loop_beats_fixed_capacity_on_waits():
    def run(autoscale):
        driver = FleetDriver(n_sites=1, queue_slots=2)
        ctl = AdmissionController(driver, queue_limit=16)
        if autoscale:
            ReactiveAutoscaler(ctl, max_sites=4, high_depth=2,
                               interval=1.0, cooldown=0.0)
        arrivals = TraceArrivals(
            [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4],
            suite=[_spec("proto", duration=3.0)], prefix="f",
        )
        return ctl.run(arrivals, until=80.0)

    fixed = run(False).queue
    elastic = run(True).queue
    assert elastic.scale_ups > 0
    assert elastic.wait_p99 < fixed.wait_p99
    assert elastic.admitted >= fixed.admitted
