"""Regression tests: the indexed registry matches the naive linear scan."""

import random

import pytest

from repro.errors import OgsaError
from repro.ogsa import RegistryService

APPS = ["LB3D", "PEPC", "building", "crowd"]
SITES = ["ucl", "man", "anl", "hlrs", "juelich"]
TYPES = ["steering", "viz-steering"]


def _populate(reg, n, seed=0):
    rng = random.Random(seed)
    for i in range(n):
        reg.publish(
            f"gsh://site:8000/svc-{i}",
            {
                "type": rng.choice(TYPES),
                "application": rng.choice(APPS),
                "site": rng.choice(SITES),
                "job": f"job-{i % 17}",
            },
        )


QUERIES = [
    {},
    {"application": "LB3D"},
    {"application": "PEPC", "type": "steering"},
    {"site": "hlrs", "type": "viz-steering", "application": "crowd"},
    {"application": "no-such-app"},
    {"unknown-key": 1},
    {"job": "job-3"},
]


@pytest.mark.parametrize("query", QUERIES)
def test_indexed_find_matches_naive(query):
    reg = RegistryService()
    _populate(reg, 300, seed=9)
    assert reg.find(query) == reg._find_naive(query)


def test_index_survives_republish_and_unpublish():
    reg = RegistryService()
    _populate(reg, 50, seed=2)
    # Refresh with different metadata: old index entries must not linger.
    reg.publish("gsh://site:8000/svc-7", {"application": "LB3D", "type": "steering"})
    reg.publish("gsh://site:8000/svc-7", {"application": "PEPC", "type": "steering"})
    hits = reg.find({"application": "LB3D", "type": "steering"})
    assert all(e["handle"] != "gsh://site:8000/svc-7" for e in hits)
    found = reg.find({"application": "PEPC", "type": "steering"})
    assert any(e["handle"] == "gsh://site:8000/svc-7" for e in found)
    for q in QUERIES:
        assert reg.find(q) == reg._find_naive(q)
    # Unpublish a batch and re-compare.
    for i in range(0, 50, 3):
        reg.unpublish(f"gsh://site:8000/svc-{i}")
    for q in QUERIES:
        assert reg.find(q) == reg._find_naive(q)
    assert reg.service_data["entry_count"] == len(reg._entries)


def test_unhashable_metadata_values_still_found():
    reg = RegistryService()
    reg.publish(
        "gsh://a:1/s1",
        {"application": "PEPC", "view": [0.0, -3.0, 0.0]},
    )
    reg.publish("gsh://a:1/s2", {"application": "PEPC"})
    # Query on the hashable key finds both (unindexed handle folded in).
    assert [e["handle"] for e in reg.find({"application": "PEPC"})] == [
        "gsh://a:1/s1",
        "gsh://a:1/s2",
    ]
    # Query on the unhashable value falls back to the scan path.
    assert [e["handle"] for e in reg.find({"view": [0.0, -3.0, 0.0]})] == [
        "gsh://a:1/s1"
    ]
    assert reg.find({"view": [9.9]}) == []
    for q in ({}, {"application": "PEPC"}, {"view": [0.0, -3.0, 0.0]}):
        assert reg.find(q) == reg._find_naive(q)
    reg.unpublish("gsh://a:1/s1")
    assert reg.find({"application": "PEPC"}) == reg._find_naive(
        {"application": "PEPC"}
    )


def test_numeric_equivalence_matches_naive():
    # 1, 1.0 and True are equal and hash alike: both paths must agree.
    reg = RegistryService()
    reg.publish("gsh://a:1/int", {"flag": 1})
    reg.publish("gsh://a:1/float", {"flag": 1.0})
    reg.publish("gsh://a:1/bool", {"flag": True})
    for probe in (1, 1.0, True):
        assert reg.find({"flag": probe}) == reg._find_naive({"flag": probe})
        assert len(reg.find({"flag": probe})) == 3


def test_nan_values_match_naive():
    nan = float("nan")
    reg = RegistryService()
    reg.publish("gsh://a:1/nan", {"x": nan})
    # Even probing with the *same* nan object must behave like `==`.
    assert reg.find({"x": nan}) == reg._find_naive({"x": nan}) == []


def test_publish_validation_unchanged():
    reg = RegistryService()
    with pytest.raises(OgsaError):
        reg.publish("not-a-gsh", {})
    with pytest.raises(OgsaError):
        reg.publish("gsh://a:1/x", metadata=["not", "a", "dict"])
    with pytest.raises(OgsaError):
        reg.unpublish("gsh://a:1/never")
