"""Regression tests: the indexed registry matches the naive linear scan."""

import random

import pytest

from repro.errors import OgsaError
from repro.ogsa import RegistryService

APPS = ["LB3D", "PEPC", "building", "crowd"]
SITES = ["ucl", "man", "anl", "hlrs", "juelich"]
TYPES = ["steering", "viz-steering"]


def _populate(reg, n, seed=0):
    rng = random.Random(seed)
    for i in range(n):
        reg.publish(
            f"gsh://site:8000/svc-{i}",
            {
                "type": rng.choice(TYPES),
                "application": rng.choice(APPS),
                "site": rng.choice(SITES),
                "job": f"job-{i % 17}",
            },
        )


QUERIES = [
    {},
    {"application": "LB3D"},
    {"application": "PEPC", "type": "steering"},
    {"site": "hlrs", "type": "viz-steering", "application": "crowd"},
    {"application": "no-such-app"},
    {"unknown-key": 1},
    {"job": "job-3"},
]


@pytest.mark.parametrize("query", QUERIES)
def test_indexed_find_matches_naive(query):
    reg = RegistryService()
    _populate(reg, 300, seed=9)
    assert reg.find(query) == reg._find_naive(query)


def test_index_survives_republish_and_unpublish():
    reg = RegistryService()
    _populate(reg, 50, seed=2)
    # Refresh with different metadata: old index entries must not linger.
    reg.publish("gsh://site:8000/svc-7", {"application": "LB3D", "type": "steering"})
    reg.publish("gsh://site:8000/svc-7", {"application": "PEPC", "type": "steering"})
    hits = reg.find({"application": "LB3D", "type": "steering"})
    assert all(e["handle"] != "gsh://site:8000/svc-7" for e in hits)
    found = reg.find({"application": "PEPC", "type": "steering"})
    assert any(e["handle"] == "gsh://site:8000/svc-7" for e in found)
    for q in QUERIES:
        assert reg.find(q) == reg._find_naive(q)
    # Unpublish a batch and re-compare.
    for i in range(0, 50, 3):
        reg.unpublish(f"gsh://site:8000/svc-{i}")
    for q in QUERIES:
        assert reg.find(q) == reg._find_naive(q)
    assert reg.service_data["entry_count"] == len(reg._entries)


def test_unhashable_metadata_values_still_found():
    reg = RegistryService()
    reg.publish(
        "gsh://a:1/s1",
        {"application": "PEPC", "view": [0.0, -3.0, 0.0]},
    )
    reg.publish("gsh://a:1/s2", {"application": "PEPC"})
    # Query on the hashable key finds both (unindexed handle folded in).
    assert [e["handle"] for e in reg.find({"application": "PEPC"})] == [
        "gsh://a:1/s1",
        "gsh://a:1/s2",
    ]
    # Query on the unhashable value falls back to the scan path.
    assert [e["handle"] for e in reg.find({"view": [0.0, -3.0, 0.0]})] == [
        "gsh://a:1/s1"
    ]
    assert reg.find({"view": [9.9]}) == []
    for q in ({}, {"application": "PEPC"}, {"view": [0.0, -3.0, 0.0]}):
        assert reg.find(q) == reg._find_naive(q)
    reg.unpublish("gsh://a:1/s1")
    assert reg.find({"application": "PEPC"}) == reg._find_naive(
        {"application": "PEPC"}
    )


def test_numeric_equivalence_matches_naive():
    # 1, 1.0 and True are equal and hash alike: both paths must agree.
    reg = RegistryService()
    reg.publish("gsh://a:1/int", {"flag": 1})
    reg.publish("gsh://a:1/float", {"flag": 1.0})
    reg.publish("gsh://a:1/bool", {"flag": True})
    for probe in (1, 1.0, True):
        assert reg.find({"flag": probe}) == reg._find_naive({"flag": probe})
        assert len(reg.find({"flag": probe})) == 3


def test_nan_values_match_naive():
    nan = float("nan")
    reg = RegistryService()
    reg.publish("gsh://a:1/nan", {"x": nan})
    # Even probing with the *same* nan object must behave like `==`.
    assert reg.find({"x": nan}) == reg._find_naive({"x": nan}) == []


def _assert_index_consistent(reg):
    """The inverted index holds exactly the live (key, value) -> handle
    facts: no stale buckets, no empty buckets, nothing missing."""
    for (k, v), bucket in reg._index.items():
        assert bucket, f"empty bucket left behind for {(k, v)!r}"
        for handle in bucket:
            assert handle in reg._entries, f"stale handle {handle!r}"
            stored = reg._entries[handle].get(k, _MISSING)
            # Hash-equal values (1, 1.0, True) share a bucket key; the
            # entry must hold an == value under that key.
            assert stored is not _MISSING and stored == v
    for handle, meta in reg._entries.items():
        if handle in reg._unindexed:
            continue
        for k, v in meta.items():
            assert handle in reg._index.get((k, v), ()), (
                f"{handle!r} missing from bucket {(k, v)!r}"
            )
    assert reg._unindexed <= set(reg._entries)


_MISSING = object()


def test_index_consistency_under_randomized_churn():
    rng = random.Random(42)
    reg = RegistryService()
    alive = set()
    for step in range(600):
        op = rng.random()
        if op < 0.45 or not alive:
            # publish a fresh handle
            h = f"gsh://site:8000/churn-{step}"
            reg.publish(h, {
                "type": rng.choice(TYPES),
                "application": rng.choice(APPS),
                "site": rng.choice(SITES),
            })
            alive.add(h)
        elif op < 0.80:
            # update-metadata: republish an existing handle with fresh
            # (possibly fewer/different) keys — old facts must vanish
            h = rng.choice(sorted(alive))
            meta = {"application": rng.choice(APPS)}
            if rng.random() < 0.5:
                meta["site"] = rng.choice(SITES)
            if rng.random() < 0.3:
                meta["view"] = [rng.random()]  # unhashable branch
            reg.publish(h, meta)
        else:
            h = rng.choice(sorted(alive))
            reg.unpublish(h)
            alive.remove(h)
        if step % 50 == 0:
            _assert_index_consistent(reg)
    _assert_index_consistent(reg)
    assert set(reg._entries) == alive
    # And the indexed find still matches the naive scan on every query.
    probes = QUERIES + [{"site": s} for s in SITES]
    for q in probes:
        assert reg.find(q) == reg._find_naive(q)


def test_publish_validation_unchanged():
    reg = RegistryService()
    with pytest.raises(OgsaError):
        reg.publish("not-a-gsh", {})
    with pytest.raises(OgsaError):
        reg.publish("gsh://a:1/x", metadata=["not", "a", "dict"])
    with pytest.raises(OgsaError):
        reg.unpublish("gsh://a:1/never")
