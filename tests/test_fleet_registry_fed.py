"""Sharded/federated registry: routing, parity with one big registry,
and shared-shard federation across several front-ends."""

import pytest

from repro.errors import OgsaError
from repro.fleet import FederatedRegistry, make_shards
from repro.ogsa import RegistryService


def _handles(results):
    return [e["handle"] for e in results]


def _populate(reg, n=60):
    for i in range(n):
        reg.publish(
            f"gsh://site:8000/svc-{i}",
            {"type": "steering" if i % 2 else "viz-steering",
             "application": f"app-{i % 5}"},
        )


def test_find_matches_single_registry_semantics():
    fed = FederatedRegistry(shards=4)
    ref = RegistryService()
    _populate(fed)
    _populate(ref)
    for query in (None, {}, {"application": "app-3"},
                  {"type": "steering", "application": "app-1"},
                  {"application": "nope"}):
        assert fed.find(query) == ref.find(query)


def test_entries_spread_over_shards_and_route_stably():
    fed = FederatedRegistry(shards=4)
    _populate(fed, n=200)
    sizes = fed.shard_sizes()
    assert sum(sizes) == fed.entry_count == 200
    assert min(sizes) > 0  # crc32 spreads a numbered namespace
    # lookup/unpublish route to the same shard publish chose.
    assert fed.lookup("gsh://site:8000/svc-17")["application"] == "app-2"
    fed.unpublish("gsh://site:8000/svc-17")
    with pytest.raises(OgsaError):
        fed.lookup("gsh://site:8000/svc-17")
    assert fed.entry_count == 199


def test_shared_shards_federate_across_frontends():
    shards = make_shards(3)
    site_a = FederatedRegistry("registry", shards=shards)
    site_b = FederatedRegistry("registry", shards=shards)
    site_a.publish("gsh://a:1/x", {"application": "LB3D"})
    # Published via A, visible via B (and vice versa).
    assert _handles(site_b.find({"application": "LB3D"})) == ["gsh://a:1/x"]
    site_b.publish("gsh://b:1/y", {"application": "LB3D"})
    assert len(site_a.find({"application": "LB3D"})) == 2
    site_b.unpublish("gsh://a:1/x")
    assert _handles(site_a.find({})) == ["gsh://b:1/y"]


def test_service_data_entry_count_fresh_across_frontends():
    shards = make_shards(2)
    site_a = FederatedRegistry("registry", shards=shards)
    site_b = FederatedRegistry("registry", shards=shards)
    site_a.publish("gsh://a:1/x", {"application": "LB3D"})
    site_a.publish("gsh://a:1/y", {"application": "LB3D"})
    # B never published, but its SDE must reflect the shared shards.
    assert site_b.get_service_data("entry_count") == 2
    assert site_b.get_service_data()["entry_count"] == 2


def test_validation_and_empty_shardset():
    fed = FederatedRegistry(shards=2)
    with pytest.raises(OgsaError):
        fed.publish(123, {})
    with pytest.raises(OgsaError):
        fed.publish("not-a-gsh", {})
    with pytest.raises(OgsaError):
        fed.unpublish("gsh://a:1/never")
    with pytest.raises(OgsaError):
        FederatedRegistry(shards=0)
    with pytest.raises(OgsaError):
        FederatedRegistry(shards=[])


def test_portype_matches_registry_service():
    # Clients introspecting a deployed front-end see the registry portType.
    from repro.des import Environment
    from repro.net import Network
    from repro.ogsa import OgsiLiteContainer

    env = Environment()
    net = Network(env)
    net.add_host("svc")
    container = OgsiLiteContainer(net.host("svc"), 8000)
    ref = container.deploy(FederatedRegistry(shards=2))
    assert {"publish", "unpublish", "find", "lookup"} <= set(ref.interface)
