"""Tests for the util package: ids, stats, eventlog."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import EventLog, IdAllocator, RunningStats, Timeline, percentile
from repro.util.ids import token_hex


def test_id_allocator_sequence_and_isolation():
    a = IdAllocator("job")
    b = IdAllocator("job")
    assert a.next() == "job-1"
    assert a.next() == "job-2"
    assert b.next() == "job-1"  # independent namespaces
    assert a() == "job-3"  # callable form


def test_token_hex_deterministic():
    assert token_hex(random.Random(1)) == token_hex(random.Random(1))
    assert token_hex(random.Random(1)) != token_hex(random.Random(2))
    assert len(token_hex(random.Random(0), nbytes=4)) == 8


def test_running_stats_known_values():
    s = RunningStats()
    s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.n == 8
    assert s.mean == pytest.approx(5.0)
    assert s.stdev == pytest.approx(2.138, rel=0.01)
    assert s.min == 2.0 and s.max == 9.0


def test_running_stats_empty_and_single():
    s = RunningStats()
    assert math.isnan(s.mean)
    s.add(3.0)
    assert s.mean == 3.0 and s.variance == 0.0


@settings(max_examples=50, deadline=None)
@given(xs=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
def test_property_running_stats_matches_batch(xs):
    s = RunningStats()
    s.extend(xs)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
    assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
    assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


def test_percentile():
    data = [1, 2, 3, 4, 5]
    assert percentile(data, 0) == 1
    assert percentile(data, 50) == 3
    assert percentile(data, 100) == 5
    assert percentile(data, 25) == 2
    assert percentile([7], 99) == 7
    with pytest.raises(ValueError):
        percentile([], 50)


def test_timeline_record_window_last():
    t = Timeline()
    for i in range(10):
        t.record(float(i), i * i)
    assert len(t) == 10
    assert t.last() == 81
    w = t.window(2.0, 5.0)
    assert w.times == [2.0, 3.0, 4.0]
    assert w.values == [4, 9, 16]
    with pytest.raises(IndexError):
        Timeline().last()


def test_eventlog_emit_select_first():
    clock = {"now": 0.0}
    log = EventLog(lambda: clock["now"])
    log.emit("gateway", "connect", user="john")
    clock["now"] = 5.0
    log.emit("gateway", "relay", vsite="JUELICH")
    log.emit("njs", "consign", job="j-1")
    assert len(log) == 3
    assert [r.kind for r in log.select(component="gateway")] == ["connect", "relay"]
    assert log.select(kind="consign")[0].detail == {"job": "j-1"}
    assert log.select(t0=1.0)[0].kind == "relay"
    assert log.first(component="njs").time == 5.0
    with pytest.raises(LookupError):
        log.first(component="nobody")
    dump = log.dump()
    assert "gateway" in dump and "job=j-1" in dump


def test_eventlog_bind_clock():
    log = EventLog()
    log.emit("x", "a")
    assert log.select()[0].time == 0.0
    clock = {"now": 9.0}
    log.bind_clock(lambda: clock["now"])
    log.emit("x", "b")
    assert log.select(kind="b")[0].time == 9.0
