"""Admission controller unit tests against a lightweight fake driver.

The fake serves each admitted session for a fixed virtual time, so queue
mechanics (priority, abandonment, backpressure, slot holding) can be
asserted without the full UNICORE/OGSA fabric — the integration half
lives in test_load_openloop.py.
"""

import pytest

from repro.des import Environment
from repro.errors import LoadError
from repro.fleet import FleetTelemetry
from repro.fleet.spec import ScenarioSpec
from repro.load import AdmissionController, CapacityLedger, SloClass, TraceArrivals


class FakeDriver:
    """FleetDriver stand-in: admit() runs a timed no-op session."""

    def __init__(self, env, service_time=2.0):
        self.env = env
        self.telemetry = FleetTelemetry()
        self.service_time = service_time
        self.launched = []

    def admit(self, spec, site=None, at=None):
        self.launched.append((self.env.now, spec.name, site))
        return self.env.process(self._serve(spec))

    def _serve(self, spec):
        yield self.env.timeout(self.service_time)
        self.telemetry.session(spec.name).mark_completed(self.env.now)


def _spec(name, participants=1):
    return ScenarioSpec(name=name, participants=participants,
                        duration=1.0, cadence=0.5)


def _world(slots=(1,), service_time=2.0, **ctl_kwargs):
    env = Environment()
    driver = FakeDriver(env, service_time=service_time)
    ledger = CapacityLedger()
    for i, n in enumerate(slots):
        ledger.register_site(i, n)
    ctl = AdmissionController(driver, ledger=ledger, **ctl_kwargs)
    return env, driver, ctl


def test_immediate_admission_when_capacity_free():
    env, driver, ctl = _world(slots=(2,))
    arrivals = TraceArrivals([0.5, 1.0], suite=[_spec("proto")], prefix="a")
    ctl.feed(arrivals)
    env.run(until=10.0)
    q = ctl.telemetry
    assert q.offered == q.admitted == 2
    assert q.rejected == q.abandoned == 0
    # No queueing at all: waits are zero.
    assert q.wait.percentile(99) == 0.0
    assert [t for t, _, _ in driver.launched] == [0.5, 1.0]


def test_slot_held_until_session_completes():
    env, driver, ctl = _world(slots=(1,), service_time=3.0)
    ctl.feed(TraceArrivals([0.0, 0.0], suite=[_spec("p")], prefix="b"))
    env.run(until=20.0)
    # Second session had to wait for the first's slot: 3s service time.
    assert [t for t, _, _ in driver.launched] == [0.0, 3.0]
    assert ctl.telemetry.wait.percentile(100) == pytest.approx(3.0)


def test_reject_on_full_queue_is_backpressure():
    env, driver, ctl = _world(slots=(1,), service_time=50.0, queue_limit=2)
    offered = {}

    def scenario():
        # First occupies the slot; two queue; the fourth bounces.
        for i in range(4):
            offered[i] = ctl.offer(_spec(f"r{i}"))
        yield env.timeout(0.0)

    env.process(scenario())
    env.run(until=1.0)
    assert offered[0] is True and offered[1] is True and offered[2] is True
    assert offered[3] is False
    q = ctl.telemetry
    assert q.offered == 4 and q.rejected == 1
    assert q.depth_max == 2  # the bound held


def test_abandonment_after_patience():
    impatient = SloClass("impatient", priority=0, wait_slo=1.0, patience=2.0)
    env, driver, ctl = _world(
        slots=(1,), service_time=10.0, classifier=lambda s: impatient
    )
    ctl.feed(TraceArrivals([0.0, 0.5], suite=[_spec("p")], prefix="c"))
    env.run(until=20.0)
    q = ctl.telemetry
    # First admitted instantly; second gave up at 0.5 + 2.0 = 2.5.
    assert q.admitted == 1 and q.abandoned == 1
    assert len(driver.launched) == 1
    assert q.by_class["impatient"]["abandoned"] == 1


def test_priority_class_jumps_the_queue():
    urgent = SloClass("urgent", priority=0, wait_slo=60.0, patience=100.0)
    lazy = SloClass("lazy", priority=5, wait_slo=60.0, patience=100.0)
    classes = {"u": urgent, "l": lazy}
    env, driver, ctl = _world(
        slots=(1,), service_time=2.0,
        classifier=lambda s: classes[s.name[0]],
    )

    def scenario():
        ctl.offer(_spec("l-first"))   # takes the slot at t=0
        ctl.offer(_spec("l-second"))  # queues
        yield env.timeout(0.5)
        ctl.offer(_spec("u-late"))    # queues later but outranks it

    env.process(scenario())
    env.run(until=30.0)
    order = [name for _, name, _ in driver.launched]
    assert order == ["l-first", "u-late", "l-second"]


def test_slo_met_flag_follows_wait():
    tight = SloClass("tight", priority=0, wait_slo=1.0, patience=100.0)
    env, driver, ctl = _world(
        slots=(1,), service_time=4.0, classifier=lambda s: tight
    )
    ctl.feed(TraceArrivals([0.0, 0.5], suite=[_spec("p")], prefix="d"))
    env.run(until=30.0)
    met = dict((name, ok) for name, _, ok in ctl.admissions)
    assert met["d00000-lb3d"] is True    # admitted at once
    assert met["d00001-lb3d"] is False   # waited 3.5s against a 1s SLO
    assert ctl.telemetry.slo_met == 1


def test_queue_limit_validation():
    env = Environment()
    driver = FakeDriver(env)
    ledger = CapacityLedger()
    ledger.register_site(0, 1)
    with pytest.raises(LoadError):
        AdmissionController(driver, ledger=ledger, queue_limit=0)


def test_requeue_bypasses_the_bound_and_jumps_the_queue():
    env, driver, ctl = _world(slots=(1,), service_time=5.0, queue_limit=2)

    def scenario():
        ctl.offer(_spec("first"))      # takes the slot
        ctl.offer(_spec("waiting-a"))  # fills the bound...
        ctl.offer(_spec("waiting-b"))
        assert ctl.offer(_spec("bounced")) is False  # ...which sheds
        # Recovery requeue: enters anyway, ahead of the waiters.
        ctl.requeue(_spec("displaced"))
        yield env.timeout(0.0)

    env.process(scenario())
    env.run(until=30.0)
    order = [name for _, name, _ in driver.launched]
    assert order[0] == "first"
    assert order[1] == "displaced"  # RETRY priority outranks every class
    q = ctl.telemetry
    assert q.requeued == 1
    assert q.offered == 5  # 4 offers + 1 requeue: conservation holds
    assert q.offered == q.admitted + q.rejected + q.abandoned
    assert q.by_class["retry"]["requeued"] == 1
    assert q.by_class["retry"]["admitted"] == 1


def test_requeued_session_still_abandons_after_retry_patience():
    from repro.load.slo import RETRY

    env, driver, ctl = _world(slots=(1,), service_time=500.0)
    ctl.offer(_spec("hog"))        # occupies the only slot forever
    ctl.requeue(_spec("displaced"))
    env.run(until=200.0)
    q = ctl.telemetry
    # The requeue is patient (120 s) but not infinitely so: with no
    # capacity coming back it abandons rather than leaking.
    assert q.abandoned == 1
    assert q.by_class["retry"]["abandoned"] == 1
    assert len(driver.launched) == 1
    assert RETRY.patience == 120.0


def test_queue_observers_mirror_every_transition():
    env, driver, ctl = _world(slots=(1,), service_time=3.0, queue_limit=1)
    seen = []
    ctl.observers.append(lambda kind, **kw: seen.append(kind))

    def scenario():
        ctl.offer(_spec("a"))   # offer + acquire + admit
        ctl.offer(_spec("b"))   # offer (queues)
        ctl.offer(_spec("c"))   # offer + reject (bound=1)
        yield env.timeout(0.0)

    env.process(scenario())
    env.run(until=30.0)
    assert seen.count("offer") == 3
    assert seen.count("reject") == 1
    assert seen.count("admit") == seen.count("acquire") == 2
    assert seen.count("release") == 2


def test_depth_integral_tracks_queueing():
    env, driver, ctl = _world(slots=(1,), service_time=4.0, queue_limit=8)
    ctl.feed(TraceArrivals([0.0, 0.0, 0.0], suite=[_spec("p")], prefix="e"))
    env.run(until=30.0)
    q = ctl.telemetry
    q.finalize(env.now)
    assert q.depth_max == 2
    assert q.depth_mean > 0.0


# -- retry_after bound (PR 8 regression) -------------------------------------
#
# The old bound clamped each entry's remaining patience at zero, so a
# queue full of entries whose patience had elapsed (but whose
# abandonment sweep hadn't stepped yet) advertised Retry-After 0 — every
# rejected caller invited straight back at a still-full queue.


def test_retry_after_empty_queue_is_zero():
    env, driver, ctl = _world(slots=(1,))
    assert ctl.retry_after() == 0.0


def test_retry_after_is_min_remaining_patience():
    from repro.load.slo import BATCH, INTERACTIVE

    env, driver, ctl = _world(
        slots=(1,), service_time=100.0, queue_limit=4,
        classifier=lambda spec: BATCH if spec.name.startswith("b") else INTERACTIVE,
    )
    ctl.offer(_spec("b-hold"))      # admitted to the only slot
    ctl.offer(_spec("b-queued"))    # BATCH, patience 40
    ctl.offer(_spec("i-queued"))    # INTERACTIVE, patience 8
    assert ctl.retry_after() == 8.0
    env.now = 5.0
    assert ctl.retry_after() == 3.0


def test_retry_after_skips_expired_entries():
    from repro.load.slo import BATCH, INTERACTIVE

    env, driver, ctl = _world(
        slots=(1,), service_time=100.0, queue_limit=4,
        classifier=lambda spec: BATCH if spec.name.startswith("b") else INTERACTIVE,
    )
    ctl.offer(_spec("b-hold"))
    ctl.offer(_spec("i-queued"))    # patience 8
    ctl.offer(_spec("b-queued"))    # patience 40
    # Past the interactive entry's patience, before its sweep has run:
    # the bound must fall through to the still-fresh batch entry.
    env.now = 10.0
    assert ctl.retry_after() == 30.0


def test_retry_after_all_expired_falls_back_to_patience_floor():
    from repro.load.slo import BATCH, INTERACTIVE

    env, driver, ctl = _world(
        slots=(1,), service_time=100.0, queue_limit=4,
        classifier=lambda spec: BATCH if spec.name.startswith("b") else INTERACTIVE,
    )
    ctl.offer(_spec("b-hold"))
    ctl.offer(_spec("i-queued"))    # patience 8
    ctl.offer(_spec("b-queued"))    # patience 40
    env.now = 50.0  # everyone's patience elapsed, no sweep has stepped
    bound = ctl.retry_after()
    assert bound == 8.0  # the shortest patience, never 0
    assert bound > 0.0
