"""The scheduler seam: every backend is the same kernel.

The calendar queue is only admissible because it pops events in exactly
the heap's ``(time, priority, seq)`` order — these tests pin that at
three levels: raw scheduler pop order, whole-workload event traces
(hypothesis-driven random worlds with timeouts, interrupts and
conditions), and the adaptive-resize machinery that must stay
deterministic and crash-free on degenerate shapes (same-instant floods,
far-horizon sentinels).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import (
    CalendarScheduler,
    Environment,
    HeapScheduler,
    Interrupt,
    available_backends,
    make_scheduler,
)
from repro.des.sched import DEFAULT_BACKEND, ENV_VAR
from repro.errors import SimulationError

BACKENDS = list(available_backends())


def _item(t, prio=1, seq=0):
    return (t, prio, seq, f"ev-{t}-{prio}-{seq}")


def _drain(sched):
    out = []
    while len(sched):
        out.append(sched.pop())
    return out


# -- raw pop-order contract --------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_order_is_time_priority_seq(backend):
    sched = make_scheduler(backend)
    items = [
        _item(5.0, 1, 3),
        _item(0.5, 1, 1),
        _item(0.5, 0, 2),  # URGENT beats NORMAL at the same instant
        _item(0.5, 1, 0),  # seq breaks the final tie
        _item(12.25, 1, 4),
        _item(0.5, 0, 5),
    ]
    for it in items:
        sched.push(it)
    assert _drain(sched) == sorted(items)


@pytest.mark.parametrize("backend", BACKENDS)
def test_pop_empty_raises_indexerror(backend):
    sched = make_scheduler(backend)
    with pytest.raises(IndexError):
        sched.pop()
    assert sched.peek_time() == float("inf")
    assert len(sched) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_far_horizon_and_inf_items_order_correctly(backend):
    sched = make_scheduler(backend)
    items = [
        _item(float("inf"), 1, 0),
        _item(1e19, 1, 1),  # beyond the far horizon, bucketing bypassed
        _item(2.0, 1, 2),
        _item(1e9, 1, 3),  # a sleep-forever sentinel, still bucketed
    ]
    for it in items:
        sched.push(it)
    assert sched.peek_time() == 2.0
    assert _drain(sched) == sorted(items)


def test_calendar_push_into_draining_year_keeps_order():
    # The kernel schedules at now+delay only; a push landing in the year
    # currently being drained must bisect into the sorted remainder.
    sched = CalendarScheduler(width=1.0)
    for it in (_item(0.1, 1, 0), _item(0.2, 1, 1), _item(0.9, 1, 2)):
        sched.push(it)
    assert sched.pop() == _item(0.1, 1, 0)
    late = _item(0.15, 1, 3)
    sched.push(late)
    urgent_now = _item(0.15, 0, 4)
    sched.push(urgent_now)
    assert _drain(sched) == [urgent_now, late, _item(0.2, 1, 1), _item(0.9, 1, 2)]


def test_calendar_peek_promotes_and_matches_pop():
    sched = CalendarScheduler(width=0.5)
    for seq, t in enumerate([3.7, 0.2, 9.1]):
        sched.push(_item(t, 1, seq))
    assert sched.peek_time() == 0.2
    assert sched.pop()[0] == 0.2
    assert sched.peek_time() == 3.7


# -- adaptive width ----------------------------------------------------------


def test_calendar_shrinks_on_overfull_spread_bucket():
    sched = CalendarScheduler(width=100.0, target_occupancy=4, max_occupancy=16)
    items = [_item(i * 0.37, 1, i) for i in range(200)]
    for it in items:
        sched.push(it)
    assert sched.resizes >= 1
    assert _drain(sched) == sorted(items)


def test_calendar_same_instant_flood_does_not_resize_or_crash():
    # A same-instant flood has zero span: no width can split it, so the
    # queue must keep it as one bucket instead of chasing the width to
    # zero (the old behaviour NaN'd on floor(0.0 * inf)).
    sched = CalendarScheduler(width=1.0, target_occupancy=4, max_occupancy=16)
    items = [_item(0.0, 1, seq) for seq in range(500)]
    for it in items:
        sched.push(it)
    assert sched.resizes == 0
    assert _drain(sched) == sorted(items)


def test_calendar_widens_on_sparse_buckets():
    sched = CalendarScheduler(width=0.001, target_occupancy=16, adapt_interval=64)
    items = [_item(float(i), 1, i) for i in range(300)]
    for it in items:
        sched.push(it)
    assert _drain(sched) == sorted(items)
    assert sched.resizes >= 1


def test_calendar_resize_schedule_is_deterministic():
    def run():
        rng = random.Random(1234)
        sched = CalendarScheduler(width=1.0, target_occupancy=4, max_occupancy=32)
        trace = []
        seq = 0
        now = 0.0
        for _ in range(2000):
            if len(sched) and rng.random() < 0.45:
                item = sched.pop()
                now = item[0]
                trace.append(item)
            else:
                sched.push((now + rng.random() * 50.0, rng.choice((0, 1)), seq, seq))
                seq += 1
        trace.extend(_drain(sched))
        return trace, sched.resizes

    a_trace, a_resizes = run()
    b_trace, b_resizes = run()
    assert a_trace == b_trace
    assert a_resizes == b_resizes
    assert a_trace == sorted(a_trace, key=lambda i: i[:3])


def test_calendar_rejects_bad_construction():
    with pytest.raises(SimulationError):
        CalendarScheduler(width=0.0)
    with pytest.raises(SimulationError):
        CalendarScheduler(width=float("inf"))
    with pytest.raises(SimulationError):
        CalendarScheduler(target_occupancy=0)
    with pytest.raises(SimulationError):
        CalendarScheduler(target_occupancy=8, max_occupancy=4)


# -- backend selection -------------------------------------------------------


def test_make_scheduler_resolves_names_env_and_instances(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert make_scheduler().name == DEFAULT_BACKEND
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    monkeypatch.setenv(ENV_VAR, "heap")
    assert isinstance(make_scheduler(), HeapScheduler)
    inst = CalendarScheduler()
    assert make_scheduler(inst) is inst
    with pytest.raises(SimulationError):
        make_scheduler("btree")
    with pytest.raises(SimulationError):
        make_scheduler(object())


def test_environment_selects_backend(monkeypatch):
    assert isinstance(Environment(scheduler="heap")._sched, HeapScheduler)
    assert isinstance(Environment(scheduler="calendar")._sched, CalendarScheduler)
    monkeypatch.setenv(ENV_VAR, "heap")
    assert isinstance(Environment()._sched, HeapScheduler)
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert Environment()._sched.name == DEFAULT_BACKEND


@pytest.mark.parametrize("backend", BACKENDS)
def test_environment_pending_and_peek(backend):
    env = Environment(scheduler=backend)
    assert env.pending == 0
    assert env.peek() == float("inf")
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.pending == 2
    assert env.peek() == 1.0
    env.run()
    assert env.pending == 0


# -- whole-kernel trace equivalence ------------------------------------------


def _random_world(backend, seed, n_procs, n_steps):
    """A random world of timeouts, interrupts and conditions; returns
    the exact (time, pid, step, tag) trace of every resume."""
    env = Environment(scheduler=backend)
    trace = []
    procs = []

    def worker(i, rng_seed):
        rng = random.Random(rng_seed)
        for k in range(n_steps):
            roll = rng.random()
            try:
                if roll < 0.55:
                    yield env.timeout(rng.random() * 8.0)
                    tag = "t"
                elif roll < 0.7:
                    yield env.any_of(
                        [env.timeout(rng.random() * 4.0) for _ in range(2)]
                    )
                    tag = "any"
                elif roll < 0.85:
                    yield env.all_of(
                        [env.timeout(rng.random() * 4.0) for _ in range(2)]
                    )
                    tag = "all"
                else:
                    # Only poke lower-index workers: they initialized
                    # before this one, so the Interrupt always lands on
                    # a started generator (inside its try block).
                    if i and (victim := procs[rng.randrange(i)]).is_alive:
                        victim.interrupt(("poke", i, k))
                    yield env.timeout(rng.random() * 2.0)
                    tag = "poke"
            except Interrupt as intr:
                tag = ("intr", intr.cause)
            trace.append((env.now, i, k, tag))
        # Park instead of returning: an interrupt in flight at the
        # instant a process finishes is a (backend-independent) kernel
        # error, and this test is about trace equivalence, not that edge.
        while True:
            try:
                yield env.timeout(1e9)
            except Interrupt as intr:
                trace.append((env.now, i, "parked", intr.cause))

    master = random.Random(seed)
    for i in range(n_procs):
        procs.append(env.process(worker(i, master.randrange(2**30))))
    env.run(until=1000.0)
    return trace, env.now, env.events_processed


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n_procs=st.integers(2, 12),
    n_steps=st.integers(1, 15),
)
def test_property_backends_produce_identical_traces(seed, n_procs, n_steps):
    reference = _random_world("heap", seed, n_procs, n_steps)
    for backend in BACKENDS:
        if backend == "heap":
            continue
        assert _random_world(backend, seed, n_procs, n_steps) == reference


def test_backends_identical_on_stressed_calendar_geometry():
    # Big enough to force calendar resizes mid-run (tiny width, small
    # max_occupancy) while the same world runs on the plain heap.
    ref_trace, ref_now, ref_events = _random_world("heap", 99, 20, 25)
    env_trace = _random_world("calendar", 99, 20, 25)
    assert env_trace == (ref_trace, ref_now, ref_events)

    # One 10s-wide bucket holds the whole world, so the draining year's
    # remainder crosses max_occupancy and forces a mid-run shrink.
    env = Environment(
        scheduler=CalendarScheduler(width=10.0, target_occupancy=2, max_occupancy=8)
    )
    trace = []
    procs = []

    def worker(i, rng_seed):
        rng = random.Random(rng_seed)
        for k in range(25):
            yield env.timeout(rng.random() * 8.0)
            trace.append((env.now, i, k))

    master = random.Random(99)
    seeds = [master.randrange(2**30) for _ in range(20)]
    for i, s in enumerate(seeds):
        procs.append(env.process(worker(i, s)))
    env.run()
    assert env._sched.resizes >= 1
    timeout_only = [(t, i, k, "t") for (t, i, k) in trace]
    heap_env = Environment(scheduler="heap")
    heap_trace = []

    def heap_worker(i, rng_seed):
        rng = random.Random(rng_seed)
        for k in range(25):
            yield heap_env.timeout(rng.random() * 8.0)
            heap_trace.append((heap_env.now, i, k))

    for i, s in enumerate(seeds):
        heap_env.process(heap_worker(i, s))
    heap_env.run()
    assert timeout_only == [(t, i, k, "t") for (t, i, k) in heap_trace]
