"""Tests for decomposition helpers and collective cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.parallel import (
    CollectiveCostModel,
    interleave_bits3,
    morton_key,
    morton_partition,
    slab_partition,
)


def test_slab_partition_even():
    assert slab_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_slab_partition_remainder_goes_first():
    parts = slab_partition(10, 4)
    sizes = [b - a for a, b in parts]
    assert sizes == [3, 3, 2, 2]
    assert parts[-1][1] == 10


def test_slab_partition_more_parts_than_items():
    parts = slab_partition(2, 5)
    sizes = [b - a for a, b in parts]
    assert sizes == [1, 1, 0, 0, 0]


def test_slab_partition_invalid():
    with pytest.raises(SimulationError):
        slab_partition(5, 0)
    with pytest.raises(SimulationError):
        slab_partition(-1, 2)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(0, 1000), parts=st.integers(1, 32))
def test_property_slab_partition_covers_exactly(n, parts):
    slabs = slab_partition(n, parts)
    assert len(slabs) == parts
    assert slabs[0][0] == 0 and slabs[-1][1] == n
    for (a0, a1), (b0, b1) in zip(slabs, slabs[1:]):
        assert a1 == b0  # contiguous, no gaps or overlaps
    sizes = [b - a for a, b in slabs]
    assert max(sizes) - min(sizes) <= 1  # balanced


def test_interleave_bits_known_values():
    # x=1, y=0, z=0 -> key 0b001 = 1 ; y=1 -> 0b010 = 2 ; z=1 -> 0b100 = 4
    x = np.array([1, 0, 0])
    y = np.array([0, 1, 0])
    z = np.array([0, 0, 1])
    np.testing.assert_array_equal(interleave_bits3(x, y, z, 1), [1, 2, 4])


def test_interleave_bits_multibit():
    # x=0b11, y=0, z=0 -> bits at positions 0 and 3 -> 0b1001 = 9
    key = interleave_bits3(np.array([3]), np.array([0]), np.array([0]), 2)
    assert key[0] == 9


def test_morton_key_locality():
    """Adjacent points share key prefixes more than distant points."""
    lo, hi = np.zeros(3), np.ones(3)
    pts = np.array([[0.1, 0.1, 0.1], [0.1001, 0.1, 0.1], [0.9, 0.9, 0.9]])
    keys = morton_key(pts, lo, hi, bits=16)
    assert abs(int(keys[0]) - int(keys[1])) < abs(int(keys[0]) - int(keys[2]))


def test_morton_key_validates_shape():
    with pytest.raises(SimulationError):
        morton_key(np.zeros((3, 2)), np.zeros(3), np.ones(3))


def test_morton_key_degenerate_box():
    with pytest.raises(SimulationError):
        morton_key(np.zeros((1, 3)), np.zeros(3), np.zeros(3))


def test_morton_partition_balance_and_cover():
    rng = np.random.default_rng(42)
    pts = rng.random((1000, 3))
    owner, lists = morton_partition(pts, 7, np.zeros(3), np.ones(3))
    assert sum(len(ix) for ix in lists) == 1000
    sizes = [len(ix) for ix in lists]
    assert max(sizes) - min(sizes) <= 1
    for r, idx in enumerate(lists):
        assert np.all(owner[idx] == r)


def test_morton_partition_spatial_locality():
    """Each rank's points should be more compact than the whole cloud."""
    rng = np.random.default_rng(1)
    pts = rng.random((2000, 3))
    _, lists = morton_partition(pts, 8, np.zeros(3), np.ones(3))
    whole = pts.std(axis=0).mean()
    per_rank = np.mean([pts[ix].std(axis=0).mean() for ix in lists])
    assert per_rank < whole


def test_cost_model_monotonic_in_ranks_and_bytes():
    m = CollectiveCostModel()
    assert m.bcast(2, 1000) < m.bcast(64, 1000)
    assert m.allgather(8, 100) < m.allgather(8, 10000)
    assert m.barrier(1) == 0.0
    assert m.bcast(1, 1e9) == 0.0


def test_cost_model_allreduce_is_reduce_plus_bcast():
    m = CollectiveCostModel()
    assert m.allreduce(16, 4096) == pytest.approx(
        m.reduce(16, 4096) + m.bcast(16, 4096)
    )


def test_cost_model_validation():
    m = CollectiveCostModel()
    with pytest.raises(SimulationError):
        m.bcast(0, 10)
    with pytest.raises(SimulationError):
        m.allgather(2, -1)
