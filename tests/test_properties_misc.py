"""Property tests across subsystems: links, steering protocol, morton keys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.net import Network
from repro.net.network import Link
from repro.parallel import morton_key
from repro.steering.control import (
    SetParam,
    StatusReport,
    decode_message,
    encode_message,
)
from repro.wire import decode, encode
from repro.wire.codec import approx_size


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 10_000_000), min_size=1, max_size=20),
    latency=st.floats(0.0, 0.5),
    bandwidth=st.floats(1e3, 1e9),
)
def test_property_link_deliveries_fifo_and_causal(sizes, latency, bandwidth):
    """Back-to-back reservations deliver in order, never before the
    serialization + latency lower bound."""
    link = Link("a", "b", latency, bandwidth)
    now = 0.0
    deliveries = []
    for s in sizes:
        deliveries.append(link.reserve(s, now))
    assert deliveries == sorted(deliveries)
    # Total serialization is conserved.
    assert deliveries[-1] == pytest.approx(
        sum(sizes) / bandwidth + latency, rel=1e-9
    )
    assert link.bytes_carried == sum(sizes)


@settings(max_examples=60, deadline=None)
@given(
    name=st.text(min_size=1, max_size=20),
    value=st.one_of(
        st.floats(allow_nan=False, allow_infinity=False),
        st.integers(-(2**31), 2**31 - 1),
        st.text(max_size=20),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=5),
    ),
    seq=st.integers(0, 2**31 - 1),
)
def test_property_setparam_full_wire_roundtrip(name, value, seq):
    msg = SetParam(name=name, value=value, seq=seq, sender="prop")
    assert decode_message(decode(encode(encode_message(msg)))) == msg


@settings(max_examples=30, deadline=None)
@given(
    step=st.integers(0, 10**6),
    obs=st.dictionaries(st.text(min_size=1, max_size=8),
                        st.floats(allow_nan=False, allow_infinity=False),
                        max_size=5),
)
def test_property_status_report_roundtrip(step, obs):
    msg = StatusReport(step=step, time=float(step), observables=obs,
                       parameters={"g": 1.0}, paused=False)
    out = decode_message(decode(encode(encode_message(msg))))
    assert out.step == step and out.observables == obs


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 1000),
    shift=st.floats(0.0, 0.4),
)
def test_property_morton_keys_order_matches_octant_order(n, seed, shift):
    """Points in the low corner octant always get smaller keys than
    points in the high corner octant."""
    rng = np.random.default_rng(seed)
    lo_pts = rng.random((n, 3)) * 0.4
    hi_pts = 0.6 + rng.random((n, 3)) * 0.4 - shift * 0
    keys_lo = morton_key(lo_pts, np.zeros(3), np.ones(3), bits=10)
    keys_hi = morton_key(hi_pts, np.zeros(3), np.ones(3), bits=10)
    assert keys_lo.max() < keys_hi.min()


@settings(max_examples=60, deadline=None)
@given(
    value=st.recursive(
        st.none() | st.booleans() | st.integers(-(2**40), 2**40)
        | st.floats(allow_nan=False) | st.text(max_size=16)
        | st.binary(max_size=16),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=4), children, max_size=3),
        max_leaves=8,
    )
)
def test_property_approx_size_upper_bounds_exact_size(value):
    """approx_size is exact-or-overestimate for codec-supported values
    (links must never undercharge)."""
    exact = len(encode(value)) - 1  # minus the byteorder byte
    approx = approx_size(value)
    assert approx >= exact * 0.5  # same order...
    assert approx >= 1


@settings(max_examples=20, deadline=None)
@given(
    n_msgs=st.integers(1, 20),
    payload_kb=st.integers(1, 64),
)
def test_property_network_conserves_bytes(n_msgs, payload_kb):
    """Every byte sent over a connection shows up in link accounting."""
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=0.001, bandwidth=1e8)
    payload = b"x" * (payload_kb * 1024)

    def server():
        lst = net.host("b").listen(1)
        conn = yield from lst.accept()
        for _ in range(n_msgs):
            yield from conn.recv()

    def client():
        conn = yield from net.host("a").connect("b", 1)
        for _ in range(n_msgs):
            conn.send(payload)

    env.process(server())
    env.process(client())
    env.run()
    carried = net.link("a", "b").bytes_carried
    assert carried >= n_msgs * len(payload)
    # Overhead is only the 64-byte control messages of the handshake.
    assert carried <= n_msgs * len(payload) + 256
