"""Framebuffer + compression tests, incl. property round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, ReproError
from repro.viz import (
    FrameBuffer,
    compress_frame,
    decompress_frame,
    delta_decode,
    delta_encode,
    rle_decode,
    rle_encode,
)
from repro.viz.compress import compression_ratio


def test_framebuffer_basics():
    fb = FrameBuffer(8, 4)
    assert fb.nbytes == 8 * 4 * 3
    fb.color[2, 3] = (9, 9, 9)
    fb.clear((1, 2, 3))
    assert np.all(fb.color == np.array([1, 2, 3], dtype=np.uint8))
    assert np.all(np.isinf(fb.depth))


def test_framebuffer_invalid_size():
    with pytest.raises(ReproError):
        FrameBuffer(0, 5)


def test_changed_fraction():
    a = FrameBuffer(10, 10)
    b = a.copy()
    assert a.changed_fraction(b) == 0.0
    b.color[:5] = 255
    assert a.changed_fraction(b) == pytest.approx(0.5)


def test_rle_roundtrip_simple():
    data = b"\x00" * 100 + b"\x07" + b"\xff" * 300
    assert rle_decode(rle_encode(data)) == data


def test_rle_empty():
    assert rle_encode(b"") == b""
    assert rle_decode(b"") == b""


def test_rle_run_exactly_255_and_256():
    for n in (254, 255, 256, 510, 511):
        data = b"\xaa" * n
        assert rle_decode(rle_encode(data)) == data


def test_rle_compresses_uniform_data():
    data = b"\x00" * 10000
    assert len(rle_encode(data)) < 100


def test_rle_odd_stream_rejected():
    with pytest.raises(CodecError):
        rle_decode(b"\x01")


def test_delta_roundtrip():
    rng = np.random.default_rng(3)
    prev = rng.integers(0, 256, 1000, dtype=np.uint8)
    cur = rng.integers(0, 256, 1000, dtype=np.uint8)
    d = delta_encode(cur, prev)
    np.testing.assert_array_equal(delta_decode(d, prev), cur)


def test_delta_shape_mismatch():
    with pytest.raises(CodecError):
        delta_encode(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))


def test_full_frame_roundtrip():
    fb = FrameBuffer(32, 24)
    rng = np.random.default_rng(0)
    fb.color[:] = rng.integers(0, 256, fb.color.shape, dtype=np.uint8)
    out = decompress_frame(compress_frame(fb))
    assert out == fb


def test_delta_frame_roundtrip():
    rng = np.random.default_rng(1)
    prev = FrameBuffer(16, 16)
    prev.color[:] = rng.integers(0, 256, prev.color.shape, dtype=np.uint8)
    cur = prev.copy()
    cur.color[4:8, 4:8] = 200
    blob = compress_frame(cur, previous=prev)
    out = decompress_frame(blob, previous=prev)
    assert out == cur


def test_delta_frame_much_smaller_when_static():
    rng = np.random.default_rng(2)
    prev = FrameBuffer(64, 64)
    prev.color[:] = rng.integers(0, 256, prev.color.shape, dtype=np.uint8)
    cur = prev.copy()
    cur.color[0, 0] = (1, 2, 3)  # single pixel changed
    full = compress_frame(cur)
    delta = compress_frame(cur, previous=prev)
    assert len(delta) < len(full) / 20


def test_delta_frame_requires_previous_on_decode():
    prev = FrameBuffer(8, 8)
    cur = prev.copy()
    cur.color[0, 0] = 5
    blob = compress_frame(cur, previous=prev)
    with pytest.raises(CodecError):
        decompress_frame(blob)


def test_dimension_mismatch_rejected():
    with pytest.raises(CodecError):
        compress_frame(FrameBuffer(8, 8), previous=FrameBuffer(9, 8))


def test_bad_magic():
    with pytest.raises(CodecError):
        decompress_frame(b"XXXX\x08\x00\x08\x00")


def test_compression_ratio_static_scene_high():
    prev = FrameBuffer(64, 64)
    cur = prev.copy()
    assert compression_ratio(cur, prev) > 100


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=2000))
def test_property_rle_roundtrip(data):
    assert rle_decode(rle_encode(data)) == data


@settings(max_examples=20, deadline=None)
@given(
    w=st.integers(1, 24),
    h=st.integers(1, 24),
    seed=st.integers(0, 1000),
)
def test_property_frame_roundtrip(w, h, seed):
    rng = np.random.default_rng(seed)
    fb = FrameBuffer(w, h)
    fb.color[:] = rng.integers(0, 256, fb.color.shape, dtype=np.uint8)
    assert decompress_frame(compress_frame(fb)) == fb
    prev = FrameBuffer(w, h)
    prev.color[:] = rng.integers(0, 256, prev.color.shape, dtype=np.uint8)
    assert decompress_frame(compress_frame(fb, prev), prev) == fb
