"""Service migration tests: move a live service between containers."""

import pytest

from repro.des import Environment
from repro.errors import OgsaError, ServiceNotFound
from repro.net import Network, SyncPipe
from repro.ogsa import (
    GridServiceHandle,
    HandleResolver,
    OgsiLiteContainer,
    ServiceConnection,
    SteeringService,
)
from repro.ogsa.migration import migrate_service
from repro.sims import LatticeBoltzmann3D
from repro.steering import SteeredApplication, steered_app_process


def grid():
    env = Environment()
    net = Network(env)
    for h in ("hpc", "old-host", "new-host", "user"):
        net.add_host(h)
    for a in ("old-host", "new-host"):
        net.add_link("hpc", a, latency=0.005, bandwidth=100e6 / 8)
        net.add_link("user", a, latency=0.02, bandwidth=10e6 / 8)
    return env, net


def test_migrate_service_rebinds_and_keeps_state():
    env, net = grid()
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5, seed=1)
    app = SteeredApplication(sim, name="lb3d")
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    env.process(steered_app_process(env, app, compute_time=0.02))

    old = OgsiLiteContainer(net.host("old-host"), 8000, authority="auth")
    new = OgsiLiteContainer(net.host("new-host"), 8000, authority="auth")
    old.start()
    new.start()
    resolver = HandleResolver()
    steer = SteeringService("steer", pipe.b, application_name="LB3D")
    ref = old.deploy(steer)
    resolver.bind(ref)
    result = {}

    def user():
        handle = GridServiceHandle("auth", "steer")
        # Steer through the old location.
        loc = resolver.resolve(handle)
        conn = ServiceConnection(net.host("user"), loc.host, loc.port)
        yield from conn.open()
        v = yield from conn.invoke("steer", "set_parameter", name="g", value=1.0)
        result["before"] = v
        conn.close()

        # Mid-session migration.
        migrate_service("steer", old, new, resolver)
        result["old_hosts"] = old.deployed()
        result["new_hosts"] = new.deployed()

        # The client re-resolves the SAME handle and lands on new-host.
        loc = resolver.resolve(handle)
        result["new_location"] = (loc.host, loc.port)
        conn = ServiceConnection(net.host("user"), loc.host, loc.port)
        yield from conn.open()
        v = yield from conn.invoke("steer", "set_parameter", name="g", value=2.0)
        result["after"] = v
        # Service state survived (invocation counter kept counting).
        result["invocations"] = steer.invocations

    env.process(user())
    env.run(until=20.0)
    assert result["before"] == 1.0 and result["after"] == 2.0
    assert app.sim.g == 2.0  # still steering the same application
    assert result["old_hosts"] == [] and result["new_hosts"] == ["steer"]
    assert result["new_location"] == ("new-host", 8000)
    assert result["invocations"] >= 2


def test_migrate_unknown_service_rejected():
    env, net = grid()
    old = OgsiLiteContainer(net.host("old-host"), 8000)
    new = OgsiLiteContainer(net.host("new-host"), 8000)
    with pytest.raises(ServiceNotFound):
        migrate_service("ghost", old, new, HandleResolver())


def test_migrate_into_conflicting_container_rejected():
    env, net = grid()
    old = OgsiLiteContainer(net.host("old-host"), 8000)
    new = OgsiLiteContainer(net.host("new-host"), 8000)
    a = SteeringService("steer", SyncPipe().b)
    b = SteeringService("steer", SyncPipe().b)
    old.deploy(a)
    new.deploy(b)
    with pytest.raises(OgsaError, match="already hosts"):
        migrate_service("steer", old, new, HandleResolver())
    assert old.deployed() == ["steer"]  # nothing lost


def test_migrated_service_lifetime_carries_over():
    env, net = grid()
    old = OgsiLiteContainer(net.host("old-host"), 8000)
    new = OgsiLiteContainer(net.host("new-host"), 8000)
    svc = SteeringService("steer", SyncPipe().b)
    old.deploy(svc)
    svc.termination_time = env.now + 100.0
    resolver = HandleResolver()
    from repro.ogsa.handles import GridServiceReference

    resolver.bind(GridServiceReference(
        GridServiceHandle(old.authority, "steer"), "old-host", 8000, ()))
    migrate_service("steer", old, new, resolver)
    assert svc.termination_time == pytest.approx(100.0)
    assert svc._container is new
