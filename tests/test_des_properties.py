"""Property-based tests on the DES kernel invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Store


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
def test_property_events_fire_in_time_order(delays):
    """Whatever the creation order, callbacks observe monotonic time and
    the final clock equals the max delay."""
    env = Environment()
    observed = []
    for d in delays:
        ev = env.timeout(d, value=d)
        ev.callbacks.append(lambda e: observed.append((env.now, e.value)))
    env.run()
    times = [t for t, _ in observed]
    assert times == sorted(times)
    assert env.now == pytest.approx(max(delays))
    # every event fired exactly when scheduled
    for t, d in observed:
        assert t == pytest.approx(d)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12),
    seed=st.integers(0, 1000),
)
def test_property_anyof_resolves_at_minimum(delays, seed):
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in delays]
        yield env.any_of(events)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(min(delays))


@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12))
def test_property_allof_resolves_at_maximum(delays):
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in delays]
        yield env.all_of(events)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(max(delays))


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=40),
    n_consumers=st.integers(1, 4),
)
def test_property_store_preserves_fifo_and_loses_nothing(items, n_consumers):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i, item in enumerate(items):
            yield env.timeout(0.001)
            yield store.put(item)

    def consumer():
        while True:
            item = yield store.get()
            received.append(item)
            if len(received) == len(items):
                return

    env.process(producer())
    for _ in range(n_consumers):
        env.process(consumer())
    env.run(until=60.0)
    # Nothing lost, nothing duplicated, order preserved (producer paces
    # items one tick apart, so interleaving cannot reorder them).
    assert received == items


@settings(max_examples=30, deadline=None)
@given(
    interrupt_at=st.floats(0.01, 5.0),
    sleep_for=st.floats(0.02, 10.0),
)
def test_property_interrupt_beats_or_loses_to_timeout(interrupt_at, sleep_for):
    """A sleeper interrupted before its timeout wakes at the interrupt
    time; otherwise it completes on schedule."""
    from repro.des import Interrupt

    env = Environment()
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(sleep_for)
            outcome["how"] = ("slept", env.now)
        except Interrupt:
            outcome["how"] = ("interrupted", env.now)

    def interrupter(target):
        yield env.timeout(interrupt_at)
        if target.is_alive:
            target.interrupt()

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    how, when = outcome["how"]
    if interrupt_at < sleep_for:
        assert how == "interrupted"
        assert when == pytest.approx(interrupt_at)
    else:
        assert how == "slept"
        assert when == pytest.approx(sleep_for)
