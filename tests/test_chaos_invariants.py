"""The InvariantMonitor itself: laws hold on healthy runs, and —
just as important — corrupted state is actually *caught*.  A monitor
that cannot fail proves nothing."""

import pytest

from repro.chaos import ChaosHarness, InvariantMonitor
from repro.errors import ChaosError
from repro.fleet import FleetDriver
from repro.fleet.spec import ScenarioSpec
from repro.load import AdmissionController, TraceArrivals


def _proto(**kw):
    kw.setdefault("duration", 2.0)
    kw.setdefault("cadence", 0.5)
    kw.setdefault("participants", 1)
    kw.setdefault("name", "proto")
    return ScenarioSpec(**kw)


def _ran_world(n_sites=2, arrivals=(0.0, 0.3)):
    driver = FleetDriver(n_sites=n_sites, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=8)
    monitor = InvariantMonitor(driver, controller=ctl)
    ctl.run(
        TraceArrivals(list(arrivals), suite=[_proto()], prefix="m"),
        until=40.0,
    )
    return driver, ctl, monitor


def test_monitor_validates_interval():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    with pytest.raises(ChaosError):
        InvariantMonitor(driver, interval=0.0)


def test_healthy_run_is_silent_and_assert_ok_passes():
    driver, ctl, monitor = _ran_world()
    monitor.final_check(driver.report())
    assert monitor.ok
    monitor.assert_ok()
    assert "OK" in monitor.render()
    assert monitor.sweeps > 5


def test_monitor_catches_a_lost_session():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    monitor = InvariantMonitor(driver)
    driver.admit(_proto(name="doomed"))
    driver.env.run(until=1.0)
    # Corrupt: the session vanishes from the active set with no
    # lifecycle event — exactly what "lost" means.
    driver.active.pop("doomed")
    monitor.sweep()
    assert not monitor.ok
    assert any("no-session-lost" in v for v in monitor.violations)
    with pytest.raises(ChaosError, match="invariant violation"):
        monitor.assert_ok()


def test_monitor_catches_double_start():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    monitor = InvariantMonitor(driver)
    driver._notify_session("start", "ghost", 0)
    driver._notify_session("start", "ghost", 0)
    assert any("single-start" in v for v in monitor.violations)


def test_monitor_catches_finish_without_start():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    monitor = InvariantMonitor(driver)
    driver._notify_session("complete", "phantom", 0)
    assert any("finish-implies-start" in v for v in monitor.violations)


def test_monitor_catches_ledger_imbalance():
    driver, ctl, monitor = _ran_world()
    # Corrupt: a slot acquired behind the controller's back.
    ctl.ledger.acquire(0)
    monitor.sweep()
    assert any("ledger-balance" in v for v in monitor.violations)


def test_monitor_catches_misrouted_registry_entries():
    driver = FleetDriver(n_sites=1, registry_shards=3)
    monitor = InvariantMonitor(driver)
    handle = "gsh://svc-0:8000/steer-x"
    reg = driver.sites[0].registry
    right = reg.shard_for(handle)
    wrong = next(s for s in driver.shards if s is not right)
    # Corrupt: publish straight into the wrong shard (what a buggy
    # rebalance would leave behind).
    wrong.publish(handle, {"type": "steering"})
    monitor.sweep()
    assert any("shard-routing" in v for v in monitor.violations)
    # And a duplicate across two shards is its own violation.
    right.publish(handle, {"type": "steering"})
    monitor.violations.clear()
    monitor.sweep()
    assert any("one-shard-per-handle" in v for v in monitor.violations)


def test_monitor_catches_front_end_shard_divergence():
    driver = FleetDriver(n_sites=2, registry_shards=2)
    monitor = InvariantMonitor(driver)
    # Corrupt: one front-end loses sight of a shard (a broken growth
    # path would do this; add_registry_shard exists to prevent it).
    driver.sites[1].registry.shards = driver.shards[:1]
    monitor.sweep()
    assert any("front-end-shards" in v for v in monitor.violations)


def test_monitor_final_check_flags_non_quiescence():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=8)
    monitor = InvariantMonitor(driver, controller=ctl)
    driver.admit(_proto(name="running"))
    driver.env.run(until=0.5)  # mid-flight
    monitor.final_check()
    assert any("quiescence" in v for v in monitor.violations)


def test_registry_growth_mid_run_stays_lawful():
    """add_registry_shard's rebalance is exactly what law 5 audits:
    grow the shard set under live published state and sweep."""
    driver, ctl, monitor = _ran_world(n_sites=2,
                                      arrivals=(0.0, 0.2, 0.4, 0.6))
    assert monitor.ok
    driver.add_registry_shard()
    monitor.sweep()
    driver.add_registry_shard()
    monitor.sweep()
    assert monitor.ok, monitor.render()


def test_violation_cap_stops_the_flood():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    monitor = InvariantMonitor(driver, max_violations=3)
    for i in range(10):
        driver._notify_session("complete", f"phantom-{i}", 0)
    assert len(monitor.violations) == 3


def test_harness_verdict_counts_sweeps_and_faults():
    driver = FleetDriver(n_sites=1, queue_slots=2)
    ctl = AdmissionController(driver, queue_limit=4)
    world = ChaosHarness(driver, ctl)
    report = ctl.run(
        TraceArrivals([0.0], suite=[_proto()], prefix="v"), until=30.0
    )
    verdict = world.verdict(report)
    assert verdict["faults_applied"] == 0
    assert verdict["invariant_violations"] == 0
    assert verdict["recovery"]["impacted"] == 0
    assert verdict["recovery"]["recovery_rate"] == 1.0
