"""Collaborative session + control-state server tests."""

import pytest

from repro.errors import NotMaster, SteeringError
from repro.net import SyncPipe
from repro.sims import LatticeBoltzmann3D
from repro.steering import (
    CollaborativeSession,
    ControlStateServer,
    Role,
    SteeredApplication,
    SteeringClient,
)
from repro.steering.collab import StateUpdate


def build_session(n_participants=3):
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), g=0.5, seed=2)
    app = SteeredApplication(sim, name="lb3d", sample_interval=1)
    app_pipe = SyncPipe()
    app.attach_control(app_pipe.a)
    app.attach_sample_sink(app_pipe.a)
    session = CollaborativeSession(app_pipe.b)
    clients = []
    for i in range(n_participants):
        pipe = SyncPipe()
        session.join(f"site{i}", pipe.a)
        clients.append(SteeringClient(pipe.b, name=f"site{i}"))
    return app, session, clients


def test_first_joiner_is_master():
    _, session, _ = build_session(3)
    assert session.master == "site0"


def test_all_observers_see_identical_samples():
    app, session, clients = build_session(3)
    for _ in range(4):
        app.step_once()
        session.pump()
    for c in clients:
        c.drain()
    seqs = [[s.seq for s in c.samples] for c in clients]
    assert seqs[0] == seqs[1] == seqs[2] == [1, 2, 3, 4]


def test_only_master_commands_reach_app():
    app, session, clients = build_session(2)
    master, observer = clients
    m_seq = master.set_parameter("g", 2.0)
    o_seq = observer.set_parameter("g", 0.1)
    session.pump()
    app.process_control()
    session.pump()
    master.drain()
    observer.drain()
    assert app.sim.g == 2.0  # master's value, not the observer's
    assert master.ack_for(m_seq).ok
    rejection = observer.ack_for(o_seq)
    assert rejection is not None and not rejection.ok
    assert "observer" in rejection.error


def test_pass_master_enables_new_steerer():
    app, session, clients = build_session(2)
    session.pass_master("site0", "site1")
    assert session.master == "site1"
    seq = clients[1].set_parameter("g", 1.5)
    session.pump()
    app.process_control()
    session.pump()
    clients[1].drain()
    assert clients[1].ack_for(seq).ok
    assert app.sim.g == 1.5


def test_pass_master_requires_token():
    _, session, _ = build_session(3)
    with pytest.raises(NotMaster):
        session.pass_master("site1", "site2")
    with pytest.raises(SteeringError):
        session.pass_master("site0", "nobody")


def test_master_leave_promotes_observer():
    _, session, _ = build_session(3)
    session.leave("site0")
    assert session.master == "site1"
    assert session.master_handovers == 1


def test_last_participant_leaving_empties_session():
    _, session, _ = build_session(1)
    session.leave("site0")
    assert session.master is None
    assert session.participants() == []


def test_duplicate_join_rejected():
    _, session, _ = build_session(1)
    with pytest.raises(SteeringError):
        session.join("site0", SyncPipe().a)


def test_drop_policy_silently_discards():
    sim = LatticeBoltzmann3D(shape=(6, 6, 6), seed=3)
    app = SteeredApplication(sim)
    app_pipe = SyncPipe()
    app.attach_control(app_pipe.a)
    session = CollaborativeSession(app_pipe.b, reject_policy="drop")
    p1, p2 = SyncPipe(), SyncPipe()
    session.join("m", p1.a)
    session.join("o", p2.a)
    observer = SteeringClient(p2.b, name="o")
    observer.set_parameter("g", 3.0)
    session.pump()
    app.process_control()
    session.pump()
    observer.drain()
    assert observer.acks == {}  # silently dropped
    assert app.sim.g == 0.0


# -- control-state server ------------------------------------------------------


def test_controller_update_redistributed_to_others():
    server = ControlStateServer()
    pipes = {n: SyncPipe() for n in ("a", "b", "c")}
    server.join("a", pipes["a"].a, role="controller")
    server.join("b", pipes["b"].a, role="viewer")
    server.join("c", pipes["c"].a, role="viewer")

    pipes["a"].b.send(StateUpdate("view_angle", 45.0, origin="a"))
    stats = server.pump()
    assert stats == {"applied": 1, "rejected": 0, "redistributed": 2}
    for other in ("b", "c"):
        ok, update = pipes[other].b.poll()
        assert ok and update.key == "view_angle" and update.value == 45.0
        assert update.origin == "a"
    # The sender does not get its own echo.
    assert pipes["a"].b.poll() == (False, None)
    assert server.state == {"view_angle": 45.0}


def test_viewer_updates_rejected():
    server = ControlStateServer()
    p = SyncPipe()
    server.join("v", p.a, role="viewer")
    p.b.send(StateUpdate("cutplane_z", 0.5, origin="v"))
    stats = server.pump()
    assert stats["rejected"] == 1
    assert server.state == {}


def test_role_promotion_enables_control():
    server = ControlStateServer()
    p = SyncPipe()
    server.join("v", p.a, role="viewer")
    server.set_role("v", "controller")
    p.b.send(StateUpdate("cutplane_z", 0.5, origin="v"))
    assert server.pump()["applied"] == 1
    assert server.state["cutplane_z"] == 0.5


def test_late_joiner_receives_full_state():
    server = ControlStateServer()
    c = SyncPipe()
    server.join("ctl", c.a, role="controller")
    c.b.send(StateUpdate("view_angle", 30.0, origin="ctl"))
    c.b.send(StateUpdate("threshold", 0.7, origin="ctl"))
    server.pump()

    late = SyncPipe()
    server.join("late", late.a)
    got = {}
    while True:
        ok, update = late.b.poll()
        if not ok:
            break
        got[update.key] = update.value
    assert got == {"view_angle": 30.0, "threshold": 0.7}


def test_state_versions_monotonic():
    server = ControlStateServer()
    c = SyncPipe()
    v = SyncPipe()
    server.join("ctl", c.a, role="controller")
    server.join("view", v.a, role="viewer")
    for value in (1.0, 2.0, 3.0):
        c.b.send(StateUpdate("x", value, origin="ctl"))
    server.pump()
    versions = []
    while True:
        ok, update = v.b.poll()
        if not ok:
            break
        versions.append(update.version)
    assert versions == sorted(versions) and len(set(versions)) == 3


def test_membership_validation():
    server = ControlStateServer()
    p = SyncPipe()
    server.join("x", p.a)
    with pytest.raises(SteeringError):
        server.join("x", p.a)
    with pytest.raises(SteeringError):
        server.join("y", p.a, role="boss")
    with pytest.raises(SteeringError):
        server.set_role("nobody", "viewer")
    with pytest.raises(SteeringError):
        server.leave("nobody")
    server.leave("x")
    assert server.members() == {}


def test_session_role_enum_exposed():
    _, session, _ = build_session(2)
    assert session._participants["site0"].role is Role.MASTER
    assert session._participants["site1"].role is Role.OBSERVER
