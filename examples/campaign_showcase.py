"""Campaign showcase: sweep the scenario matrix, then break it and resume.

Demonstrates the full experiment-engine loop in under a minute:

1. run the 12-cell ``smoke`` campaign across 2 worker processes,
   streaming every completed cell into a resumable JSONL store;
2. "kill" the campaign by deleting the store's last records and resume
   it — only the missing cells re-execute, and the merged MatrixReport
   is byte-identical to the uninterrupted run;
3. render the per-axis marginals and the goodput/latency pareto front.

Run:  PYTHONPATH=src python examples/campaign_showcase.py
"""

import json
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignRunner, ResultStore, preset


def main() -> None:
    spec = preset("smoke")
    workdir = Path(tempfile.mkdtemp(prefix="campaign-"))
    store_path = workdir / "smoke.jsonl"
    print(f"campaign {spec.name!r}: {spec.n_cells} cells "
          f"(scenario x arrival x faults x policy), store {store_path}\n")

    # 1. the full sweep, two worker processes
    t0 = time.perf_counter()
    runner = CampaignRunner(spec, ResultStore(store_path), workers=2)
    matrix = runner.run()
    print(f"-- full run: {len(runner.executed)} cells in "
          f"{time.perf_counter() - t0:.1f}s (2 workers)")

    # 2. interrupt and resume: drop the last 4 records, run again
    lines = store_path.read_text().splitlines()
    store_path.write_text("\n".join(lines[:-4]) + "\n")
    resumed = CampaignRunner(spec, ResultStore(store_path), workers=2)
    t0 = time.perf_counter()
    matrix2 = resumed.run()
    print(f"-- resume: only {len(resumed.executed)} cells re-ran in "
          f"{time.perf_counter() - t0:.1f}s")
    identical = json.dumps(matrix.to_dict(), sort_keys=True) == \
        json.dumps(matrix2.to_dict(), sort_keys=True)
    print(f"-- resumed MatrixReport byte-identical: {identical}\n")
    assert identical and matrix.complete

    # 3. the merged verdict
    print(matrix.render())


if __name__ == "__main__":
    main()
