#!/usr/bin/env python
"""The session fleet: many collaborative steering sessions at once.

Two demonstrations of `repro.fleet`:

1. A 12-session fleet sweeping the paper's four applications (LB3D,
   PEPC, building climatization, crowd flow) across the 2003-era link
   classes, each session running the full UNICORE -> OGSA -> registry ->
   steer workflow, with staggered admission and fleet-wide telemetry.
2. The collaborative layer: a pool of VISIT vbrokers with least-loaded
   placement, and the master token surviving the death of the master
   visualization (section 3.3's cooperative steering, fleet-hardened).

Run:  python examples/fleet_showcase.py
"""

import time

from repro.des import Environment
from repro.fleet import BrokerPool, FleetDriver, fleet_of, sweep_scenarios
from repro.net import Network
from repro.visit import VisitClient, VisitServer
from repro.workloads import CAMPUS, SUPERJANET, link_with_profile

TAG_DATA, TAG_PARAMS = 1, 2


def run_fleet() -> None:
    print("=" * 72)
    print("1. A 12-session fleet across the sc03 showfloor fabric")
    print("=" * 72)
    suite = sweep_scenarios(duration=4.0, cadence=0.5)[:12]
    specs = fleet_of(12, suite=suite, stagger=0.3)
    for spec in specs[:4]:
        print(f"  spec {spec.name}: sim={spec.sim} profile={spec.profile} "
              f"cadence={spec.cadence}s x {spec.n_ops} ops")
    print("  ...")
    t0 = time.perf_counter()
    driver = FleetDriver(specs, n_sites=4)
    report = driver.run()
    report.wall_seconds = time.perf_counter() - t0
    print()
    print(report.render(per_session=True))
    print()
    print(f"registry: {driver.sites[0].registry.entry_count} handles over "
          f"{len(driver.shards)} shards {driver.sites[0].registry.shard_sizes()}")
    assert report.completed == len(specs), "fleet did not complete"


def run_broker_pool() -> None:
    print()
    print("=" * 72)
    print("2. Broker pool: placement + master-token failover")
    print("=" * 72)
    env = Environment()
    net = Network(env)
    for name in ("broker-0", "broker-1", "sim-host"):
        net.add_host(name)
    servers = {}
    for i in range(3):
        name = f"viz-{i}"
        net.add_host(name)
        for b in ("broker-0", "broker-1"):
            link_with_profile(net, b, name, SUPERJANET)
        server = VisitServer(net.host(name), 6000, password="fleet", name=name)
        server.provide(TAG_PARAMS, lambda n=name: f"params:{n}")
        server.start()
        servers[name] = server
    link_with_profile(net, "sim-host", "broker-0", CAMPUS)
    link_with_profile(net, "sim-host", "broker-1", CAMPUS)

    pool = BrokerPool.build(net, ["broker-0", "broker-1"], password="fleet")
    for session in ("lb3d-collab", "pepc-collab"):
        broker = pool.place(session)
        print(f"  session {session!r} -> broker on {broker.host.name}")

    def scenario():
        for viz in ("viz-0", "viz-1", "viz-2"):
            yield from pool.add_visualization("lb3d-collab", viz, viz, 6000)
        broker = pool.broker_for("lb3d-collab")
        print(f"  [{env.now:6.3f}s] participants={broker.participants()} "
              f"master={broker.master!r}")

        sim = VisitClient(net.host("sim-host"), broker.host.name,
                          broker.port, "fleet")
        yield from sim.connect(timeout=2.0)
        yield from sim.send(TAG_DATA, b"sample-0")
        ok, value = yield from sim.request(TAG_PARAMS, timeout=5.0)
        print(f"  [{env.now:6.3f}s] steer request answered by master: "
              f"{value!r} (ok={ok})")

        # The master visualization dies mid-session.
        broker._downstream[broker.master].conn.close()
        new_master = pool.ensure_master("lb3d-collab")
        print(f"  [{env.now:6.3f}s] master died -> token moved to "
              f"{new_master!r}, participants={broker.participants()}")
        ok, value = yield from sim.request(TAG_PARAMS, timeout=5.0)
        print(f"  [{env.now:6.3f}s] steer request after failover: "
              f"{value!r} (ok={ok})")
        assert ok and value == f"params:{new_master}"

    env.process(scenario())
    env.run(until=30.0)
    for s in pool.stats():
        print(f"  broker {s['host']}:{s['port']}: sessions={s['sessions']} "
              f"participants={s['participants']} master={s['master']!r} "
              f"fanout={s['fanout_messages']}")


def main() -> None:
    run_fleet()
    run_broker_pool()
    print("\nfleet showcase complete.")


if __name__ == "__main__":
    main()
