"""Live showcase: record a steered run over HTTP, "kill" it, replay it.

The live control plane's whole pitch in three acts, a few seconds each:

1. serve the steering fabric against the wall clock (fast-forward
   pacing), offer sessions over real sockets, steer one mid-flight —
   every arrival lands in a JSONL trace;
2. "kill -9" the server by throwing away the trace's sealing end
   record — a torn trace must still load (one dropped tail line, no
   end marker);
3. replay the trace as a one-cell campaign, twice and across 1 vs 2
   worker processes: the MatrixReports are byte-identical, so the
   recorded incident is now a reproducible experiment.

Run:  PYTHONPATH=src python examples/live_showcase.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.live import LiveServer, load_trace, matrix_digest, replay_trace
from repro.live.client import request


async def record(trace_path: Path) -> None:
    server = LiveServer(config={"rate": 100.0, "seed": 11}, trace_path=trace_path)
    await server.start()
    where = (server.host, server.port)
    print(f"-- serving on http://{server.host}:{server.port} (rate=100x)")
    try:
        # A long-running session we can steer, plus short riders.
        body = {"sim": "building", "participants": 2, "duration": 20.0, "cadence": 0.5}
        steered = (await request(*where, "POST", "/sessions", body)).json()["name"]
        for _ in range(4):
            resp = await request(
                *where, "POST", "/sessions", {"sim": "building", "duration": 2.0}
            )
            print(f"   POST /sessions -> {resp.status} {resp.json().get('name', '')}")
            await asyncio.sleep(0.02)

        # Wait until the long session is on a site, then steer it live.
        for _ in range(100):
            doc = (await request(*where, "GET", f"/sessions/{steered}")).json()
            if doc["state"] == "running":
                break
            await asyncio.sleep(0.01)
        steer = await request(*where, "POST", f"/sessions/{steered}/steer", {"value": 3})
        print(f"   steer {steered}: {steer.status} {steer.json()}")
        await asyncio.sleep(0.1)
    finally:
        drain = await server.shutdown(grace=60.0)
        stats = server.statsz()["server"]
        print(
            f"-- drained {drain['events']} events; "
            f"{stats['admitted']} admitted, {stats['rejected']} rejected, "
            f"{stats['steers']} steer(s)\n"
        )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="live-"))
    trace_path = workdir / "incident.jsonl"

    # 1. the live run, traced
    asyncio.run(record(trace_path))

    # 2. simulate a kill -9: drop the sealing end record + tear the tail
    lines = trace_path.read_text().splitlines()
    trace_path.write_text("\n".join(lines[:-1]) + '\n{"kind": "arr')
    trace = load_trace(trace_path)
    print(
        f"-- torn trace still loads: {len(trace.arrivals)} arrivals, "
        f"sealed={trace.sealed}, dropped_lines={trace.dropped_lines}"
    )

    # 3. deterministic replay: twice, then across worker counts
    digests = {
        "replay #1": matrix_digest(replay_trace(trace_path, workers=1)),
        "replay #2": matrix_digest(replay_trace(trace_path, workers=1)),
        "2 workers": matrix_digest(replay_trace(trace_path, workers=2)),
    }
    for label, digest in digests.items():
        print(f"   {label}: {digest[:16]}...")
    assert len(set(digests.values())) == 1, "replay drifted!"
    print("-- byte-identical across replays and worker counts")


if __name__ == "__main__":
    main()
