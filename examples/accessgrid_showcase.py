#!/usr/bin/env python
"""The full SC'03 showcase (paper sections 1, 2.4, 3.4, 4.6).

One virtual venue, many sites, all the integration modes the paper lists:

* vic-style multicast video of the show floor to every site (a bridged,
  firewalled CAVE included);
* vnc sharing of the steering client desktop, with a remote collaborator
  actually moving a slider;
* VizServer sharing of the big visualization with a control token passed
  between sites;
* an app-session advertised in the venue so sites can join the shared
  COVISE-style application.

Run:  python examples/accessgrid_showcase.py
"""

import numpy as np

from repro.accessgrid import AGNode, VenueServer, VncClient, VncServer
from repro.accessgrid.media import MediaProducer
from repro.accessgrid.vizserver import VizServerClient, VizServerSession
from repro.sims import LatticeBoltzmann3D
from repro.viz import Camera, Geometry, isosurface
from repro.workloads import sc03_showfloor


def main() -> None:
    env, net, site_names = sc03_showfloor(n_sites=4, cave=True)
    server = VenueServer(net, net.host("venue-server"))
    venue = server.create_venue("SC03-Phoenix")

    # --- sites enter the venue ---------------------------------------------
    nodes = {}
    for name in site_names:
        node = AGNode(net.host(name))
        if name == "hlrs-cave":
            node.enter(venue, bridge_host=net.host("venue-server"))
            print(f"{name}: entered via unicast bridge (no native multicast)")
        else:
            node.enter(venue)
            print(f"{name}: entered with native multicast")
        nodes[name] = node

    # --- the venue advertises the shared application -----------------------------
    app_session = venue.create_app_session(
        "covise", {"map": "lb3d-isosurface", "controller": "ag-site-0"}
    )
    for name in site_names:
        nodes[name].join_app(app_session.session_id)
    print(f"app session {app_session.session_id}: "
          f"{len(app_session.participants)} participants\n")

    # --- show floor video into the venue ----------------------------------------
    video = MediaProducer(net.host("ag-site-0"), venue.video, fps=25,
                          frame_bytes=8000, name="showfloor-vic")
    video.start()

    # --- the steered simulation + VizServer session ------------------------------
    sim = LatticeBoltzmann3D(shape=(14, 14, 14), g=3.0, seed=3)
    viz = VizServerSession(net.host("venue-server"), 7010, width=160,
                           height=120)
    viz.start()

    def refresh_scene():
        field = sim.order_parameter()
        n = field.shape[0]
        verts, faces = isosurface(field, 0.0, spacing=(2.0 / (n - 1),) * 3,
                                  origin=(-1.0, -1.0, -1.0))
        geom = Geometry("triangles", verts, faces=faces)
        if "iso" in viz.scene._index:
            viz.scene.set_geometry("iso", geom)
        else:
            viz.scene.add_node("iso", geom)

    def simulation_loop():
        while env.now < 20.0:
            yield env.timeout(0.5)
            sim.run(2)
            refresh_scene()
            yield from viz.render_and_stream()

    env.process(simulation_loop())

    # --- VizServer clients at two sites, sharing control ---------------------------
    c0 = VizServerClient(net.host("ag-site-1"), "venue-server", 7010, "ag-site-1")
    c1 = VizServerClient(net.host("ag-site-2"), "venue-server", 7010, "ag-site-2")

    def viz_collaboration():
        yield from c0.join()
        yield from c1.join()
        yield env.timeout(5.0)
        cam = Camera(eye=np.array([0.0, -4.0, 1.0]))
        ok = yield from c0.move_camera(cam)
        print(f"[{env.now:6.2f}s] ag-site-1 moved the shared camera: {ok}")
        yield from c0.pass_control("ag-site-2")
        cam.orbit(0.8)
        ok = yield from c1.move_camera(cam)
        print(f"[{env.now:6.2f}s] control passed; ag-site-2 moved it: {ok}")

    env.process(viz_collaboration())

    # --- vnc-shared steering panel ----------------------------------------------
    vnc = VncServer(net.host("ag-site-0"), 5900, width=96, height=64)
    panel = {"g": sim.g}

    def on_input(event):
        if event.get("widget") == "g-slider":
            panel["g"] = float(event["value"])
            sim.set_parameter("g", panel["g"])
            vnc.fb.color[:, : int(96 * panel["g"] / 4.5)] = (0, 180, 0)

    vnc.on_input = on_input
    vnc.start()

    def remote_steerer():
        client = VncClient(net.host("ag-site-3"), "ag-site-0", 5900)
        yield from client.connect()
        yield from client.request_update()
        yield env.timeout(8.0)
        ok = yield from client.send_input({"widget": "g-slider", "value": 1.0})
        print(f"[{env.now:6.2f}s] ag-site-3 moved the vnc slider "
              f"(ack={ok}); sim g is now {sim.g}")
        fb = yield from client.request_update()
        lit = (fb.color.sum(axis=2) > 0).mean()
        print(f"[{env.now:6.2f}s] ag-site-3 sees the updated panel "
              f"({lit:.0%} lit)")

    env.process(remote_steerer())
    env.run(until=25.0)
    video.stop()
    env.run(until=26.0)

    # --- wrap-up -----------------------------------------------------------------
    print("\n=== showcase wrap-up ===")
    for name in site_names:
        rx = nodes[name].video_receiver
        print(f"{name:12s} video frames={rx.frames_received:4d} "
              f"mean latency={rx.latency.mean * 1e3 if rx.frames_received else 0:5.1f}ms"
              f"{'  (bridged)' if nodes[name].bridged else ''}")
    c0.drain_frames()
    c1.drain_frames()
    print(f"VizServer frames: ag-site-1={c0.frames_received}, "
          f"ag-site-2={c1.frames_received}, "
          f"bytes streamed={viz.bytes_streamed}")
    receivers = [nodes[n].video_receiver.frames_received
                 for n in site_names if n != "ag-site-0"]
    assert all(f > 300 for f in receivers), "every site should see the video"
    assert c0.frames_received > 10 and c1.frames_received > 10
    assert sim.g == 1.0, "the vnc steer should have reached the simulation"
    print("Access Grid showcase OK.")


if __name__ == "__main__":
    main()
