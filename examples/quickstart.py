#!/usr/bin/env python
"""Quickstart: instrument a simulation, attach a steering client, steer.

The minimal end-to-end use of the steering core (no network, no
middleware): a Lattice-Boltzmann two-fluid mixture is instrumented with
the steering API; a local client watches the monitored observables and
slides the miscibility parameter mid-run — the essence of the paper's
RealityGrid demo in ~50 lines.

Run:  python examples/quickstart.py
"""

from repro.net import SyncPipe
from repro.sims import LatticeBoltzmann3D
from repro.steering import SteeredApplication, SteeringClient


def main() -> None:
    # 1. The application: a two-fluid LB mixture, initially miscible.
    sim = LatticeBoltzmann3D(shape=(10, 10, 10), g=0.5, seed=42)

    # 2. Instrument it: parameters and observables are published
    #    automatically from the simulation's steering surface.
    app = SteeredApplication(sim, name="lb3d", sample_interval=10)
    print("steerable parameters :", app.registry.names("steered"))
    print("monitored observables:", app.registry.names("monitored"))

    # 3. Attach a steering client over an in-memory duplex link.
    pipe = SyncPipe()
    app.attach_control(pipe.a)
    client = SteeringClient(pipe.b, name="you")

    # 4. Run; steer the miscibility after 30 steps and watch the fluid
    #    demix (the structure change the SC'03 audience saw as moving
    #    isosurfaces).
    print("\n step |   g   | demix measure")
    print("------+-------+--------------")
    for step in range(1, 121):
        if step == 30:
            seq = client.set_parameter("g", 3.0)
        app.step_once()
        if step == 30:
            client.drain()
            ack = client.ack_for(seq)
            print(f"  ... steered g -> 3.0 (ack: ok={ack.ok})")
        if step % 10 == 0:
            print(f" {step:4d} | {sim.g:5.2f} | {sim.demix_measure():.4f}")

    assert sim.demix_measure() > 0.3, "the mixture should have demixed"
    print("\nThe fluids phase-separated after the steer — quickstart OK.")


if __name__ == "__main__":
    main()
