#!/usr/bin/env python
"""Observability end-to-end: a chaotic cell with the full obs fabric on.

One open-loop admission cell — Poisson arrivals through the
`AdmissionController` onto a 3-site fleet — runs with everything
`repro.obs` offers attached at once:

* causal sim-time spans (session -> admit -> connect -> find/steer-op,
  viz-frame events, fault windows on the fabric lane), exported as a
  Chrome-trace/Perfetto JSONL you can drop into https://ui.perfetto.dev;
* the Prometheus-style metrics registry (the same families `GET
  /metricsz` serves on a live server), dumped as text + JSON snapshot;
* the protection layer: broker/registry circuit breakers, a per-tenant
  inflight quota, and a seeded fault schedule biting mid-run so the
  chaos counters and fault spans have something to show.

Everything here is deterministic: same seeds, same report, same span
stream, same exposition counts, run after run.

Run:  python examples/obs_showcase.py
"""

import json
import tempfile
from pathlib import Path

from repro.chaos import ChaosHarness, FaultSchedule
from repro.fleet import FleetDriver
from repro.load import AdmissionController, PoissonArrivals
from repro.obs import Observability

SEED = 11


def main() -> None:
    print("=" * 72)
    print("An observed, protected, chaotic admission cell")
    print("=" * 72)

    obs = Observability(tracing=True, metrics=True, breakers=True, quota=3)
    driver = FleetDriver(n_sites=3, queue_slots=2, obs=obs)
    controller = AdmissionController(driver, queue_limit=16)  # self-attaches
    world = ChaosHarness(driver, controller)
    obs.attach_injector(world.injector)
    world.install(
        FaultSchedule.random(seed=SEED, horizon=14.0, n_faults=3, sites=3)
    )

    report = controller.run(
        PoissonArrivals(rate=0.8, horizon=10.0, seed=7, duration=2.0, cadence=0.5)
    )
    verdict = world.verdict(report)
    print()
    print(report.render())
    print(
        f"\nchaos: {verdict['faults_applied']} faults applied, "
        f"{verdict['invariant_violations']} invariant violations"
    )
    assert verdict["invariant_violations"] == 0

    # -- the causal span tree -------------------------------------------------
    tracer = obs.tracer
    counts = tracer.counts()
    print(f"\nspan stream: {counts}")
    queue = controller.telemetry
    roots = [s for s in tracer.spans if s.name == "session"]
    print(f"  {len(roots)} session roots for {queue.offered} offered "
          f"({queue.admitted} admitted, {queue.rejected} rejected)")
    sample = next(s for s in tracer.spans if s.name == "steer-op")
    chain = " -> ".join(s.name for s in reversed(tracer.ancestry(sample)))
    print(f"  one steer-op's ancestry: {chain}")

    workdir = Path(tempfile.mkdtemp(prefix="obs-"))
    trace_path = workdir / "trace.jsonl"
    n_events = obs.write_trace(trace_path)
    print(f"  Perfetto trace: {n_events} events -> {trace_path}")

    # -- metrics: exposition + snapshot ---------------------------------------
    text = obs.metrics.render()
    lines = text.splitlines()
    print(f"\nPrometheus exposition: {len(lines)} lines, e.g.")
    for needle in ("repro_admission_", "repro_steer_ops_total",
                   "repro_faults_total", "repro_circuit_state",
                   "repro_quota_"):
        line = next(ln for ln in lines if ln.startswith(needle))
        print(f"  {line}")

    snap_path = workdir / "obs.json"
    snap_path.write_text(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
    print(f"snapshot (metrics + breakers + quotas) -> {snap_path}")
    for name, breaker in sorted(obs.breakers.items()):
        s = breaker.snapshot()
        print(f"  breaker {name!r}: state={s['state']} "
              f"success={s['successes']} failure={s['failures']} "
              f"shorted={s['shorted']} transitions={len(s['transitions'])}")

    # Determinism spot-check: a second identical world, identical stream.
    obs2 = Observability(tracing=True, metrics=True, breakers=True, quota=3)
    driver2 = FleetDriver(n_sites=3, queue_slots=2, obs=obs2)
    controller2 = AdmissionController(driver2, queue_limit=16)
    world2 = ChaosHarness(driver2, controller2)
    obs2.attach_injector(world2.injector)
    world2.install(
        FaultSchedule.random(seed=SEED, horizon=14.0, n_faults=3, sites=3)
    )
    controller2.run(
        PoissonArrivals(rate=0.8, horizon=10.0, seed=7, duration=2.0, cadence=0.5)
    )
    again = workdir / "trace-again.jsonl"
    obs2.write_trace(again)
    assert trace_path.read_bytes() == again.read_bytes()
    print("\nsecond same-seed run: span JSONL is byte-identical")


if __name__ == "__main__":
    main()
