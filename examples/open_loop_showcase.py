#!/usr/bin/env python
"""Open-loop traffic on the steering grid: arrivals, admission, elasticity.

Three acts on the same 2-site fabric:

1. Steady Poisson traffic under capacity — every session admitted at
   once, zero rejects.
2. A flash crowd against *fixed* capacity — the bounded admission queue
   sheds the excess explicitly instead of melting down.
3. The same flash crowd with the reactive autoscaler — extra service
   sites (and registry shards) come up while the rush lasts and drain
   afterwards, so the crowd is served instead of shed.

Run:  python examples/open_loop_showcase.py
"""

import time

from repro.fleet import FleetDriver
from repro.load import (
    AdmissionController,
    FlashCrowdArrivals,
    PoissonArrivals,
    ReactiveAutoscaler,
    scorecard,
)

FLASH = dict(base_rate=0.3, burst_rate=8.0, burst_at=6.0,
             burst_duration=4.0, horizon=18.0, seed=11,
             duration=3.0, cadence=0.5)


def act(title, arrivals, autoscale=False):
    print("=" * 72)
    print(title)
    print("=" * 72)
    t0 = time.perf_counter()
    driver = FleetDriver(n_sites=2, queue_slots=3)
    ctl = AdmissionController(driver, queue_limit=10)
    scaler = None
    if autoscale:
        scaler = ReactiveAutoscaler(ctl, max_sites=6, high_depth=3,
                                    interval=1.0, cooldown=0.0)
    report = ctl.run(arrivals)
    report.wall_seconds = time.perf_counter() - t0
    print(report.render())
    print(scorecard(ctl, horizon=arrivals.horizon).render())
    if scaler is not None:
        for at, what, idx in scaler.events:
            print(f"  [{at:6.2f}s] autoscaler: {what} site {idx}")
        print(f"  fabric ended at {len(driver.sites)} sites, "
              f"{len(driver.shards)} registry shards")
    print()
    return report


def main() -> None:
    steady = act(
        "1. Steady traffic under capacity (Poisson 0.6/s, ~1.35/s capacity)",
        PoissonArrivals(rate=0.6, horizon=18.0, seed=11,
                        duration=3.0, cadence=0.5),
    )
    assert steady.queue.rejected == 0

    fixed = act(
        "2. Flash crowd vs fixed capacity: bounded queue sheds the excess",
        FlashCrowdArrivals(**FLASH),
    )
    assert fixed.queue.rejected > 0

    elastic = act(
        "3. The same flash crowd with the reactive autoscaler",
        FlashCrowdArrivals(**FLASH),
        autoscale=True,
    )
    assert elastic.queue.scale_ups > 0
    assert elastic.queue.admitted > fixed.queue.admitted
    assert elastic.queue.wait_p99 <= fixed.queue.wait_p99

    print("open-loop showcase complete: "
          f"shed {fixed.queue.rejected} sessions at fixed capacity, "
          f"served all but {elastic.queue.rejected} with elasticity.")


if __name__ == "__main__":
    main()
