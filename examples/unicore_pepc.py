#!/usr/bin/env python
"""Steering PEPC through UNICORE with the VISIT extension (paper section 3).

The Juelich demonstration: a UNICORE job launches the PEPC plasma
simulation on the HPC target (a particle beam striking a spherical
plasma).  The simulation speaks ordinary VISIT to the proxy on its own
host; two remote participants poll through the single-port gateway.  The
first is master; mid-run the master role moves, and the new master
re-aims the particle beam — the section 3.4 interactive re-alignment.

Run:  python examples/unicore_pepc.py
"""

import numpy as np

from repro.des import Environment
from repro.net import Firewall, Network
from repro.sims.pepc import PlasmaSim, beam_on_sphere_setup
from repro.unicore import (
    AbstractJobObject,
    Certificate,
    ExecuteTask,
    Gateway,
    NetworkJobSupervisor,
    StageOut,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.unicore.visit_ext import VisitProxyServer, VisitUnicorePlugin
from repro.visit import VisitClient
from repro.workloads import SUPERJANET, TRANSATLANTIC, link_with_profile

GATEWAY_PORT = 4433
PROXY_PORT = 5500
TAG_PARTICLES, TAG_BEAM = 1, 2


def main() -> None:
    env = Environment()
    net = Network(env)
    net.add_host("juelich-hpc", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_host("juelich-desk")
    net.add_host("phoenix-ag")  # the SC'03 show floor node
    link_with_profile(net, "juelich-desk", "juelich-hpc", SUPERJANET)
    link_with_profile(net, "phoenix-ag", "juelich-hpc", TRANSATLANTIC)

    # --- UNICORE tiers at the Juelich centre -----------------------------------
    trust = TrustStore({"FZJ-CA"})
    gateway = Gateway(net.host("juelich-hpc"), GATEWAY_PORT, trust=trust)
    tsi = TargetSystemInterface(net.host("juelich-hpc"))
    njs = NetworkJobSupervisor(net.host("juelich-hpc"), 9000, "JUELICH", tsi)
    gateway.register_vsite("JUELICH", "juelich-hpc", 9000)
    gateway.start()
    njs.start()

    # The modified TSI hosts the VISIT proxy (section 3.3).
    proxy = VisitProxyServer(net.host("juelich-hpc"), PROXY_PORT, password="pw")
    proxy.start()
    tsi.visit_proxy = proxy

    # --- PEPC as a UNICORE application -----------------------------------------
    beam_redirects = []

    def pepc_app(env_, host, args, uspace):
        """The incarnated PEPC executable: steps the plasma and talks
        ordinary VISIT to the local proxy — no UNICORE awareness at all."""
        sim = PlasmaSim(
            setup=beam_on_sphere_setup(n_plasma=args.get("n_plasma", 200),
                                       n_beam=args.get("n_beam", 32), seed=5),
            dt=0.01, theta=0.6, nranks=4,
        )
        visit = VisitClient(host, host.name, PROXY_PORT, "pw", name="pepc")
        yield from visit.connect(timeout=1.0)
        for step in range(args.get("steps", 60)):
            yield env_.timeout(0.2)  # the parallel tree solve
            sim.step()
            yield from visit.send(TAG_PARTICLES, sim.sample())
            ok, beam = yield from visit.request(TAG_BEAM, timeout=1.0)
            if ok and beam is not None:
                direction = np.asarray(beam["direction"], dtype=float)
                if not np.allclose(direction, sim.beam_direction):
                    sim.set_parameter("beam_direction", direction)
                    beam_redirects.append((env_.now, step, tuple(direction)))
        uspace.write("energy.dat",
                     f"{sim.observables()['kinetic_energy']:.6f}\n".encode())
        visit.close()

    tsi.register_application("pepc", pepc_app)
    njs.register_application("PEPC", "pepc")

    # --- the job owner at Juelich ------------------------------------------------
    john = UnicoreClient(
        net.host("juelich-desk"),
        UserIdentity(Certificate("CN=thomas", "FZJ-CA"), "thomas"),
        "juelich-hpc", GATEWAY_PORT,
    )
    beam_panel = {"direction": [1.0, 0.0, 0.0]}

    def owner():
        yield from john.connect()
        ajo = AbstractJobObject("pepc-demo", "JUELICH")
        ajo.add_task(ExecuteTask("run", "PEPC",
                                 arguments={"steps": 60, "n_plasma": 200},
                                 steered=True))
        ajo.add_task(StageOut("out", "energy.dat"), after=["run"])
        job_id = yield from john.consign(ajo)
        print(f"[{env.now:7.3f}s] job consigned through the gateway: {job_id}")

        plugin = VisitUnicorePlugin(john, "JUELICH", "thomas",
                                    poll_interval=0.4)
        plugin.provide(TAG_BEAM, lambda: dict(beam_panel))
        plugin.start()

        # After a while, hand the master role to the Phoenix site.
        yield env.timeout(6.0)
        proxy.pass_master("phoenix")
        print(f"[{env.now:7.3f}s] master role passed to phoenix")

        status = yield from john.wait_for("JUELICH", job_id,
                                          poll_interval=1.0, timeout=120.0)
        data = yield from john.retrieve("JUELICH", job_id, "energy.dat")
        print(f"[{env.now:7.3f}s] job {status.value}; staged-out "
              f"energy.dat = {data.decode().strip()}")
        plugin.stop()
        return plugin

    # --- the collaborating site in Phoenix ---------------------------------------
    phoenix_panel = {"direction": [0.0, 1.0, 0.0]}  # they re-aim the beam

    def phoenix():
        client = UnicoreClient(
            net.host("phoenix-ag"),
            UserIdentity(Certificate("CN=phoenix", "FZJ-CA"), "phoenix"),
            "juelich-hpc", GATEWAY_PORT,
        )
        yield from client.connect()
        plugin = VisitUnicorePlugin(client, "JUELICH", "phoenix",
                                    poll_interval=0.4)
        plugin.provide(TAG_BEAM, lambda: dict(phoenix_panel))
        plugin.start()
        while len(plugin.received[TAG_PARTICLES]) < 55:
            yield env.timeout(1.0)
        plugin.stop()
        return plugin

    owner_proc = env.process(owner())
    phoenix_proc = env.process(phoenix())
    env.run(until=120.0)

    owner_plugin = owner_proc.value
    phoenix_plugin = phoenix_proc.value
    print(f"\nSamples seen — thomas: {len(owner_plugin.received[TAG_PARTICLES])}, "
          f"phoenix: {len(phoenix_plugin.received[TAG_PARTICLES])}")
    sample = phoenix_plugin.received[TAG_PARTICLES][-1]
    print(f"Last sample ships the full data-space: "
          f"{sorted(sample.keys())}")
    print(f"Beam redirected {len(beam_redirects)} time(s): "
          f"{[r[2] for r in beam_redirects]}")
    assert beam_redirects and beam_redirects[0][2] == (0.0, 1.0, 0.0), \
        "the Phoenix master should have re-aimed the beam"
    print("UNICORE + VISIT collaborative steering demo OK.")


if __name__ == "__main__":
    main()
