#!/usr/bin/env python
"""The RealityGrid demonstration (paper section 2, Figures 1-2).

The full Figure 1 + Figure 2 pipeline on the simulated testbed:

* LB3D runs on the UCL Onyx (behind a single-port firewall);
* the OGSA steering + visualization services live in an OGSI::Lite
  container on the Manchester visualization host;
* the user on the SC conference floor contacts the *registry*, chooses
  the services, binds them, and steers the miscibility;
* the visualization service isosurfaces each sample and serves
  VizServer-style compressed frames — only bitmaps cross the WAN.

Run:  python examples/realitygrid_lb3d.py
"""

from repro.ogsa import (
    HandleResolver,
    OgsaSteeringClient,
    OgsiLiteContainer,
    RegistryService,
    ServiceConnection,
    SteeringService,
    VisualizationService,
)
from repro.sims import LatticeBoltzmann3D
from repro.steering import LinkAdapter, SteeredApplication, steered_app_process
from repro.viz import decompress_frame
from repro.workloads import realitygrid_testbed


def main() -> None:
    env, net = realitygrid_testbed()
    print("Testbed hosts:", ", ".join(sorted(net.hosts)))

    # --- the application on the compute host -------------------------------
    sim = LatticeBoltzmann3D(shape=(16, 16, 16), g=0.5, seed=7)
    app = SteeredApplication(sim, name="lb3d", sample_interval=2)

    # --- wire app <-> services over the network ---------------------------------
    wired = {}
    control_listener = net.host("man-bezier").listen(7001)
    sample_listener = net.host("man-bezier").listen(7002)

    def accept_links():
        conn = yield from control_listener.accept()
        wired["control"] = LinkAdapter(conn)
        conn = yield from sample_listener.accept()
        wired["samples"] = LinkAdapter(conn)

    def connect_links():
        conn = yield from net.host("ucl-onyx").connect("man-bezier", 7001)
        app.attach_control(LinkAdapter(conn))
        conn = yield from net.host("ucl-onyx").connect("man-bezier", 7002)
        app.attach_sample_sink(LinkAdapter(conn))

    env.process(accept_links())
    env.process(connect_links())

    # --- the service fabric on the viz host ------------------------------------
    container = OgsiLiteContainer(net.host("man-bezier"), 8000)
    registry = RegistryService()
    container.deploy(registry)
    container.start()
    resolver = HandleResolver()

    def deploy_services():
        while "control" not in wired or "samples" not in wired:
            yield env.timeout(0.01)
        steer_ref = container.deploy(
            SteeringService("steer-lb3d", wired["control"],
                            application_name="LB3D")
        )
        viz_ref = container.deploy(
            VisualizationService("viz-lb3d", wired["samples"])
        )
        resolver.bind(steer_ref)
        resolver.bind(viz_ref)
        conn = ServiceConnection(net.host("man-bezier"), "man-bezier", 8000)
        yield from conn.open()
        yield from conn.invoke("registry", "publish", handle=str(steer_ref.handle),
                               metadata={"type": "steering", "application": "LB3D"})
        yield from conn.invoke("registry", "publish", handle=str(viz_ref.handle),
                               metadata={"type": "viz-steering",
                                         "application": "LB3D"})
        conn.close()
        print(f"[{env.now:7.3f}s] services deployed + published to the registry")

    env.process(deploy_services())
    env.process(steered_app_process(env, app, compute_time=0.25))

    # --- the user on the conference floor -------------------------------------------
    def user():
        yield env.timeout(2.0)
        client = OgsaSteeringClient(net.host("floor-laptop"), resolver,
                                    "man-bezier", 8000)
        found = yield from client.find_services(application="LB3D")
        print(f"[{env.now:7.3f}s] registry found: "
              + ", ".join(e["handle"] for e in found))
        steer = next(e["handle"] for e in found
                     if e["metadata"]["type"] == "steering")
        viz = next(e["handle"] for e in found
                   if e["metadata"]["type"] == "viz-steering")
        yield from client.bind(steer)
        yield from client.bind(viz)

        status = yield from client.invoke(steer, "get_status")
        print(f"[{env.now:7.3f}s] status: step={status['step']} "
              f"g={status['parameters']['g']} "
              f"demix={status['observables']['demix']:.4f}")

        print(f"[{env.now:7.3f}s] steering miscibility g: 0.5 -> 3.0")
        yield from client.invoke(steer, "set_parameter", name="g", value=3.0)

        yield from client.invoke(viz, "set_view", eye=[0.0, -3.0, 0.0],
                                 target=[0.0, 0.0, 0.0])
        prev = None  # the client keeps the previous frame: deltas only
        for shot in range(4):
            yield env.timeout(8.0)
            status = yield from client.invoke(steer, "get_status")
            info = yield from client.invoke(viz, "render_frame")
            frame = decompress_frame(info["frame"], previous=prev)
            prev = frame
            lit = (frame.color.sum(axis=2) > 0).mean()
            print(f"[{env.now:7.3f}s] step={status['step']:4d} "
                  f"demix={status['observables']['demix']:.4f} "
                  f"isosurface tris={info['triangles']:6d} "
                  f"frame={len(info['frame'])}B "
                  f"(raw {info['raw_bytes']}B) lit={lit:.0%}")
        yield from client.invoke(steer, "stop")
        client.close()

    env.process(user())
    env.run(until=60.0)

    print(f"\nFinal state: step={sim.step_count}, demix={sim.demix_measure():.4f}")
    print(f"WAN bytes UCL<->Manchester: {net.bytes_between('ucl-onyx', 'man-bezier')}")
    print(f"WAN bytes Manchester<->floor: "
          f"{net.bytes_between('man-bezier', 'floor-laptop')}")
    assert sim.demix_measure() > 0.2


if __name__ == "__main__":
    main()
