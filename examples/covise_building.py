#!/usr/bin/env python
"""The HLRS Car-Show building demonstration (paper section 4).

Architects, managers and engineers at three sites collaboratively explore
the climatization of an exhibition building:

* every site runs a replica of the same COVISE map (ReadSim ->
  CuttingPlane / IsoSurface -> Renderer) against the same simulation feed;
* exploration steps exchange only *parameters* (section 4.3), so all
  sites update near-simultaneously and show bit-identical content;
* one participant steers the ventilation of the underlying simulation and
  everyone watches the comfort zone improve;
* visitor flow (the Sandia collaboration) is steered toward an exhibit.

Run:  python examples/covise_building.py
"""

import numpy as np

from repro.covise import CollaborativeCovise, MapEditor
from repro.des import Environment
from repro.net import Network
from repro.sims import BuildingClimate, CrowdSim
from repro.workloads import CAMPUS, SUPERJANET, link_with_profile


def build_spec():
    env = Environment()
    net = Network(env)
    net.add_host("scratch")
    editor = MapEditor(net)
    editor.add_source("read", "scratch", lambda: np.zeros((4, 4, 4)))
    editor.add("CuttingPlane", "cut", "scratch", resolution=40,
               point=(12.0, 8.0, 1.0), normal=(0.0, 0.0, 1.0))
    editor.add("IsoSurface", "iso", "scratch", level=24.0)
    editor.add("Renderer", "render", "scratch")
    editor.connect("read", "field", "cut", "field")
    editor.connect("read", "field", "iso", "field")
    editor.connect("iso", "surface", "render", "surface")
    return editor.spec()


def main() -> None:
    env = Environment()
    net = Network(env)
    sites = {"hlrs-cave": "hlrs-cave", "daimler": "daimler", "sandia": "sandia"}
    for name in sites:
        net.add_host(name)
    link_with_profile(net, "hlrs-cave", "daimler", CAMPUS)
    link_with_profile(net, "hlrs-cave", "sandia", SUPERJANET)
    link_with_profile(net, "daimler", "sandia", SUPERJANET)

    # One shared building simulation feed (deterministic, so replicated
    # pipelines agree bit-for-bit).
    building = BuildingClimate(shape=(24, 16, 8), vent_temperature=17.0,
                               ambient=29.0, seed=9)
    crowd = CrowdSim(n_agents=150, seed=4, dwell_steps=8)

    sources = {
        name: {"read": (lambda: building.temperature.copy())}
        for name in sites
    }
    session = CollaborativeCovise(net, build_spec(), sites, sources,
                                  watch=("cut", "plane"), master="hlrs-cave")

    def demo():
        print("=== collaborative exploration (parameter-synchronized) ===")
        yield from session.execute_all()
        for z in (1.0, 3.0, 6.0):
            building.run(40)  # the simulation marches on
            crowd.run(40)
            report = yield from session.change_parameter(
                "cut", "point", (12.0, 8.0, z), mode="parameter"
            )
            plane = (session.sites["hlrs-cave"].editor.controller
                     .output_object("cut", "plane"))
            print(f"[{env.now:7.3f}s] cutting plane z={z:.0f}: "
                  f"mean T={np.nanmean(plane.values):5.2f}C  "
                  f"skew={report['skew'] * 1e3:5.1f}ms  "
                  f"wan={report['wan_bytes']}B  "
                  f"identical={report['digests_agree']}")

        print("\n=== engineer steers the ventilation ===")
        before = building.comfort_fraction()
        building.set_parameter("vent_speed", 0.6)
        building.set_parameter("vent_temperature", 15.0)
        building.run(250)
        yield from session.change_parameter("cut", "point", (12.0, 8.0, 1.0),
                                            mode="parameter")
        after = building.comfort_fraction()
        print(f"[{env.now:7.3f}s] comfort fraction: {before:.0%} -> {after:.0%} "
              f"(mean T {building.mean_temperature():.2f}C)")

        print("\n=== Sandia: steer the visitors toward exhibit 2 ===")
        base = crowd.occupancy()
        crowd.set_parameter("attractiveness", np.array([0.1, 0.1, 10.0]))
        crowd.run(300)
        steered = crowd.occupancy()
        print(f"occupancy before: {np.array2string(base, precision=2)}")
        print(f"occupancy after : {np.array2string(steered, precision=2)}")
        assert steered[2] > base[2]
        return after > before or after > 0.2

    proc = env.process(demo())
    env.run(until=300.0)
    print("\nCollaborative building demo OK "
          f"(pipeline executions per site: "
          f"{session.sites['daimler'].updates_done}).")


if __name__ == "__main__":
    main()
